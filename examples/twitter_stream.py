"""Streaming analytics over a synthetic tweet stream (the paper's TT).

Generates a Twitter-shaped record stream, then answers the paper's TT1
and TT2 queries in a single pass each, comparing JSONSki's throughput
against the character-by-character JPStream baseline and showing the
per-group fast-forward breakdown (Table 6 style).

Run::

    python examples/twitter_stream.py [--bytes 2000000]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.data.datasets import record_stream
from repro.engine.stats import GROUPS


def throughput(engine, stream) -> tuple[float, int]:
    t0 = time.perf_counter()
    matches = engine.run_records(stream)
    seconds = time.perf_counter() - t0
    return stream.size / seconds / 1e6, len(matches)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1_000_000, help="stream size to generate")
    args = parser.parse_args()

    print(f"generating ~{args.bytes / 1e6:.1f} MB of tweets ...")
    stream = record_stream("TT", args.bytes, seed=42)
    print(f"{len(stream)} records, {stream.size / 1e6:.2f} MB total\n")

    for query, label in [("$.en.urls[*].url", "TT1: expanded URLs"), ("$.text", "TT2: tweet texts")]:
        ski = repro.JsonSki(query, collect_stats=True)
        jp = repro.JPStream(query)
        mbps_ski, n = throughput(ski, stream)
        mbps_jp, n_jp = throughput(jp, stream)
        assert n == n_jp, "engines disagree!"
        print(f"{label}  ({query})")
        print(f"  matches        : {n}")
        print(f"  JSONSki        : {mbps_ski:7.1f} MB/s")
        print(f"  JPStream       : {mbps_jp:7.1f} MB/s   ({mbps_ski / mbps_jp:.1f}x slower)")
        ratios = ", ".join(f"{g}={ski.last_stats.ratio(g):.1%}" for g in GROUPS if ski.last_stats.ratio(g) > 0.001)
        print(f"  fast-forwarded : {ski.last_stats.overall_ratio:.1%}  ({ratios})\n")

    # A tiny downstream "analytics" step over the raw matched text: count
    # distinct URL hosts without ever building tweet objects.
    engine = repro.JsonSki("$.en.urls[*].url")
    hosts: dict[bytes, int] = {}
    for match in engine.run_records(stream):
        url = match.text.strip(b'"')
        host = url.split(b"/", 3)[2] if url.count(b"/") >= 2 else url
        hosts[host] = hosts.get(host, 0) + 1
    top = sorted(hosts.items(), key=lambda kv: -kv[1])[:3]
    print("top URL hosts:", [(h.decode(), c) for h, c in top])


if __name__ == "__main__":
    main()
