"""Evaluating several JSONPath queries in one streaming pass.

``JsonSkiMulti`` fuses the query automata so one scan answers them all;
fast-forwards remain enabled exactly when they are sound for *every*
query.  Overlapping queries (same container structure) keep their
fast-forwards and amortize the pass; divergent queries degrade
gracefully to what a shared scan can safely skip.

Run::

    python examples/multi_query.py [--bytes 600000]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.data.datasets import large_record


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=400_000)
    args = parser.parse_args()

    catalog = large_record("BB", args.bytes, seed=19)
    print(f"catalog: {len(catalog) / 1e6:.2f} MB\n")

    # Three questions about the same products, one pass.
    queries = [
        "$.pd[*].cp[1:3].id",   # paper's BB1
        "$.pd[*].cp[1:3].nm",   # sibling field, same structure
        "$.pd[*].salePrice",
    ]
    multi = repro.JsonSkiMulti(queries, collect_stats=True)
    singles = [repro.JsonSki(q) for q in queries]

    # Warm up (dataset generation cache, name caches).
    multi.run(catalog)
    for engine in singles:
        engine.run(catalog)

    t_multi, results = timed(lambda: multi.run(catalog))
    t_single, _ = timed(lambda: [e.run(catalog) for e in singles])

    for query, matches in zip(queries, results):
        print(f"{query:26s} -> {len(matches):5d} matches")
    print(f"\none fused pass : {t_multi * 1e3:7.1f} ms "
          f"(fast-forwarded {multi.last_stats.overall_ratio:.1%})")
    print(f"three passes   : {t_single * 1e3:7.1f} ms")
    print(f"speedup        : {t_single / t_multi:.2f}x")

    # Per-record use: route tweets by several predicates at once.
    sample = b'{"pd": [{"cp": [{"id": "c1", "nm": "Root"}, {"id": "c2", "nm": "TV"}], "salePrice": 199.0}]}'
    ids, names, prices = (m.values() for m in repro.JsonSkiMulti(queries).run(sample))
    print("\nsample record:", {"ids": ids, "names": names, "prices": prices})


if __name__ == "__main__":
    main()
