"""Record-parallel and speculative chunk-parallel execution (Figures 10/12).

Small records are embarrassingly parallel; a single large record needs
speculative chunking.  This example runs both scenarios through the
measured-work makespan simulator and prints the scaling curves.

Run::

    python examples/parallel_records.py [--bytes 500000]
"""

from __future__ import annotations

import argparse

import repro
from repro.baselines import JPStream
from repro.data.datasets import large_record, record_stream
from repro.parallel import parallel_records_run, speculative_large_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=400_000)
    args = parser.parse_args()

    # --- scenario 1: a sequence of small records (Figure 12)
    stream = record_stream("WM", args.bytes, seed=3)
    print(f"small-record scenario: {len(stream)} records, {stream.size / 1e6:.2f} MB")
    print(f"{'workers':>8} {'wall (ms)':>10} {'speedup':>8} {'efficiency':>10}")
    engine = repro.JsonSki("$.nm")
    for workers in (1, 2, 4, 8, 16):
        result = parallel_records_run(engine, stream, workers)
        r = result.result
        print(f"{workers:>8} {r.wall_seconds * 1e3:>10.1f} {r.speedup:>8.1f} {r.efficiency:>10.1%}")

    # --- scenario 2: one large record, speculative chunking (Figure 10)
    data = large_record("WM", args.bytes, seed=3)
    print(f"\nlarge-record scenario: one {len(data) / 1e6:.2f} MB record, JPStream workers")
    print(f"{'workers':>8} {'wall (ms)':>10} {'speedup':>8}  (includes serial partition pass)")
    for workers in (1, 4, 16):
        result = speculative_large_run(
            lambda p: JPStream(p), data, "$.it[*].nm", "$.it", n_workers=workers
        )
        print(f"{workers:>8} {result.wall_seconds * 1e3:>10.1f} {result.speedup:>8.1f}")
    print(f"matches: {len(result.matches)} (identical across worker counts)")


if __name__ == "__main__":
    main()
