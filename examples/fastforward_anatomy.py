"""Anatomy of bit-parallel fast-forwarding (paper Sections 4.1-4.2).

Walks through the machinery below the engine on a small record:
structural intervals (Definition 4.1), the string mask that removes
pseudo-metacharacters, counting-based pairing (Theorem 4.3), and the
Table 1 fast-forward functions — each printed against the raw text so
you can follow the positions.

Run::

    python examples/fastforward_anatomy.py
"""

from __future__ import annotations

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.intervals import IntervalBuilder
from repro.engine.fastforward import FastForwarder
from repro.stream.buffer import StreamBuffer

RECORD = b'{"coordinates": [40.74, -73.99], "user": {"id": 6253282}, "place": {"name": "Manhattan", "tags": ["a{b", "c}d"]}}'


def ruler(data: bytes) -> str:
    return "".join(str(i % 10) for i in range(len(data)))


def main() -> None:
    print(RECORD.decode())
    print(ruler(RECORD))

    buffer = StreamBuffer(RECORD, chunk_size=64, cache_chunks=None)
    ff = FastForwarder(buffer)

    # --- 1. the string mask: metacharacters inside strings are invisible
    word_index = BufferIndex(RECORD, chunk_size=1 << 16, cache_chunks=None)
    braces = list(word_index.get(0).positions_list(CharClass.LBRACE))
    print(f"\nstructural '{{' positions (note: none inside \"a{{b\"): {braces}")

    # --- 2. structural intervals (Definition 4.1)
    ib = IntervalBuilder(word_index)
    interval = ib.build(0, CharClass.COLON)
    print(f"colon interval from 0: [{interval.start}, {interval.end}) "
          f"-> text {RECORD[interval.start:interval.end]!r}")
    words = list(ib.word_bitmaps(interval))
    print(f"  spans {len(words)} word bitmap(s); first word bits: {words[0][1]:064b}"[:90])

    # --- 3. counting-based pairing: goOverObj on the 'user' value
    user_obj = RECORD.index(b'{"id"')
    end = ff.go_over_obj(user_obj)
    print(f"\ngoOverObj({user_obj})  -> {end}   skipped {RECORD[user_obj:end]!r}")

    # --- 4. G1: sweep to the next object-typed attribute from inside the root
    ended, name_start, name_raw, value_pos = ff.go_to_obj_attr(1, "object")
    print(f"goToObjAttr(1)   -> attribute {name_raw!r} at {name_start}, value at {value_pos}")

    # --- 5. G4: from inside 'place', cut to the end of the root object
    inside_place = RECORD.index(b'"tags"')
    end = ff.go_to_obj_end(inside_place)
    print(f"goToObjEnd({inside_place}) -> {end}   (cuts past the nested array)")

    # --- 6. G5: skip two array elements
    coords = RECORD.index(b"[40.74")
    ended, pos, skipped = ff.go_over_elems(coords + 1, 1)
    print(f"goOverElems(+1)  -> next element at {pos}: {RECORD[pos:pos + 6]!r}")


if __name__ == "__main__":
    main()
