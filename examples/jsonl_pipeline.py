"""A realistic JSONL pipeline: filter → extract → validate.

Processes a newline-delimited tweet feed in three streaming stages,
using the API surface a downstream application would actually touch:
``exists`` (early-terminating predicate), ``run_with_paths`` (field
extraction with provenance), and ``validate_json`` (quarantining
records that fast-forwarding would happily skip past).

Run::

    python examples/jsonl_pipeline.py [--bytes 500000]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.data.datasets import record_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=300_000)
    args = parser.parse_args()

    stream = record_stream("TT", args.bytes, seed=99)
    # Corrupt a couple of records so the validation stage has work to do.
    payload = bytearray(stream.payload)
    for victim in (3, 17):
        if victim < len(stream):
            start, end = stream.offsets[victim]
            payload[end - 2] = ord(";")
    stream = repro.RecordStream(bytes(payload), stream.offsets)
    print(f"feed: {len(stream)} records, {stream.size / 1e6:.2f} MB")

    # Stage 1 — predicate: keep only geo-tagged tweets with URLs.
    has_place = repro.JsonSki("$.place.name")
    has_urls = repro.JsonSki("$.en.urls[0]")
    t0 = time.perf_counter()
    kept, quarantined = [], []
    for i in range(len(stream)):
        record = stream.record(i)
        try:
            if has_place.exists(record) and has_urls.exists(record):
                kept.append(i)
        except repro.ReproError:
            quarantined.append(i)
    t_filter = time.perf_counter() - t0
    print(f"stage 1 filter : kept {len(kept)}, {len(quarantined)} failed fast "
          f"({t_filter * 1e3:.1f} ms)")

    # Stage 2 — extraction with provenance from the kept records.  Note:
    # `exists` terminates early, so a record corrupted *after* its first
    # match can pass stage 1 and only trip here — hence the guard.
    extract = repro.JsonSki("$.en.urls[*].expanded_url")
    rows = []
    for i in kept[:1000]:
        try:
            for path, match in extract.run_with_paths(stream.record(i)):
                rows.append((i, path, match.value()))
        except repro.ReproError:
            quarantined.append(i)
    print(f"stage 2 extract: {len(rows)} urls; first row: record={rows[0][0]} "
          f"path={rows[0][1]} url={rows[0][2][:40]}")

    # Stage 3 — the corrupted records: fast-forwarding may or may not
    # trip over the corruption (it depends on where it sits relative to
    # the query); full validation diagnoses them all.
    invalid = [i for i in range(len(stream)) if not repro.is_valid_json(stream.record(i))]
    print(f"stage 3 validate: {len(invalid)} malformed records -> quarantine {invalid}")


if __name__ == "__main__":
    main()
