"""Run every engine on the same input and query; verify and time them.

The quickest way to see the paper's Figure 10 on *your* data:

    python examples/compare_engines.py [--bytes 400000] [--query '$.pd[*].cp[1:3].id']
"""

from __future__ import annotations

import argparse
import time

from repro.crosscheck import cross_check
from repro.data.datasets import large_record
from repro.harness.runner import METHOD_LABELS, make_engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=400_000)
    parser.add_argument("--query", default="$.pd[*].cp[1:3].id")
    parser.add_argument("--file", help="use your own JSON file instead of the BB generator")
    args = parser.parse_args()

    if args.file:
        data = open(args.file, "rb").read()
    else:
        data = large_record("BB", args.bytes, seed=4)
    print(f"input: {len(data) / 1e6:.2f} MB   query: {args.query}\n")

    # Correctness first: every engine must agree with the oracle.
    result = cross_check(data, args.query)
    print(f"cross-check: {result.n_matches} matches, "
          f"{len(result.agreed)} engines agree"
          + (f" ({len(result.skipped)} skipped)" if result.skipped else "") + "\n")

    rows = []
    for method in ("jpstream", "rapidjson", "simdjson", "pison", "jsonski", "stdlib"):
        engine = make_engine(method, args.query)
        engine.run(data)  # warm-up
        best = min(_timed(engine, data) for _ in range(3))
        rows.append((METHOD_LABELS[method], best))
    fastest = min(seconds for _, seconds in rows)
    print(f"{'engine':16} {'seconds':>10} {'vs best':>8}")
    for label, seconds in sorted(rows, key=lambda r: r[1]):
        print(f"{label:16} {seconds:10.4f} {seconds / fastest:7.1f}x")


def _timed(engine, data) -> float:
    t0 = time.perf_counter()
    engine.run(data)
    return time.perf_counter() - t0


if __name__ == "__main__":
    main()
