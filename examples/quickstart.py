"""Quickstart: query the paper's Figure 1 tweet with JSONSki.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro

# The geo-referenced tweet of the paper's Figure 1 (slightly extended).
TWEET = b"""
{ "coordinates": [40.74118764, -73.9998279],
  "user": { "id": 6253282 },
  "place": { "name": "Manhattan",
             "bounding_box": { "type": "Polygon",
                               "pos": [[-74.026675, 40.683935],
                                       [-74.026675, 40.877483],
                                       [-73.910408, 40.877483]] } } }
"""


def main() -> None:
    # Compile once, stream as often as you like.
    engine = repro.JsonSki("$.place.name", collect_stats=True)
    matches = engine.run(TWEET)

    print("query   :", "$.place.name")
    print("matches :", matches.values())
    print("raw text:", [m.text for m in matches])

    # The engine reports how much of the stream it never examined
    # (the paper's fast-forward ratio, Table 6).
    stats = engine.last_stats
    print(f"\nfast-forwarded: {stats.overall_ratio:.1%} of the input")
    for group, chars in stats.chars.items():
        if chars:
            print(f"  {group}: {chars} chars")

    # Index ranges and wildcards work the same way.
    print("\nsecond bounding-box corner:",
          repro.JsonSki("$.place.bounding_box.pos[1]").run(TWEET).values())
    print("all coordinates:",
          repro.JsonSki("$.coordinates[*]").run(TWEET).values())

    # Every baseline engine shares the same interface:
    for name in ("jpstream", "rapidjson", "simdjson", "pison"):
        values = repro.ENGINES[name]("$.user.id").run(TWEET).values()
        print(f"{name:10s} -> {values}")


if __name__ == "__main__":
    main()
