"""Exploring an unfamiliar feed: discover → explain → extract.

Given records you have never seen, the workflow is:

1. ``discover_paths`` (SAX event substrate) sketches the schema — every
   returned path is a runnable query;
2. ``explain``/``analyze`` predict and measure how well fast-forwarding
   will do on a candidate query;
3. ``Extractor`` turns the chosen queries into flat rows, one fused
   streaming pass per record.

Run::

    python examples/schema_discovery.py [--bytes 300000]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis import analyze
from repro.data.datasets import record_stream
from repro.engine.events import depth_histogram, discover_paths, key_frequencies
from repro.extract import Extractor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=200_000)
    args = parser.parse_args()

    stream = record_stream("GMD", args.bytes, seed=77)
    sample = stream.record(0)
    print(f"feed: {len(stream)} records; inspecting the first ({len(sample)} bytes)\n")

    # --- 1. schema sketch from the event stream
    paths = discover_paths(sample, max_paths=12)
    print("discovered paths (first 12):")
    for path in paths:
        print("   ", path)
    top_keys = sorted(key_frequencies(sample).items(), key=lambda kv: -kv[1])[:5]
    print("hot keys:", top_keys)
    print("depth histogram:", dict(sorted(depth_histogram(sample).items())), "\n")

    # --- 2. pick a deep query and ask the advisor about it
    query = "$.rt[*].lg[*].st[*].dt.tx"
    report = analyze(sample, query)
    print(report.describe(), "\n")

    # --- 3. extraction over the whole feed
    rows = Extractor(
        {"summary": "$.rt[*].summary", "legs": "$.rt[*].lg[*].distance.tx", "status": "$.status"},
        mode="list",
    )
    totals = {"records": 0, "legs": 0}
    for row in rows.extract_records(stream):
        totals["records"] += 1
        totals["legs"] += len(row["legs"])
    print(f"extracted {totals['legs']} legs from {totals['records']} direction results")


if __name__ == "__main__":
    main()
