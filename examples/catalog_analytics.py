"""Index-range queries over a product catalog (the paper's BB workload).

Builds a Best-Buy-shaped catalog as ONE large JSON record and evaluates
range-constrained paths (the paper's BB1: ``$.pd[*].cp[1:3].id``),
demonstrating the G5 fast-forward group: elements outside ``[1:3]`` are
skipped without being parsed.  Also compares all five methods end to end
on the same query.

Run::

    python examples/catalog_analytics.py [--bytes 1000000]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.data.datasets import large_record
from repro.harness.runner import METHOD_LABELS, make_engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=600_000)
    args = parser.parse_args()

    print(f"generating a ~{args.bytes / 1e6:.1f} MB catalog record ...")
    catalog = large_record("BB", args.bytes, seed=7)

    # --- the paper's BB1: second and third category level of each product
    engine = repro.JsonSki("$.pd[*].cp[1:3].id", collect_stats=True)
    categories = engine.run(catalog)
    print(f"\nBB1 category ids : {len(categories)} matches "
          f"(fast-forwarded {engine.last_stats.overall_ratio:.1%})")

    # --- a business question composed from two streaming passes:
    # distribution of sale prices, and products with video chapters.
    prices = [m.value() for m in repro.JsonSki("$.pd[*].salePrice").run(catalog)]
    prices.sort()
    mid = prices[len(prices) // 2]
    print(f"sale prices      : n={len(prices)} min={prices[0]:.2f} "
          f"median={mid:.2f} max={prices[-1]:.2f}")
    chapters = repro.JsonSki("$.pd[*].vc[*].cha").run(catalog)
    print(f"video chapters   : {len(chapters)} (rare attribute, paper's BB2)")

    # --- filter predicates (extension): premium products by name
    premium = repro.JsonSki("$.pd[?(@.salePrice > 2000)].nm").run(catalog)
    print(f"premium products : {len(premium)} over $2000"
          + (f", e.g. {premium[0].value()!r}" if len(premium) else ""))

    # --- five-method shootout on BB1 (Figure 10, one bar group)
    print("\nmethod shootout on BB1:")
    results = {}
    for method in ("jpstream", "rapidjson", "simdjson", "pison", "jsonski"):
        eng = make_engine(method, "$.pd[*].cp[1:3].id")
        eng.run(catalog)  # warm-up
        t0 = time.perf_counter()
        n = len(eng.run(catalog))
        seconds = time.perf_counter() - t0
        results[method] = seconds
        print(f"  {METHOD_LABELS[method]:10s} {seconds * 1e3:8.1f} ms   ({n} matches)")
    best = min(results, key=results.get)
    print(f"fastest: {METHOD_LABELS[best]}")


if __name__ == "__main__":
    main()
