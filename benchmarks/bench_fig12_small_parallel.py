"""Figure 12: small records with 16 (simulated) workers.

Every record is really executed; the wall-clock is the measured-work
makespan (see repro.parallel).  Asserts the paper's scaling claim: the
streaming methods scale near-linearly on record-parallel work.
"""

from __future__ import annotations

from benchmarks.conftest import SIZE, WORKERS, print_experiment
from repro.harness import experiments as exp
from repro.parallel import parallel_records_run
from repro.harness.runner import make_engine


def test_figure12_table(benchmark):
    result = benchmark.pedantic(exp.exp_fig12, args=(SIZE, WORKERS), rounds=1, iterations=1)
    print_experiment(result)
    _, headers, rows = result
    # Speedup columns are the second half of each row.
    n_methods = (len(headers) - 1) // 2
    for row in rows:
        speedups = row[1 + n_methods :]
        # Paper: JPStream/Pison/JSONSki realize ~10-12x on 16 cores.  A
        # single GC pause on one record can dent a simulated makespan, so
        # the floor is conservative.
        assert all(s > WORKERS * 0.3 for s in speedups), row


def test_jsonski_scaling_curve(benchmark, tt_records):
    engine = make_engine("jsonski", "$.text")

    def curve():
        return [parallel_records_run(engine, tt_records, w).speedup for w in (1, 4, 16)]

    s1, s4, s16 = benchmark.pedantic(curve, rounds=1, iterations=1)
    assert 0.9 < s1 < 1.1
    assert s4 > 2.5
    assert s16 > 7
