"""Extension: filter predicates, costed.

Compares three ways to answer "names of products over a price" on the
BB catalog: the filter query (query splitting), the fused two-query
post-filter (JsonSkiMulti + Python zip), and the stdlib parse-everything
approach.  Asserts the filter path stays well ahead of full parsing and
within a small factor of the hand-fused plan.
"""

from __future__ import annotations

import json

from benchmarks.conftest import SIZE, print_experiment
from repro.engine import JsonSki, JsonSkiMulti
from repro.harness import experiments as exp
from repro.harness.runner import time_run


def test_filter_cost(benchmark):
    data = exp.get_large("BB", SIZE)
    threshold = 1500.0
    filter_query = f"$.pd[?(@.salePrice > {threshold})].nm"

    def fused(payload):
        prices, names = JsonSkiMulti(["$.pd[*].salePrice", "$.pd[*].nm"]).run(payload)
        return [n for p, n in zip(prices.values(), names.values()) if isinstance(p, (int, float)) and p > threshold]

    def stdlib(payload):
        doc = json.loads(payload)
        return [p["nm"] for p in doc["pd"] if isinstance(p.get("salePrice"), (int, float)) and p["salePrice"] > threshold]

    def measure():
        engine = JsonSki(filter_query)
        t_filter, matches = time_run(engine, data)
        expected = sorted(stdlib(data))
        assert sorted(matches.values()) == expected
        import time

        t0 = time.perf_counter()
        fused_result = fused(data)
        t_fused = time.perf_counter() - t0
        assert sorted(fused_result) == expected
        t0 = time.perf_counter()
        stdlib(data)
        t_stdlib = time.perf_counter() - t0
        return t_filter, t_fused, t_stdlib, len(expected)

    t_filter, t_fused, t_stdlib, n = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment((f"Extension: filter query cost ({n} matches)",
                      ["approach", "seconds"],
                      [["filter query (split)", t_filter],
                       ["fused multi-query + zip", t_fused],
                       ["json.loads everything", t_stdlib]]))
    assert t_filter < t_fused * 4  # splitting overhead stays bounded
