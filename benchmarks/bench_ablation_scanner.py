"""Ablation A2: vectorized vs word-at-a-time scanner.

Both modes run the identical fast-forward algorithms; the word mode
manipulates 64-bit words one at a time (paper-faithful), the vector mode
answers the same interval queries from decoded position arrays.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp
from repro.harness.runner import make_engine


def test_ablation_table(benchmark):
    size = min(SIZE, 1 << 19)  # word mode is the slow one; cap the sweep
    result = benchmark.pedantic(exp.exp_ablation_scanner, args=(size,), rounds=1, iterations=1)
    print_experiment(result)


@pytest.mark.parametrize("mode", ["jsonski", "jsonski-word"])
def test_tt1_by_mode(benchmark, mode, tt_large):
    engine = make_engine(mode, "$[*].en.urls[*].url")
    benchmark(engine.run, tt_large)
