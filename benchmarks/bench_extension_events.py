"""Extension: the SAX event substrate, quantified.

The event stream examines every token (it *is* the detailed traversal
fast-forwarding avoids), so JSONSki should beat an equivalent
event-stream consumer by roughly its fast-forward margin — asserting
the paper's Section 2 framing against our own public API.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.engine import JsonSki, iter_events
from repro.harness import experiments as exp
from repro.harness.runner import time_run


def _events_extract_text(data: bytes) -> list[bytes]:
    """TT2 (`$[*].text`) implemented over the event stream."""
    out = []
    want_value = False
    for event in iter_events(data):
        if event.kind == "key":
            want_value = event.value == "text" and event.depth == 1
        elif want_value and event.kind == "primitive":
            out.append(data[event.start : event.end])
            want_value = False
        elif event.kind in ("start_object", "start_array"):
            want_value = False
    return out


def test_events_vs_fastforward(benchmark):
    data = exp.get_large("TT", SIZE)

    def measure():
        import time

        engine = JsonSki("$[*].text")
        engine.run(data)
        t0 = time.perf_counter()
        ski_matches = engine.run(data)
        t_ski = time.perf_counter() - t0
        t0 = time.perf_counter()
        sax_matches = _events_extract_text(data)
        t_sax = time.perf_counter() - t0
        assert len(ski_matches) == len(sax_matches)
        assert ski_matches[0].text == sax_matches[0]
        return t_ski, t_sax

    t_ski, t_sax = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Extension: fast-forward vs SAX event stream (TT2)",
                      ["approach", "seconds"],
                      [["JSONSki", t_ski], ["event stream", t_sax]]))
    assert t_ski * 2 < t_sax  # skipping beats visiting every token


@pytest.mark.parametrize("consumer", ["jsonski", "events"])
def test_tt2_by_consumer(benchmark, consumer, tt_large):
    if consumer == "jsonski":
        engine = JsonSki("$[*].text")
        benchmark(engine.run, tt_large)
    else:
        benchmark(_events_extract_text, tt_large)
