"""Ablation A1: fast-forwarding on vs off.

JSONSki (Algorithm 2) against plain recursive-descent streaming
(Algorithm 1) — same streaming model, same automaton, no skipping.
Quantifies what the paper's core contribution buys.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp
from repro.harness.runner import make_engine


def test_ablation_table(benchmark):
    result = benchmark.pedantic(exp.exp_ablation_fastforward, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, _, rows = result
    total_rds = sum(row[1] for row in rows)
    total_ski = sum(row[2] for row in rows)
    assert total_ski < total_rds  # FF must pay for itself in aggregate


@pytest.mark.parametrize("engine_name", ["rds", "jsonski"])
def test_nspl1_ff_on_off(benchmark, engine_name):
    """NSPL1 is the paper's most extreme case (99.99% G4)."""
    data = exp.get_large("NSPL", SIZE)
    engine = make_engine(engine_name, "$.mt.vw.co[*].nm")
    matches = benchmark(engine.run, data)
    assert len(matches) == 44
