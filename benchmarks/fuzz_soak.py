"""Long-running differential fuzz soak (the un-budgeted fuzz_smoke).

Sweeps seeded mutation corpora over every registered engine until the
requested case count (or wall-clock budget) is spent, asserting the
resilience contract continuously: every case must end in agreement, a
diagnosed :class:`~repro.errors.ReproError`, or the documented
skip-region blind spot — never a divergence, a crash, or a hang.

Exit status 0 when the contract held, 1 otherwise (CI-friendly)::

    PYTHONPATH=src python benchmarks/fuzz_soak.py --mutations 5000
    PYTHONPATH=src python benchmarks/fuzz_soak.py --minutes 10 --seed 3
"""

from __future__ import annotations

import argparse
import json
import time

from repro.resilience import differential_fuzz

#: Base records spanning the shapes the six paper datasets exercise:
#: nested objects, object arrays, long flat arrays, deep mixed nesting.
BASE_RECORDS = [
    json.dumps({"a": {"b": 1, "k": [1, 2, 3]}, "x": "s", "n": None}).encode(),
    json.dumps([{"x": i, "k": str(i)} for i in range(20)]).encode(),
    json.dumps({"a": list(range(100)), "k": {"k": {"k": True}}}).encode(),
    json.dumps({"pd": [{"cp": [{"id": i}, {"id": i + 1}]} for i in range(10)]}).encode(),
]

BATCH = 500  # mutations per reported round


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mutations", type=int, default=2000,
                        help="total mutations to sweep (default 2000)")
    parser.add_argument("--minutes", type=float, default=None,
                        help="instead: keep sweeping for this many minutes")
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument("--engines", nargs="*", default=None,
                        help="engine names (default: every registered engine)")
    args = parser.parse_args()

    engines = tuple(args.engines) if args.engines else None
    started = time.monotonic()
    total_cases = 0
    round_seed = args.seed
    swept = 0
    ok = True
    while True:
        report = differential_fuzz(
            BASE_RECORDS, BATCH, seed=round_seed,
            engines=engines, deadline_per_case=30.0,
        )
        total_cases += report.cases
        swept += BATCH
        minutes = (time.monotonic() - started) / 60.0
        print(f"[{minutes:6.2f} min] seed={round_seed} {report.describe().splitlines()[0]}")
        if not report.ok:
            print(report.describe())
            ok = False
            break
        round_seed += 1
        if args.minutes is not None:
            if minutes >= args.minutes:
                break
        elif swept >= args.mutations:
            break
    verdict = "contract held" if ok else "CONTRACT VIOLATED"
    print(f"{verdict}: {total_cases} cases over {swept} mutations "
          f"in {(time.monotonic() - started):.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
