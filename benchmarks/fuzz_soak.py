"""Long-running differential fuzz soak (the un-budgeted fuzz_smoke).

Sweeps seeded mutation corpora over every registered engine until the
requested case count (or wall-clock budget) is spent, asserting the
resilience contract continuously: every case must end in agreement, a
diagnosed :class:`~repro.errors.ReproError`, or the documented
skip-region blind spot — never a divergence, a crash, or a hang.

``--kill-resume`` soaks the checkpoint layer's contract instead: each
round builds a record stream from the mutated corpus (malformed records
included), interrupts a checkpointed run at a random cursor, resumes
it, and asserts the combined output is byte-identical to an
uninterrupted run — reported in the same agree/violation taxonomy.

Exit status 0 when the contract held, 1 otherwise (CI-friendly)::

    PYTHONPATH=src python benchmarks/fuzz_soak.py --mutations 5000
    PYTHONPATH=src python benchmarks/fuzz_soak.py --minutes 10 --seed 3
    PYTHONPATH=src python benchmarks/fuzz_soak.py --kill-resume --mutations 600
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import time

from repro.resilience import differential_fuzz

#: Base records spanning the shapes the six paper datasets exercise:
#: nested objects, object arrays, long flat arrays, deep mixed nesting.
BASE_RECORDS = [
    json.dumps({"a": {"b": 1, "k": [1, 2, 3]}, "x": "s", "n": None}).encode(),
    json.dumps([{"x": i, "k": str(i)} for i in range(20)]).encode(),
    json.dumps({"a": list(range(100)), "k": {"k": {"k": True}}}).encode(),
    json.dumps({"pd": [{"cp": [{"id": i}, {"id": i + 1}]} for i in range(10)]}).encode(),
]

BATCH = 500  # mutations per reported round

#: Queries the kill-resume soak cycles through (record-stream shapes).
KILL_RESUME_QUERIES = ("$.a.b", "$.a[*]", "$.pd[*].cp[*].id", "$.k")


def kill_resume_round(seed: int, n_records: int, workdir: str) -> tuple[int, list[str]]:
    """One kill-resume soak round: returns (cases, violation lines).

    Builds a stream of ``n_records`` mutated records (seeded, so every
    violation is replayable by seed), then checks the interrupt/resume
    equivalence at a random cursor for each query — alternating between
    the serial recovery runner and the resilient pool runner.
    """
    from repro.checkpoint import kill_resume_differential
    from repro.resilience import corpus
    from repro.stream.records import RecordStream

    rng = random.Random(seed)
    mutations = corpus(BASE_RECORDS, n_records, seed=seed)
    stream = RecordStream.from_records([m.data for m in mutations])
    cases = 0
    violations: list[str] = []
    for qi, query in enumerate(KILL_RESUME_QUERIES):
        runner = "pool" if qi % 2 else "recovery"
        interrupt_at = rng.randrange(0, len(stream) + 2)  # past-end on purpose
        report = kill_resume_differential(
            query, stream, interrupt_at=interrupt_at, workdir=workdir,
            runner=runner, checkpoint_every=max(1, n_records // 8),
        )
        cases += 1
        if not report.ok:
            violations.append(
                f"seed={seed} query={query!r} runner={runner} {report.describe()}"
            )
    return cases, violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mutations", type=int, default=2000,
                        help="total mutations to sweep (default 2000)")
    parser.add_argument("--minutes", type=float, default=None,
                        help="instead: keep sweeping for this many minutes")
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument("--engines", nargs="*", default=None,
                        help="engine names (default: every registered engine)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="soak the checkpoint kill-and-resume contract "
                             "instead of the engine differential")
    args = parser.parse_args()

    engines = tuple(args.engines) if args.engines else None
    started = time.monotonic()
    total_cases = 0
    round_seed = args.seed
    swept = 0
    ok = True
    batch = 40 if args.kill_resume else BATCH  # resume rounds re-run streams 3x
    with tempfile.TemporaryDirectory(prefix="fuzz-soak-ckpt-") as workdir:
        while True:
            if args.kill_resume:
                cases, violations = kill_resume_round(round_seed, batch, workdir)
                total_cases += cases
                headline = (f"kill-resume: {cases} checks ok" if not violations
                            else f"kill-resume: {len(violations)} VIOLATIONS")
            else:
                report = differential_fuzz(
                    BASE_RECORDS, batch, seed=round_seed,
                    engines=engines, deadline_per_case=30.0,
                )
                total_cases += report.cases
                violations = [] if report.ok else [report.describe()]
                headline = report.describe().splitlines()[0]
            swept += batch
            minutes = (time.monotonic() - started) / 60.0
            print(f"[{minutes:6.2f} min] seed={round_seed} {headline}")
            if violations:
                print("\n".join(violations))
                ok = False
                break
            round_seed += 1
            if args.minutes is not None:
                if minutes >= args.minutes:
                    break
            elif swept >= args.mutations:
                break
    verdict = "contract held" if ok else "CONTRACT VIOLATED"
    print(f"{verdict}: {total_cases} cases over {swept} mutations "
          f"in {(time.monotonic() - started):.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
