"""Ablation A6: how the fast-forward margin varies with query depth.

A synthetic nest lets the query stop at any depth: shallow queries skip
almost everything (huge G2 ratios); the deepest query touches every
level.  The margin over the FF-off baseline should shrink monotonically
in the large — the quantitative form of the paper's Section 3.2
intuition that opportunities come from *irrelevant* substructure.
"""

from __future__ import annotations

import json
import random

from benchmarks.conftest import print_experiment
from repro.harness.runner import make_engine, time_run

MAX_DEPTH = 6


def _nested(rng: random.Random, depth: int, fanout: int = 4) -> dict:
    if depth == 0:
        return {"leaf": rng.randrange(1000), "pad": "x" * 20}
    return {
        f"k{i}": _nested(rng, depth - 1, fanout) if i == 0 else {"pad": "y" * 30, "n": i}
        for i in range(fanout)
    }


def test_depth_sweep(benchmark):
    rng = random.Random(12)
    record = {"root": _nested(rng, MAX_DEPTH)}
    data = json.dumps([record] * 200).encode()

    def measure():
        rows = []
        for depth in range(1, MAX_DEPTH + 1):
            query = "$[*].root" + ".k0" * depth
            t_ski, m1 = time_run(make_engine("jsonski", query), data)
            t_rds, m2 = time_run(make_engine("rds", query), data)
            assert len(m1) == len(m2)
            rows.append([query if depth < 4 else f"...k0 x{depth}", t_rds, t_ski,
                         round(t_rds / t_ski, 1)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Ablation A6: fast-forward margin vs query depth",
                      ["query", "RDS(no-FF)", "JSONSki", "speedup"], rows))
    # Shallow queries must show a larger margin than the deepest one.
    assert rows[0][3] > rows[-1][3] * 0.8
    assert all(row[3] > 1.0 for row in rows)
