"""Honesty check: where does CPython's C json parser land?

The paper compares C++ systems at equal implementation maturity; this
reproduction compares pure-Python engines the same way.  ``json.loads``
(C) + tree walk is what a Python user gets for free — measuring it keeps
the language-level constant visible: the *algorithmic* ordering among
the pure-Python engines is the reproduction result; absolute Python
numbers are not competitive with C, exactly as expected.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp
from repro.harness.runner import make_engine, time_run


def test_stdlib_context_table(benchmark):
    def measure():
        rows = []
        for name, q in exp.all_queries()[::2]:
            data = exp.get_large(name, SIZE)
            row = [q.qid]
            for method in ("stdlib", "jsonski", "jpstream"):
                engine = make_engine(method, q.large)
                engine.run(data)
                seconds, _ = time_run(engine, data)
                row.append(seconds)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Context: C json.loads+walk vs the pure-Python engines",
                      ["Query", "json.loads+walk", "JSONSki", "JPStream"], rows))
    # The C parser should beat everything pure-Python; JSONSki should
    # still beat the pure-Python char-by-char engine.  Both directions
    # asserted so the table stays honest if either regresses.
    assert sum(r[1] for r in rows) < sum(r[2] for r in rows)
    assert sum(r[2] for r in rows) < sum(r[3] for r in rows)


@pytest.mark.parametrize("method", ["stdlib", "jsonski"])
def test_bb1_context(benchmark, method, bb_large):
    engine = make_engine(method, "$.pd[*].cp[1:3].id")
    matches = benchmark(engine.run, bb_large)
    assert len(matches) > 0
