"""Shared benchmark configuration.

Input size defaults to ``REPRO_BENCH_SIZE`` bytes per dataset (400 KB).
The paper uses 1 GB inputs on C++ implementations; pure Python runs
~10^3 slower, so MB-scale inputs produce the same *shapes* in minutes.
Raise the size for slower, higher-fidelity runs::

    REPRO_BENCH_SIZE=2000000 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness import experiments as exp

SIZE = exp.DEFAULT_SIZE
WORKERS = exp.DEFAULT_WORKERS


@pytest.fixture(scope="session")
def bb_large() -> bytes:
    return exp.get_large("BB", SIZE)


@pytest.fixture(scope="session")
def tt_large() -> bytes:
    return exp.get_large("TT", SIZE)


@pytest.fixture(scope="session")
def tt_records():
    return exp.get_records("TT", SIZE)


def print_experiment(result: tuple) -> None:
    """Render one experiment's table to stdout (shown with ``-s`` or in
    the captured section of the benchmark log)."""
    from repro.harness.tables import render_table

    title, headers, rows = result
    print("\n" + render_table(headers, rows, title=title) + "\n")
