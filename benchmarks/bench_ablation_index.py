"""Ablation A4: structural-index construction cost by flavour.

Two materializations of the same structural facts: the word-bitmap index
(paper-shaped, feeds the word-at-a-time scanner) and the position-based
index (feeds the vectorized scanner).  Measures pure stage-1 cost —
what simdjson/Pison pay up front for the whole record, and what JSONSki
pays lazily per chunk.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.posindex import PositionBufferIndex
from repro.harness import experiments as exp


#: The classes a typical query run touches.
_HOT_CLASSES = (
    CharClass.LBRACE, CharClass.RBRACE, CharClass.LBRACKET, CharClass.RBRACKET,
    CharClass.COLON, CharClass.COMMA, CharClass.QUOTE, CharClass.OPEN,
)


def _build_all(index_cls, data):
    """Build the index AND decode the hot classes' positions — the part
    of stage 1 an engine actually consumes (raw bitmap packing alone
    favours the word flavour; decoding is where positions win)."""
    index = index_cls(data, cache_chunks=None)
    for cid in range(index.n_chunks):
        chunk = index.get(cid)
        for cls in _HOT_CLASSES:
            chunk.positions_list(cls)
    return index


@pytest.mark.parametrize("flavour", ["word-bitmaps", "positions"])
def test_index_build(benchmark, flavour, bb_large):
    cls = BufferIndex if flavour == "word-bitmaps" else PositionBufferIndex
    benchmark(_build_all, cls, bb_large)


def test_index_build_table(benchmark):
    import time

    def measure():
        rows = []
        for name in ("TT", "BB", "NSPL", "WM"):
            data = exp.get_large(name, SIZE)
            row = [name]
            for cls in (BufferIndex, PositionBufferIndex):
                _build_all(cls, data)  # warm-up
                best = min(
                    _timed(time, cls, data) for _ in range(3)
                )
                row.append(best)
            row.append(round(row[1] / row[2], 1))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Ablation A4: index construction, word bitmaps vs positions",
                      ["Data", "word bitmaps (s)", "positions (s)", "ratio"], rows))
    # Decoding from word bitmaps costs an unpack per class; the position
    # pipeline produces positions directly.  Best-of-3 timings with a 15%
    # noise allowance (single-core machine, millisecond measurements).
    assert all(row[2] <= row[1] * 1.15 for row in rows)


def _timed(time, cls, data) -> float:
    t0 = time.perf_counter()
    _build_all(cls, data)
    return time.perf_counter() - t0
