"""Non-blocking observability-overhead smoke script.

Measures the Figure-10-style large-record scan (BB1) with observability
fully off (the default no-op tracer, no registry) against the same
engine with ``collect_stats=True`` and with a live registry + tracer,
then reports the ratios.  The design target: the metrics-off path
matches the pre-observability hot path (<5% — it is structurally the
same code), and a live registry stays cheap because counters are bumped
per fast-forward decision, not per byte.

Run directly (exit status is always 0 — this is a report, not a gate)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--size BYTES]
"""

from __future__ import annotations

import argparse
import time

from repro.data.datasets import large_record
from repro.engine import JsonSki
from repro.observe import MetricsRegistry, Tracer

QUERY = "$.pd[*].cp[1:3].id"


def best_seconds(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=400_000, help="input bytes (default 400k)")
    parser.add_argument("--rounds", type=int, default=5, help="best-of rounds per variant")
    args = parser.parse_args()

    from repro.resilience import Limits

    data = large_record("BB", args.size, seed=7)
    variants = {
        "guards off": JsonSki(QUERY, limits=Limits.unlimited()),
        "off (defaults)": JsonSki(QUERY),
        "collect_stats": JsonSki(QUERY, collect_stats=True),
        "metrics registry": JsonSki(QUERY, metrics=MetricsRegistry()),
        "metrics + tracer": JsonSki(QUERY, metrics=MetricsRegistry(), tracer=Tracer(keep=False)),
        "deadline armed": JsonSki(QUERY, limits=Limits().with_deadline(3600.0)),
    }
    for engine in variants.values():
        engine.run(data)  # warm classification caches

    baseline = None
    print(f"BB1 over {len(data)} bytes, best of {args.rounds}:")
    for label, engine in variants.items():
        seconds = best_seconds(lambda e=engine: e.run(data), args.rounds)
        if baseline is None:
            baseline = seconds  # guards fully off = the reference hot path
        ratio = seconds / baseline
        flag = "  <-- REGRESSION" if ratio > 1.05 and label == "off (defaults)" else ""
        print(f"  {label:18s} {seconds * 1e3:8.2f} ms   {ratio:5.2f}x{flag}")
    print("targets: default guards (depth counter only) within 5% of guards-off;\n"
          "         metrics-off within 5% of the pre-observability path\n"
          "(see tests/test_perf_smoke.py for the asserting version)")

    # Checkpointing overhead: a record-stream run with a durable cursor
    # committed every 1000 records vs the same run with no checkpoint.
    # The commit cost (json + fsync + rename) amortizes over the batch.
    import tempfile
    from pathlib import Path

    from repro.data.datasets import record_stream
    from repro.resilience import run_with_recovery

    stream = record_stream("TT", max(args.size, 200_000), seed=7)
    with tempfile.TemporaryDirectory(prefix="perf-smoke-ckpt-") as tmp:
        ck = Path(tmp) / "run.ckpt"
        t_plain = best_seconds(
            lambda: run_with_recovery(JsonSki("$.text"), stream), args.rounds
        )
        t_ckpt = best_seconds(
            lambda: run_with_recovery(
                JsonSki("$.text"), stream, checkpoint=ck, checkpoint_every=1000
            ),
            args.rounds,
        )
    ratio = t_ckpt / t_plain
    print(f"\ncheckpointing over {len(stream)} records (every 1000):")
    print(f"  no checkpoint      {t_plain * 1e3:8.2f} ms    1.00x")
    print(f"  checkpoint_every=1000 {t_ckpt * 1e3:5.2f} ms   {ratio:5.2f}x")
    print("target: checkpoint_every=1000 within 5% of the plain record loop")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
