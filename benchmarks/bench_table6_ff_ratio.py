"""Table 6: fast-forward ratios by function group.

The paper's headline: every query fast-forwards over 95% of the stream.
At MB scale with synthetic data we assert a slightly relaxed floor (90%)
plus the per-query dominant groups the paper reports.
"""

from __future__ import annotations

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp


def _pct(cell: str) -> float:
    return 0.0 if cell.startswith("<") else float(cell.rstrip("%"))


def test_table6(benchmark):
    result = benchmark.pedantic(exp.exp_table6, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, headers, rows = result
    by_query = {row[0]: dict(zip(headers[1:], row[1:])) for row in rows}
    for qid, cells in by_query.items():
        assert _pct(cells["Overall"]) > 90, (qid, cells)
    # Dominant groups, as in the paper's Table 6:
    assert _pct(by_query["TT2"]["G4"]) > 50      # text found early -> skip rest
    assert _pct(by_query["NSPL1"]["G4"]) > 90    # matches early, skip the matrix
    assert _pct(by_query["NSPL2"]["G5"]) > 50    # index-range skipping
    assert _pct(by_query["WM1"]["G1"]) > 50      # type-directed sweeps
    assert _pct(by_query["GMD2"]["G2"]) > 90     # unmatched-value skipping
    assert _pct(by_query["WP2"]["G5"]) > 50      # root range constraint
