"""Table 4: dataset structural statistics.

Regenerates the paper's dataset-statistics table from the synthetic
generators and benchmarks the bit-parallel statistics sweep itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.data.stats import structural_stats
from repro.harness import experiments as exp


def test_table4(benchmark):
    result = benchmark.pedantic(exp.exp_table4, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, _, rows = result
    assert len(rows) == 6


@pytest.mark.parametrize("dataset", ["TT", "BB", "NSPL"])
def test_structural_stats_throughput(benchmark, dataset):
    data = exp.get_large(dataset, SIZE)
    stats = benchmark(structural_stats, data)
    assert stats.size_bytes == len(data)
