"""Paper-vs-measured comparison (the reproduction's acceptance test).

Prints the side-by-side Table 6 and headline-speedup comparisons and
asserts the reproduction criteria: dominant fast-forward groups overlap
with the paper's bold entries on every query, overall ratios stay above
90%, and the serial ordering (JSONSki fastest, then Pison, then the
bit-parallel DOM, then char-by-char) holds.
"""

from __future__ import annotations

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp


def test_table6_against_paper(benchmark):
    result = benchmark.pedantic(exp.exp_table6_compare, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, _, rows = result
    assert all(row[-1] == "yes" for row in rows), "dominant-group mismatch with the paper"
    for row in rows:
        ours = float(row[2].rstrip("%"))
        assert ours > 90, row


def test_fig10_headlines_against_paper(benchmark):
    result = benchmark.pedantic(exp.exp_fig10_compare, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, _, rows = result
    measured = {row[0]: float(row[2].rstrip("x")) for row in rows}
    # Ordering matches the paper's: JPStream worst, Pison closest.
    assert measured["JPStream"] > measured["Pison"]
    assert measured["simdjson"] > measured["Pison"]
    # And JSONSki wins against everything (> 1x).
    assert all(v > 1.0 for v in measured.values())
