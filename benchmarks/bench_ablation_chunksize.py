"""Ablation A3: index chunk-size sensitivity.

The chunk is the streaming engine's memory knob (the paper: "memory
consumption is configurable by adjusting the input buffer size"); this
sweep shows the latency cost of shrinking it.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.engine import JsonSki
from repro.harness import experiments as exp


def test_ablation_table(benchmark):
    result = benchmark.pedantic(exp.exp_ablation_chunksize, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)


@pytest.mark.parametrize("chunk_size", [1 << 12, 1 << 16, 1 << 20])
def test_bb1_by_chunk(benchmark, chunk_size, bb_large):
    engine = JsonSki("$.pd[*].cp[1:3].id", chunk_size=chunk_size)
    matches = benchmark(engine.run, bb_large)
    assert len(matches) > 0
