"""Record and gate the word-vs-vector performance trajectory.

This script is the repository's perf ledger for the two-stage hot path
(``docs/two-stage.md``).  It times every Table 5 query under both
JSONSki scanner modes — the paper-faithful word-at-a-time path
(``jsonski-word``) and the vectorized stage-1/stage-2 default
(``jsonski``) — and appends one JSON record per figure to
``BENCH_fig10.json`` (one large record per dataset) and
``BENCH_fig11.json`` (streams of small records).  Each record carries
raw best-of-N seconds plus the word/vector speedup ratio per query, so
the files accumulate a machine-comparable trajectory over the repo's
history: ratios, unlike absolute seconds, transfer across hosts.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py            # measure + print
    PYTHONPATH=src python benchmarks/perf_trajectory.py --record   # ... and append
    PYTHONPATH=src python benchmarks/perf_trajectory.py --check    # gate vs last record

``--check`` is the CI regression gate: it fails (exit 1) if the
geometric-mean vector speedup of either figure regresses more than
``--tolerance`` (default 10%) against the most recent committed record,
or if any fig10 large-record flagship query falls below parity.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.experiments import (
    DEFAULT_SIZE,
    all_queries,
    get_large,
    get_records,
    small_queries,
)
from repro.harness.runner import make_engine, time_run, time_run_records

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = {10: REPO_ROOT / "BENCH_fig10.json", 11: REPO_ROOT / "BENCH_fig11.json"}

#: The large-record queries the tentpole promises >=2x on (the paper's
#: headline bars); ``--check`` additionally requires these stay >= 1.0.
FLAGSHIPS = ("TT1", "TT2", "BB1", "BB2", "GMD1")

WORD, VECTOR = "jsonski-word", "jsonski"


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def measure_fig10(size: int, repeat: int) -> dict:
    queries = {}
    for name, q in all_queries():
        data = get_large(name, size)
        word_s, word_m = time_run(make_engine(WORD, q.large), data, repeat=repeat)
        vec_s, vec_m = time_run(make_engine(VECTOR, q.large), data, repeat=repeat)
        if len(word_m) != len(vec_m):
            raise AssertionError(
                f"{q.qid}: word found {len(word_m)} matches, vector {len(vec_m)}"
            )
        queries[q.qid] = {
            "word_s": round(word_s, 6),
            "vector_s": round(vec_s, 6),
            "ratio": round(word_s / vec_s, 4),
            "matches": len(word_m),
        }
    return queries


def measure_fig11(size: int, repeat: int) -> dict:
    queries = {}
    for name, q in small_queries():
        word_s, word_m = time_run_records(
            make_engine(WORD, q.small), get_records(name, size), repeat=repeat
        )
        vec_s, vec_m = time_run_records(
            make_engine(VECTOR, q.small), get_records(name, size), repeat=repeat
        )
        if len(word_m) != len(vec_m):
            raise AssertionError(
                f"{q.qid}: word found {len(word_m)} matches, vector {len(vec_m)}"
            )
        queries[q.qid] = {
            "word_s": round(word_s, 6),
            "vector_s": round(vec_s, 6),
            "ratio": round(word_s / vec_s, 4),
            "matches": len(word_m),
        }
    return queries


def build_record(fig: int, size: int, repeat: int) -> dict:
    queries = measure_fig10(size, repeat) if fig == 10 else measure_fig11(size, repeat)
    return {
        "figure": fig,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "size": size,
        "repeat": repeat,
        "modes": {"word": WORD, "vector": VECTOR},
        "queries": queries,
        "geomean_ratio": round(_geomean([q["ratio"] for q in queries.values()]), 4),
    }


def load_trajectory(fig: int) -> list[dict]:
    path = BENCH_FILES[fig]
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def append_record(fig: int, record: dict) -> None:
    with BENCH_FILES[fig].open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def print_record(record: dict) -> None:
    fig = record["figure"]
    print(f"fig{fig} (size={record['size']}, best of {record['repeat']}):")
    for qid, cell in record["queries"].items():
        print(
            f"  {qid:7s} word {cell['word_s']:.4f}s  vector {cell['vector_s']:.4f}s"
            f"  ratio {cell['ratio']:.2f}x  ({cell['matches']} matches)"
        )
    print(f"  geomean vector speedup: {record['geomean_ratio']:.2f}x")


def check_record(fig: int, record: dict, tolerance: float) -> list[str]:
    """Compare a fresh measurement against the last committed record."""
    failures = []
    history = load_trajectory(fig)
    if history:
        baseline = history[-1]
        floor = baseline["geomean_ratio"] * (1.0 - tolerance)
        if record["geomean_ratio"] < floor:
            failures.append(
                f"fig{fig}: geomean vector speedup {record['geomean_ratio']:.2f}x regressed"
                f" more than {tolerance:.0%} below the recorded baseline"
                f" {baseline['geomean_ratio']:.2f}x (commit {baseline['commit']})"
            )
    else:
        failures.append(f"fig{fig}: no recorded baseline in {BENCH_FILES[fig].name}")
    if fig == 10:
        for qid in FLAGSHIPS:
            ratio = record["queries"][qid]["ratio"]
            if ratio < 1.0:
                failures.append(
                    f"fig10: flagship {qid} vector slower than word ({ratio:.2f}x)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE, help="bytes per dataset")
    parser.add_argument("--repeat", type=int, default=5, help="reps per cell (best-of)")
    parser.add_argument(
        "--figure", type=int, choices=(10, 11), default=None, help="limit to one figure"
    )
    parser.add_argument(
        "--record", action="store_true", help="append the measurement to BENCH_fig*.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the vector speedup regressed vs the last recorded baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10, help="allowed geomean regression (fraction)"
    )
    args = parser.parse_args(argv)

    figures = (args.figure,) if args.figure else (10, 11)
    failures: list[str] = []
    for fig in figures:
        record = build_record(fig, args.size, args.repeat)
        print_record(record)
        if args.check:
            failures.extend(check_record(fig, record, args.tolerance))
        if args.record:
            append_record(fig, record)
            print(f"  appended to {BENCH_FILES[fig].name}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
