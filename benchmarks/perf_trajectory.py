"""Record and gate the word-vs-vector performance trajectory.

This script is the repository's perf ledger for the two-stage hot path
(``docs/two-stage.md``).  It times every Table 5 query under both
JSONSki scanner modes — the paper-faithful word-at-a-time path
(``jsonski-word``) and the vectorized stage-1/stage-2 default
(``jsonski``) — and appends one JSON record per figure to
``BENCH_fig10.json`` (one large record per dataset) and
``BENCH_fig11.json`` (streams of small records).  Each record carries
raw best-of-N seconds plus the word/vector speedup ratio per query, so
the files accumulate a machine-comparable trajectory over the repo's
history: ratios, unlike absolute seconds, transfer across hosts.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py            # measure + print
    PYTHONPATH=src python benchmarks/perf_trajectory.py --record   # ... and append
    PYTHONPATH=src python benchmarks/perf_trajectory.py --check    # gate vs last record

``--check`` is the CI regression gate: it fails (exit 1) if the
geometric-mean vector speedup of either figure regresses more than
``--tolerance`` (default 10%) against the most recent committed record,
or if any fig10 large-record flagship query falls below parity.

Two further scenario families ride in each record:

- **emission** — the output-heavy query pair (NSPL2, GMD2) timed over
  the *emission phase only* (the scan runs untimed, fresh per rep): the
  eager column decodes every match and re-encodes it (the pre-lazy emit
  path), the lazy column splices the raw slices
  (``MatchList.to_jsonl``).  The ratio is the on-demand-materialization
  win in isolation; ``--check`` requires it stays >=
  ``--emission-floor`` (default 1.3x).
- **warm_index** (fig10 only) — stage-1 cost with a cold build vs a
  sidecar load (:meth:`repro.engine.prepared.IndexedBuffer.load`);
  ``--check`` requires the warm load cost at most ``--warm-fraction``
  (default 35%) of the cold build.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.experiments import (
    DEFAULT_SIZE,
    all_queries,
    get_large,
    get_records,
    small_queries,
)
from repro.errors import InvariantError
from repro.harness.runner import make_engine, time_run, time_run_records

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = {10: REPO_ROOT / "BENCH_fig10.json", 11: REPO_ROOT / "BENCH_fig11.json"}

#: The large-record queries the tentpole promises >=2x on (the paper's
#: headline bars); ``--check`` additionally requires these stay >= 1.0.
FLAGSHIPS = ("TT1", "TT2", "BB1", "BB2", "GMD1")

WORD, VECTOR = "jsonski-word", "jsonski"


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def measure_fig10(size: int, repeat: int) -> dict:
    queries = {}
    for name, q in all_queries():
        data = get_large(name, size)
        word_s, word_m = time_run(make_engine(WORD, q.large), data, repeat=repeat)
        vec_s, vec_m = time_run(make_engine(VECTOR, q.large), data, repeat=repeat)
        if len(word_m) != len(vec_m):
            raise InvariantError(
                f"{q.qid}: word found {len(word_m)} matches, vector {len(vec_m)}"
            )
        queries[q.qid] = {
            "word_s": round(word_s, 6),
            "vector_s": round(vec_s, 6),
            "ratio": round(word_s / vec_s, 4),
            "matches": len(word_m),
        }
    return queries


def measure_fig11(size: int, repeat: int) -> dict:
    queries = {}
    for name, q in small_queries():
        word_s, word_m = time_run_records(
            make_engine(WORD, q.small), get_records(name, size), repeat=repeat
        )
        vec_s, vec_m = time_run_records(
            make_engine(VECTOR, q.small), get_records(name, size), repeat=repeat
        )
        if len(word_m) != len(vec_m):
            raise InvariantError(
                f"{q.qid}: word found {len(word_m)} matches, vector {len(vec_m)}"
            )
        queries[q.qid] = {
            "word_s": round(word_s, 6),
            "vector_s": round(vec_s, 6),
            "ratio": round(word_s / vec_s, 4),
            "matches": len(word_m),
        }
    return queries


#: Low-skip, match-dense queries where serializing the output dominates
#: the scan — the scenario on-demand materialization targets.
EMISSION_QUERIES = ("NSPL2", "GMD2")


def _best_of(fn, repeat: int):
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _encode_values(matches) -> bytes:
    # The pre-lazy emission path: decode every match, re-encode compactly.
    return b"\n".join(
        json.dumps(v, separators=(",", ":")).encode() for v in matches.values()
    )


def measure_emission(fig: int, size: int, repeat: int) -> dict:
    """Eager (decode + re-encode) vs lazy (raw splice) emission cost.

    The scan itself runs *outside* the timer — a fresh (unmemoized)
    :class:`~repro.engine.output.MatchList` per rep — so the cell
    isolates the match-extraction phase the lazy views optimize, not the
    fast-forward win fig10/fig11 already track.
    """
    out = {}
    for name, q in (all_queries() if fig == 10 else small_queries()):
        if q.qid not in EMISSION_QUERIES:
            continue
        if fig == 10:
            data = get_large(name, size)
            engine = make_engine(VECTOR, q.large)
            fresh_run = lambda: engine.run(data)  # noqa: E731
        else:
            stream = get_records(name, size)
            engine = make_engine(VECTOR, q.small)
            fresh_run = lambda: engine.run_records(stream)  # noqa: E731
        eager_s = lazy_s = float("inf")
        n = 0
        for _ in range(repeat):
            matches = fresh_run()
            t0 = time.perf_counter()
            eager_out = _encode_values(matches)
            eager_s = min(eager_s, time.perf_counter() - t0)
            matches = fresh_run()
            t0 = time.perf_counter()
            lazy_out = matches.to_jsonl()
            lazy_s = min(lazy_s, time.perf_counter() - t0)
            n = matches.count()
            if len(eager_out.splitlines()) != len(lazy_out.splitlines()):
                raise InvariantError(
                    f"{q.qid}: eager and lazy emitted different line counts"
                )
        out[q.qid] = {
            "eager_s": round(eager_s, 6),
            "lazy_s": round(lazy_s, 6),
            "ratio": round(eager_s / lazy_s, 4),
            "matches": n,
        }
    return out


def measure_warm_index(size: int, repeat: int) -> dict:
    """Cold stage-1 build vs sidecar-backed warm load (same corpus)."""
    import tempfile

    from repro.engine.prepared import IndexedBuffer

    data = get_large("TT", size)
    cold_s, built = _best_of(lambda: IndexedBuffer(data).warm(), repeat)
    with tempfile.TemporaryDirectory() as tmp:
        path = built.save(Path(tmp) / "tt.ridx")
        warm_s, loaded = _best_of(lambda: IndexedBuffer.load(path, data), repeat)
        if loaded.buffer.index.chunks_built:
            raise InvariantError("sidecar load built chunks — cache not warm")
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "warm_fraction": round(warm_s / cold_s, 4),
    }


def build_record(fig: int, size: int, repeat: int) -> dict:
    queries = measure_fig10(size, repeat) if fig == 10 else measure_fig11(size, repeat)
    emission = measure_emission(fig, size, repeat)
    record = {
        "figure": fig,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _git_head(),
        "size": size,
        "repeat": repeat,
        "modes": {"word": WORD, "vector": VECTOR},
        "queries": queries,
        "geomean_ratio": round(_geomean([q["ratio"] for q in queries.values()]), 4),
        "emission": emission,
        "emission_geomean": round(_geomean([q["ratio"] for q in emission.values()]), 4),
    }
    if fig == 10:
        record["warm_index"] = measure_warm_index(size, repeat)
    return record


def load_trajectory(fig: int) -> list[dict]:
    path = BENCH_FILES[fig]
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def append_record(fig: int, record: dict) -> None:
    with BENCH_FILES[fig].open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def print_record(record: dict) -> None:
    fig = record["figure"]
    print(f"fig{fig} (size={record['size']}, best of {record['repeat']}):")
    for qid, cell in record["queries"].items():
        print(
            f"  {qid:7s} word {cell['word_s']:.4f}s  vector {cell['vector_s']:.4f}s"
            f"  ratio {cell['ratio']:.2f}x  ({cell['matches']} matches)"
        )
    print(f"  geomean vector speedup: {record['geomean_ratio']:.2f}x")
    for qid, cell in record.get("emission", {}).items():
        print(
            f"  {qid:7s} emit: eager {cell['eager_s']:.4f}s  lazy {cell['lazy_s']:.4f}s"
            f"  ratio {cell['ratio']:.2f}x  ({cell['matches']} matches)"
        )
    if record.get("emission"):
        print(f"  geomean lazy-emission speedup: {record['emission_geomean']:.2f}x")
    warm = record.get("warm_index")
    if warm:
        print(
            f"  warm index: cold {warm['cold_s']:.4f}s  warm {warm['warm_s']:.4f}s"
            f"  ({warm['warm_fraction']:.1%} of cold)"
        )


def check_record(
    fig: int,
    record: dict,
    tolerance: float,
    emission_floor: float = 1.3,
    warm_fraction: float = 0.35,
) -> list[str]:
    """Compare a fresh measurement against the last committed record."""
    failures = []
    history = load_trajectory(fig)
    if history:
        baseline = history[-1]
        floor = baseline["geomean_ratio"] * (1.0 - tolerance)
        if record["geomean_ratio"] < floor:
            failures.append(
                f"fig{fig}: geomean vector speedup {record['geomean_ratio']:.2f}x regressed"
                f" more than {tolerance:.0%} below the recorded baseline"
                f" {baseline['geomean_ratio']:.2f}x (commit {baseline['commit']})"
            )
    else:
        failures.append(f"fig{fig}: no recorded baseline in {BENCH_FILES[fig].name}")
    if fig == 10:
        for qid in FLAGSHIPS:
            ratio = record["queries"][qid]["ratio"]
            if ratio < 1.0:
                failures.append(
                    f"fig10: flagship {qid} vector slower than word ({ratio:.2f}x)"
                )
    if record.get("emission") and record["emission_geomean"] < emission_floor:
        failures.append(
            f"fig{fig}: lazy emission speedup {record['emission_geomean']:.2f}x"
            f" below the {emission_floor:.2f}x floor on the low-skip pair"
        )
    warm = record.get("warm_index")
    if warm and warm["warm_fraction"] > warm_fraction:
        failures.append(
            f"fig{fig}: warm sidecar load costs {warm['warm_fraction']:.1%} of the"
            f" cold stage-1 build (gate: <= {warm_fraction:.0%})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE, help="bytes per dataset")
    parser.add_argument("--repeat", type=int, default=5, help="reps per cell (best-of)")
    parser.add_argument(
        "--figure", type=int, choices=(10, 11), default=None, help="limit to one figure"
    )
    parser.add_argument(
        "--record", action="store_true", help="append the measurement to BENCH_fig*.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the vector speedup regressed vs the last recorded baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10, help="allowed geomean regression (fraction)"
    )
    parser.add_argument(
        "--emission-floor", type=float, default=1.3,
        help="minimum lazy-vs-eager emission speedup on the low-skip pair",
    )
    parser.add_argument(
        "--warm-fraction", type=float, default=0.35,
        help="maximum warm sidecar load cost as a fraction of the cold build",
    )
    args = parser.parse_args(argv)

    figures = (args.figure,) if args.figure else (10, 11)
    failures: list[str] = []
    for fig in figures:
        record = build_record(fig, args.size, args.repeat)
        print_record(record)
        if args.check:
            failures.extend(
                check_record(fig, record, args.tolerance,
                             emission_floor=args.emission_floor,
                             warm_fraction=args.warm_fraction)
            )
        if args.record:
            append_record(fig, record)
            print(f"  appended to {BENCH_FILES[fig].name}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
