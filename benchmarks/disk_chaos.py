"""Crash-consistency differential harness for the durable storage layer.

The same simulate-every-failure discipline ``serve_chaos.py`` applies
to the network applied to the disk.  Every persistent writer in the
project — index sidecars (:mod:`repro.engine.sidecar`) and checkpoint
generations (:mod:`repro.checkpoint.store`) — runs against
:class:`repro.storage.FaultFS`, which can fail (``ENOSPC``, torn short
write) or kill the writer at **every** syscall boundary its journal
exposes (``open``/``write``/``fsync``/``replace``/``unlink``/
``fsync_dir``), in both before- and after- positions.  Kill coverage is
two-tier: an in-process frozen-disk simulation for the exhaustive
sweep, plus real ``os._exit`` subprocess writers at every boundary
(``--child`` re-entry) where no simulation artifact is possible.

The contract asserted after every injection:

- **atomicity** — a subsequent load observes the complete old state or
  the complete new state: a sidecar path is absent or fully valid; the
  newest valid checkpoint generation is the pre-save payload or the
  post-save payload, never ``None``, never garbage;
- **no leaked tmp** — a *failed* write cleans its ``.tmp<pid>`` up
  immediately; a *killed* write may orphan one, and the stale-tmp sweep
  reclaims it;
- **no lost lock** — after a writer dies at any boundary (including
  while holding the single-flight build lock), a fresh process acquires
  the advisory lock promptly;
- **recovery** — the next writer/reader on the same path succeeds and
  leaves fully-valid state.

Plus the cross-process single-flight contract: two concurrent
``load_or_build`` callers on a cold cache produce exactly one stage-1
build, the loser reusing the winner's sidecar; and the quarantine
policy: a corrupt sidecar is renamed ``*.corrupt`` with a reason note
and counted, never silently overwritten.

Exit status 0 when the contract held everywhere, 1 otherwise::

    PYTHONPATH=src python benchmarks/disk_chaos.py --quick
    PYTHONPATH=src python benchmarks/disk_chaos.py
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.checkpoint.store import CheckpointStore  # noqa: E402
from repro.engine import sidecar  # noqa: E402
from repro.engine.prepared import IndexedBuffer  # noqa: E402
from repro.errors import IndexSidecarError, LockTimeoutError  # noqa: E402
from repro.storage import (  # noqa: E402
    FaultFS,
    FaultPlan,
    SimulatedCrash,
    advisory_lock,
    fault_plans,
    reset_storage_metrics,
    sweep_stale_tmp,
    trace,
)

EXIT_KILL = 137

#: Chunk size small enough that even the quick corpus spans chunks.
CHUNK = 1 << 12


def make_corpus(records: int) -> bytes:
    """Deterministic single-document corpus with nested structure."""
    rows = ",".join(
        '{"id":%d,"tags":["a","b{"],"geo":{"lat":%d.5,"lon":-%d.25}}' % (i, i, i)
        for i in range(records)
    )
    return ('{"meta":{"count":%d},"rows":[%s]}' % (records, rows)).encode()


def sidecar_valid(path: Path, corpus: bytes) -> bool:
    """Complete-new check: the file at ``path`` passes full validation."""
    try:
        sidecar.load_buffer(path, corpus, chunk_size=CHUNK)
    except IndexSidecarError:
        return False
    return True


def tmp_residue(directory: Path) -> list[str]:
    return sorted(
        e.name for e in directory.iterdir()
        if ".tmp" in e.name and e.name.rpartition(".tmp")[2].isdigit()
    )


def lock_free(path: Path) -> bool:
    try:
        with advisory_lock(path, timeout=2.0):
            return True
    except LockTimeoutError:
        return False


class Report:
    def __init__(self) -> None:
        self.cases = 0
        self.violations: list[str] = []

    def check(self, ok: bool, label: str) -> None:
        self.cases += 1
        if not ok:
            self.violations.append(label)

    def section(self, name: str, start_cases: int, start_bad: int) -> None:
        print(f"  {name}: {self.cases - start_cases} checks, "
              f"{len(self.violations) - start_bad} violations")


# ---------------------------------------------------------------------------
# scenario 1: sidecar writer, every boundary, fail + kill variants
# ---------------------------------------------------------------------------

def run_sidecar_sweep(report: Report, corpus: bytes, warm_start: bool) -> None:
    """Fault ``load_or_build``'s save at every boundary; ``warm_start``
    pre-populates a valid sidecar so the old state is non-empty."""
    c0, v0 = report.cases, len(report.violations)

    def drive(fs: FaultFS, root: Path) -> None:
        IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK, fs=fs, lock_timeout=5.0)

    with tempfile.TemporaryDirectory() as tmp:
        traced = trace(lambda fs: drive(fs, Path(tmp) / "cache"))
    # The traced journal covers atomic_write's boundaries (the sidecar
    # was cold, so no unlink/quarantine steps appear).
    plans = list(fault_plans(traced.ops))

    for plan in plans:
        with tempfile.TemporaryDirectory() as tmpdir:
            root = Path(tmpdir) / "cache"
            if warm_start:
                IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK)
            path = sidecar.sidecar_path(root, corpus, CHUNK)
            label = plan.describe(traced.ops[plan.step - 1][0])
            fs = FaultFS(plan)
            crashed = False
            try:
                # In warm starts the sidecar loads without touching the
                # journal, so re-fault a direct save over the old file.
                if warm_start:
                    IndexedBuffer(corpus, chunk_size=CHUNK).warm().save(path, fs=fs)
                else:
                    drive(fs, root)
            except OSError:
                pass
            except SimulatedCrash:
                crashed = True

            # Atomicity: absent (old, cold case) or fully valid.
            if path.exists():
                report.check(sidecar_valid(path, corpus),
                             f"sidecar[{label}]: torn file at final path")
            else:
                report.check(not warm_start,
                             f"sidecar[{label}]: old sidecar lost")
            # Tmp hygiene: failed writes clean up now; kills leave an
            # orphan the sweep reclaims.
            if crashed:
                sweep_stale_tmp(root, max_age=0.0)
            report.check(not tmp_residue(root),
                         f"sidecar[{label}]: leaked tmp {tmp_residue(root)}")
            # The build lock died with the writer.
            report.check(lock_free(path), f"sidecar[{label}]: stuck lock")
            # Recovery: a fresh process loads-or-rebuilds to valid state.
            rebuilt = IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK)
            report.check(
                rebuilt.buffer.data == corpus and sidecar_valid(path, corpus),
                f"sidecar[{label}]: recovery left invalid state",
            )
    report.section(
        f"sidecar save sweep ({'warm' if warm_start else 'cold'}, "
        f"{len(plans)} plans)", c0, v0)


# ---------------------------------------------------------------------------
# scenario 2: checkpoint writer, every boundary, fail + kill variants
# ---------------------------------------------------------------------------

OLD_PAYLOAD = {"cursor": 1, "note": "old"}
NEW_PAYLOAD = {"cursor": 2, "note": "new"}


def run_checkpoint_sweep(report: Report) -> None:
    c0, v0 = report.cases, len(report.violations)

    def seed(root: Path) -> Path:
        base = root / "run.ckpt"
        CheckpointStore(base, keep=1).save(OLD_PAYLOAD)
        return base

    with tempfile.TemporaryDirectory() as tmpdir:
        base = seed(Path(tmpdir))
        traced = trace(
            lambda fs: CheckpointStore(base, keep=1, fs=fs).save(NEW_PAYLOAD)
        )
    plans = list(fault_plans(traced.ops))

    for plan in plans:
        with tempfile.TemporaryDirectory() as tmpdir:
            base = seed(Path(tmpdir))
            label = plan.describe(traced.ops[plan.step - 1][0])
            fs = FaultFS(plan)
            crashed = False
            try:
                CheckpointStore(base, keep=1, fs=fs).save(NEW_PAYLOAD)
            except OSError:
                pass
            except SimulatedCrash:
                crashed = True

            fresh = CheckpointStore(base, keep=1)
            record = fresh.load_latest()
            report.check(
                record is not None and record.payload in (OLD_PAYLOAD, NEW_PAYLOAD),
                f"checkpoint[{label}]: load saw "
                f"{record.payload if record else None}",
            )
            if crashed:
                sweep_stale_tmp(base.parent, max_age=0.0)
            report.check(not tmp_residue(base.parent),
                         f"checkpoint[{label}]: leaked tmp")
            # Recovery: the next saver proceeds and wins.
            CheckpointStore(base, keep=1).save({"cursor": 3})
            after = CheckpointStore(base, keep=1).load_latest()
            report.check(
                after is not None and after.payload["cursor"] == 3,
                f"checkpoint[{label}]: post-fault save failed",
            )
    report.section(f"checkpoint save sweep ({len(plans)} plans)", c0, v0)


# ---------------------------------------------------------------------------
# scenario 3: real process kills (os._exit at the boundary)
# ---------------------------------------------------------------------------

def child_kill(kind: str, root: Path, step: int, corpus: bytes) -> int:
    """``--child`` re-entry: run one writer with an exit-at-boundary
    plan.  Exits 137 at the boundary, 0 if the plan never fires."""
    fs = FaultFS(FaultPlan(step=step, mode="exit", when="after"), exit_code=EXIT_KILL)
    if kind == "sidecar":
        IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK, fs=fs)
    else:
        CheckpointStore(root / "run.ckpt", keep=1, fs=fs).save(NEW_PAYLOAD)
    return 0


def run_kill_sweep(report: Report, corpus: bytes, corpus_path: Path) -> None:
    c0, v0 = report.cases, len(report.violations)

    # Discover each writer's journal length from scenario traces.
    with tempfile.TemporaryDirectory() as tmpdir:
        root = Path(tmpdir)
        n_sidecar = len(trace(
            lambda fs: IndexedBuffer.load_or_build(
                corpus, root / "cache", chunk_size=CHUNK, fs=fs)
        ).ops)
    with tempfile.TemporaryDirectory() as tmpdir:
        base = Path(tmpdir) / "run.ckpt"
        CheckpointStore(base, keep=1).save(OLD_PAYLOAD)
        n_ckpt = len(trace(
            lambda fs: CheckpointStore(base, keep=1, fs=fs).save(NEW_PAYLOAD)
        ).ops)

    for kind, steps in (("sidecar", n_sidecar), ("checkpoint", n_ckpt)):
        for step in range(1, steps + 1):
            with tempfile.TemporaryDirectory() as tmpdir:
                root = Path(tmpdir)
                if kind == "checkpoint":
                    CheckpointStore(root / "run.ckpt", keep=1).save(OLD_PAYLOAD)
                proc = subprocess.run(
                    [sys.executable, __file__, "--child", "kill",
                     "--kind", kind, "--dir", str(root),
                     "--step", str(step), "--corpus", str(corpus_path)],
                    capture_output=True, timeout=120,
                )
                label = f"{kind} kill@{step}"
                report.check(
                    proc.returncode == EXIT_KILL,
                    f"{label}: child exited {proc.returncode} "
                    f"({proc.stderr.decode(errors='replace')[-200:]})",
                )
                if kind == "sidecar":
                    path = sidecar.sidecar_path(root, corpus, CHUNK)
                    if path.exists():
                        report.check(sidecar_valid(path, corpus),
                                     f"{label}: torn sidecar")
                    report.check(lock_free(path), f"{label}: stuck lock")
                    sweep_stale_tmp(root, max_age=0.0)
                    report.check(not tmp_residue(root), f"{label}: leaked tmp")
                    rebuilt = IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK)
                    report.check(rebuilt.buffer.data == corpus,
                                 f"{label}: recovery failed")
                else:
                    base = root / "run.ckpt"
                    record = CheckpointStore(base, keep=1).load_latest()
                    report.check(
                        record is not None
                        and record.payload in (OLD_PAYLOAD, NEW_PAYLOAD),
                        f"{label}: load saw "
                        f"{record.payload if record else None}",
                    )
                    sweep_stale_tmp(base.parent, max_age=0.0)
                    report.check(not tmp_residue(base.parent),
                                 f"{label}: leaked tmp")
    report.section(f"real-kill sweep ({n_sidecar}+{n_ckpt} boundaries)", c0, v0)


# ---------------------------------------------------------------------------
# scenario 4: cross-process single-flight build
# ---------------------------------------------------------------------------

def child_race(root: Path, role: str, corpus: bytes) -> int:
    """``--child race``: one ``load_or_build`` caller.  The ``slow``
    role stalls mid-build (after the marker file appears) so the peer
    provably overlaps; both print a JSON verdict."""
    from repro.storage.metrics import storage_metrics

    if role == "slow":
        marker = root / "building.marker"
        original_warm = IndexedBuffer.warm

        def slow_warm(self):
            result = original_warm(self)
            marker.touch()
            time.sleep(1.5)
            return result

        IndexedBuffer.warm = slow_warm  # type: ignore[method-assign]
    indexed = IndexedBuffer.load_or_build(corpus, root / "cache", chunk_size=CHUNK)
    registry = storage_metrics()
    print(json.dumps({
        "role": role,
        "chunks_built": indexed.buffer.index.chunks_built,
        "rebuilds": registry.value("storage.rebuilds"),
        "reuse": registry.value("storage.single_flight_reuse"),
        "waits": registry.value("storage.lock_waits"),
    }))
    return 0


def run_single_flight(report: Report, corpus_path: Path) -> None:
    c0, v0 = report.cases, len(report.violations)
    with tempfile.TemporaryDirectory() as tmpdir:
        root = Path(tmpdir)
        marker = root / "building.marker"

        def spawn(role: str) -> subprocess.Popen:
            return subprocess.Popen(
                [sys.executable, __file__, "--child", "race",
                 "--role", role, "--dir", str(root),
                 "--corpus", str(corpus_path)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )

        slow = spawn("slow")
        deadline = time.monotonic() + 30
        while not marker.exists() and time.monotonic() < deadline:
            if slow.poll() is not None:
                break
            time.sleep(0.02)
        report.check(marker.exists(), "single-flight: slow builder never started")
        fast = spawn("fast")
        outs = {}
        for proc in (slow, fast):
            out, err = proc.communicate(timeout=60)
            report.check(proc.returncode == 0,
                         f"single-flight: child failed: {err.decode(errors='replace')[-200:]}")
            try:
                verdict = json.loads(out.decode().strip().splitlines()[-1])
                outs[verdict["role"]] = verdict
            except (ValueError, IndexError):
                report.check(False, f"single-flight: unparseable child output {out!r}")
        if {"slow", "fast"} <= outs.keys():
            report.check(outs["slow"]["chunks_built"] > 0 and outs["slow"]["rebuilds"] == 1,
                         f"single-flight: slow child did not build ({outs['slow']})")
            report.check(outs["fast"]["chunks_built"] == 0 and outs["fast"]["rebuilds"] == 0,
                         f"single-flight: fast child rebuilt instead of reusing ({outs['fast']})")
            report.check(outs["fast"]["reuse"] == 1 and outs["fast"]["waits"] >= 1,
                         f"single-flight: fast child did not wait+reuse ({outs['fast']})")
    report.section("single-flight build race", c0, v0)


# ---------------------------------------------------------------------------
# scenario 5: quarantine policy
# ---------------------------------------------------------------------------

def run_quarantine(report: Report, corpus: bytes) -> None:
    c0, v0 = report.cases, len(report.violations)
    registry = reset_storage_metrics()
    with tempfile.TemporaryDirectory() as tmpdir:
        root = Path(tmpdir)
        IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK)
        path = sidecar.sidecar_path(root, corpus, CHUNK)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # flip a payload byte: checksum mismatch
        path.write_bytes(bytes(blob))

        rebuilt = IndexedBuffer.load_or_build(corpus, root, chunk_size=CHUNK)
        report.check(rebuilt.buffer.data == corpus, "quarantine: rebuild failed")
        corrupt = path.with_name(path.name + ".corrupt")
        report.check(corrupt.exists(), "quarantine: corrupt file not preserved")
        reason_file = corrupt.with_name(corrupt.name + ".reason")
        report.check(
            reason_file.exists() and b"checksum" in reason_file.read_bytes(),
            "quarantine: reason note missing",
        )
        report.check(sidecar_valid(path, corpus),
                     "quarantine: fresh sidecar not rebuilt in place")
        report.check(
            registry.value("storage.sidecar_rejects", reason="checksum") == 1
            and registry.value("storage.quarantines", reason="checksum") == 1,
            "quarantine: counters not recorded",
        )
    reset_storage_metrics()
    report.section("quarantine policy", c0, v0)


# ---------------------------------------------------------------------------
# scenario 6: lock death while held
# ---------------------------------------------------------------------------

def child_lockhold(root: Path) -> int:
    """``--child lockhold``: take the lock, then die holding it."""
    with advisory_lock(root / "artifact"):
        (root / "locked.marker").touch()
        time.sleep(30)
    return 0  # pragma: no cover - killed before reaching this


def run_lock_death(report: Report, corpus_path: Path) -> None:
    c0, v0 = report.cases, len(report.violations)
    with tempfile.TemporaryDirectory() as tmpdir:
        root = Path(tmpdir)
        proc = subprocess.Popen(
            [sys.executable, __file__, "--child", "lockhold",
             "--dir", str(root), "--corpus", str(corpus_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 20
        while not (root / "locked.marker").exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        report.check((root / "locked.marker").exists(),
                     "lock-death: holder never acquired")
        # While held, the lock must actually exclude us ...
        report.check(not lock_free(root / "artifact"),
                     "lock-death: lock not exclusive across processes")
        proc.kill()
        proc.wait(timeout=30)
        # ... and the kill must release it promptly.
        report.check(lock_free(root / "artifact"),
                     "lock-death: lock survived its holder")
    report.section("lock released on holder death", c0, v0)


# ---------------------------------------------------------------------------

def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (CI mode); same boundary coverage")
    parser.add_argument("--child", default=None,
                        choices=("kill", "race", "lockhold"),
                        help="internal: re-entry for subprocess scenarios")
    parser.add_argument("--kind", default="sidecar")
    parser.add_argument("--dir", default=None)
    parser.add_argument("--step", type=int, default=1)
    parser.add_argument("--role", default="fast")
    parser.add_argument("--corpus", default=None,
                        help="internal: corpus file for child processes")
    args = parser.parse_args()

    if args.child is not None:
        root = Path(args.dir)
        corpus = Path(args.corpus).read_bytes() if args.corpus else b""
        if args.child == "kill":
            return child_kill(args.kind, root, args.step, corpus)
        if args.child == "race":
            return child_race(root, args.role, corpus)
        return child_lockhold(root)

    corpus = make_corpus(40 if args.quick else 400)
    print(f"disk_chaos: corpus {len(corpus)} bytes, chunk {CHUNK}")
    report = Report()
    with tempfile.TemporaryDirectory() as corpdir:
        corpus_path = Path(corpdir) / "corpus.json"
        corpus_path.write_bytes(corpus)
        run_sidecar_sweep(report, corpus, warm_start=False)
        run_sidecar_sweep(report, corpus, warm_start=True)
        run_checkpoint_sweep(report)
        run_kill_sweep(report, corpus, corpus_path)
        run_single_flight(report, corpus_path)
        run_quarantine(report, corpus)
        run_lock_death(report, corpus_path)

    print(f"disk_chaos: {report.cases} checks, {len(report.violations)} violations")
    for violation in report.violations:
        print(f"  VIOLATION: {violation}")
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
