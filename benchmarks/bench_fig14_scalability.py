"""Figure 14: execution time vs input size (BB1), with the scaled-down
simdjson record cap exercised inside the sweep."""

from __future__ import annotations

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp


def test_figure14_series(benchmark):
    sizes = tuple(max(SIZE // 4, 1 << 14) * (2**k) for k in range(4))
    result = benchmark.pedantic(
        exp.exp_fig14, kwargs={"sizes": sizes, "simdjson_cap": sizes[-1] // 2}, rounds=1, iterations=1
    )
    print_experiment(result)
    _, headers, rows = result
    ski = headers.index("JSONSki")
    jp = headers.index("JPStream")
    simd = headers.index("simdjson")
    # Near-linear growth: 8x the input within ~3x of 8x the time.
    assert rows[-1][ski] < rows[0][ski] * 8 * 3
    # JSONSki stays ahead of JPStream at every size.
    assert all(row[ski] < row[jp] for row in rows)
    # The (scaled) simdjson record cap bites within the sweep.
    assert any(row[simd] == "cap" for row in rows)
