"""Extension: speculative parallel JSONSki.

Figure 10's discussion notes serial JSONSki trails Pison(16) and "we
expect the slowdown would be addressed after speculation is added to
JSONSki".  The chunk-parallel driver is engine-agnostic, so this
reproduction *implements* that prediction: JSONSki(16) over one large
record, compared against Pison(16) and serial JSONSki.
"""

from __future__ import annotations

from benchmarks.conftest import SIZE, WORKERS, print_experiment
from repro.baselines import PisonLike
from repro.engine import JsonSki
from repro.harness import experiments as exp
from repro.harness.runner import time_run
from repro.parallel import speculative_large_run


def test_speculative_jsonski(benchmark):
    def measure():
        rows = []
        for name, q in exp.all_queries():
            data = exp.get_large(name, SIZE)
            array_path = exp.ARRAY_PATHS[name]
            serial, serial_matches = time_run(JsonSki(q.large), data)
            ski16 = speculative_large_run(lambda p: JsonSki(p), data, q.large, array_path, WORKERS)
            pison16 = speculative_large_run(lambda p: PisonLike(p), data, q.large, array_path, WORKERS)
            assert len(ski16.matches) == len(serial_matches), q.qid
            rows.append([q.qid, serial, ski16.wall_seconds, pison16.wall_seconds])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment((f"Extension: JSONSki({WORKERS}) speculative vs Pison({WORKERS})",
                      ["Query", "JSONSki serial", f"JSONSki({WORKERS})", f"Pison({WORKERS})"], rows))
    total_serial = sum(r[1] for r in rows)
    total_ski16 = sum(r[2] for r in rows)
    total_pison16 = sum(r[3] for r in rows)
    # The paper's prediction: with speculation, JSONSki overtakes Pison(16).
    # At MB scale the two are within a few percent (the serial partition
    # pass weighs proportionally more on small inputs) — allow 10% noise;
    # the gap widens with REPRO_BENCH_SIZE.
    assert total_ski16 < total_serial
    assert total_ski16 < total_pison16 * 1.1
