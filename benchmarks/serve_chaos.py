"""Chaos harness for the query service front door (``repro serve``).

Boots the real ``python -m repro serve`` subprocess and throws hostile
traffic at it in phases:

- **overload burst** — more concurrent clients than ``max_active +
  max_queued`` can hold, asserting every response is one of the four
  documented outcomes: a 200 with a complete NDJSON terminator, a 429
  with ``Retry-After``, or a 503 (``draining`` / ``breaker_open``);
- **slow-loris** — clients that dribble header bytes and stall, which
  must be cut off within the client timeout without wedging healthy
  traffic;
- **poison corpus** — repeated failing queries drive the per-corpus
  breaker CLOSED -> DEGRADED -> OPEN while a healthy corpus keeps
  serving 200s;
- **worker kills** — crash sentinels in a pool dispatch
  (``inject_faults``) crash workers mid-query; the response must still
  be a complete 200, never a truncated stream;
- **SIGTERM mid-response** — the in-flight stream ends with a ``done``
  or ``interrupted`` terminator, late queries get an explicit 503
  ``draining``, and the process exits 0.

The contract under test: the service **sheds rather than stalls**.  A
hung connection, a truncated-but-200 stream, or an undocumented status
is a violation.  Exit status 0 when the contract held, 1 otherwise
(CI-friendly)::

    PYTHONPATH=src python benchmarks/serve_chaos.py --quick
    PYTHONPATH=src python benchmarks/serve_chaos.py --clients 24
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

sys.path.insert(0, str(SRC))

from repro.resilience.faults import CRASH_SENTINEL  # noqa: E402

#: Hard ceiling on any single client operation.  A request that takes
#: longer than this counts as a hung connection — the one thing the
#: front door must never produce.
STALL_LIMIT = 30.0

TERMINATOR_KEYS = ("done", "interrupted", "error")


def build_corpora(workdir: Path, quick: bool) -> dict[str, Path]:
    """Write the corpus files each chaos phase queries."""
    pad = "x" * 32
    burst = b"".join(
        b'{"a": %d, "pad": "%s"}\n' % (i, pad.encode())
        for i in range(800 if quick else 2000)
    )
    big = b'{"a": 1, "pad": "%s"}\n' % pad.encode() * 20000
    poison = b'{"a": 1\n{"a": \n{broken\n' * 4
    crashy = b"".join(
        CRASH_SENTINEL + b"\n" if i % 40 == 7 else b'{"a": %d}\n' % i
        for i in range(200)
    )
    paths = {}
    for name, payload in (
        ("burst", burst), ("big", big), ("poison", poison), ("crashy", crashy)
    ):
        path = workdir / f"{name}.jsonl"
        path.write_bytes(payload)
        paths[name] = path
    # Single-document corpus: exercises the shared stage-1 index path
    # (corpus.indexed + sidecar I/O), which must run on the executor —
    # the loopguard check below would catch it blocking the loop.
    doc = workdir / "doc.json"
    doc.write_bytes(b'{"a": 7, "items": [1, 2, 3], "pad": "%s"}' % (b"y" * 64))
    paths["doc"] = doc
    return paths


def boot(corpora: dict[str, Path], *extra: str) -> tuple[subprocess.Popen, int]:
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0", "--loopguard"]
    for name, path in corpora.items():
        format_suffix = ":json" if path.suffix == ".json" else ""
        cmd += ["--corpus", f"{name}={path}{format_suffix}"]
    cmd += list(extra)
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            # repro: ignore[RS002] -- harness plumbing: the server subprocess died before the contract run ever started; repro.errors is the library's surface, not the harness's
            raise RuntimeError(f"server died at boot (rc={proc.poll()})")
        if line.startswith("serving on "):
            return proc, int(line.rsplit(":", 1)[1])
    # repro: ignore[RS002] -- harness plumbing: boot never completed, nothing contract-shaped to classify; repro.errors is the library's surface, not the harness's
    raise RuntimeError("server never reported its port")


class Outcomes:
    """Tally of classified responses + contract violations."""

    def __init__(self) -> None:
        self.served: list[float] = []  # latencies of complete 200s
        self.shed = 0
        self.unavailable = 0
        self.violations: list[str] = []

    def classify(self, phase: str, status: int, headers: dict,
                 body: bytes, elapsed: float) -> None:
        if status == 200:
            lines = [ln for ln in body.splitlines() if ln.strip()]
            try:
                last = json.loads(lines[-1]) if lines else {}
            except ValueError:
                last = {}
            if any(key in last for key in TERMINATOR_KEYS):
                self.served.append(elapsed)
            else:
                self.violations.append(
                    f"{phase}: truncated 200 stream ({len(lines)} lines, "
                    f"no terminator)"
                )
        elif status == 429:
            if "retry-after" in headers:
                self.shed += 1
            else:
                self.violations.append(f"{phase}: 429 without Retry-After")
        elif status == 503:
            error = {}
            try:
                error = json.loads(body)
            except ValueError:
                pass
            if error.get("error") in ("draining", "breaker_open"):
                self.unavailable += 1
            else:
                self.violations.append(f"{phase}: unexplained 503 {body!r:.120}")
        else:
            self.violations.append(f"{phase}: undocumented status {status}")

    def stall(self, phase: str, detail: str) -> None:
        self.violations.append(f"{phase}: HUNG CONNECTION ({detail})")


def query(port: int, body: dict, timeout: float = STALL_LIMIT):
    """One POST /query; returns (status, headers, body, elapsed)."""
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    start = time.monotonic()
    try:
        conn.request("POST", "/query", body=json.dumps(body).encode())
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload, \
            time.monotonic() - start
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# phases


def phase_burst(port: int, outcomes: Outcomes, clients: int, rounds: int) -> None:
    def one_client(_):
        for _ in range(rounds):
            try:
                status, headers, body, dt = query(
                    port, {"corpus": "burst", "query": "$.a"}
                )
            except (TimeoutError, OSError) as exc:
                outcomes.stall("burst", repr(exc))
                return
            outcomes.classify("burst", status, headers, body, dt)

    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(one_client, range(clients)))


def phase_slow_loris(port: int, outcomes: Outcomes, count: int,
                     client_timeout: float) -> None:
    socks = []
    for _ in range(count):
        sock = socket.create_connection(("127.0.0.1", port), timeout=STALL_LIMIT)
        sock.sendall(b"POST /query HTTP/1.1\r\nhost: loris\r\nx-dribble: ")
        socks.append(sock)
    # While the loris sockets sit half-sent, healthy traffic still flows.
    try:
        status, headers, body, dt = query(port, {"corpus": "burst", "query": "$.a"})
        outcomes.classify("loris-bystander", status, headers, body, dt)
    except (TimeoutError, OSError) as exc:
        outcomes.stall("loris-bystander", repr(exc))
    # The server must cut every loris off within its client timeout.
    cutoff = client_timeout + 10
    for i, sock in enumerate(socks):
        sock.settimeout(cutoff)
        try:
            while sock.recv(65536):
                pass  # drain the 400 the server writes before closing
        except TimeoutError:
            outcomes.stall("loris", f"socket {i} not cut off in {cutoff:.0f}s")
        except OSError:
            pass  # reset also counts as cut off
        finally:
            sock.close()


def phase_breaker(port: int, outcomes: Outcomes) -> None:
    opened = False
    for _ in range(8):
        try:
            status, headers, body, dt = query(
                port, {"corpus": "poison", "query": "$.a"}
            )
        except (TimeoutError, OSError) as exc:
            outcomes.stall("breaker", repr(exc))
            return
        outcomes.classify("breaker", status, headers, body, dt)
        if status == 503:
            opened = True
            if "retry-after" not in headers:
                outcomes.violations.append("breaker: open 503 without Retry-After")
            break
    if not opened:
        outcomes.violations.append("breaker: poison corpus never opened the breaker")
    # Breakers are per-corpus: the healthy corpus is unaffected.
    try:
        status, headers, body, dt = query(port, {"corpus": "burst", "query": "$.a"})
        if status != 200:
            outcomes.violations.append(
                f"breaker: healthy corpus collateral damage (status {status})"
            )
        else:
            outcomes.classify("breaker-bystander", status, headers, body, dt)
    except (TimeoutError, OSError) as exc:
        outcomes.stall("breaker-bystander", repr(exc))


def phase_worker_kills(port: int, outcomes: Outcomes, rounds: int) -> None:
    for _ in range(rounds):
        try:
            status, headers, body, dt = query(
                port,
                {"corpus": "crashy", "query": "$.a", "workers": 1,
                 "inject_faults": True},
            )
        except (TimeoutError, OSError) as exc:
            outcomes.stall("worker-kill", repr(exc))
            return
        outcomes.classify("worker-kill", status, headers, body, dt)
        if status == 200:
            last = json.loads(body.splitlines()[-1])
            if last.get("done") and not last.get("worker_crashes"):
                outcomes.violations.append(
                    "worker-kill: crash sentinels never crashed a worker"
                )


def phase_doc(port: int, outcomes: Outcomes, rounds: int) -> None:
    """Single-document queries: cold stage-1 build, then warm cache."""
    for attempt in range(rounds):
        try:
            status, headers, body, dt = query(port, {"corpus": "doc", "query": "$.a"})
        except (TimeoutError, OSError) as exc:
            outcomes.stall("doc", repr(exc))
            return
        outcomes.classify("doc", status, headers, body, dt)
        if status != 200:
            outcomes.violations.append(
                f"doc: single-document query #{attempt} got {status}, expected 200"
            )


def check_loopguard(proc: subprocess.Popen, outcomes: Outcomes) -> None:
    """The server self-reports loop stalls >= 50ms; zero is the contract.

    The static gate (RS012) proves no known blocking call reaches the
    loop; this is the runtime cross-check over everything the chaos run
    just exercised.  Must be called after the server exited.
    """
    tail = proc.stdout.read() or ""
    for line in tail.splitlines():
        if line.startswith("loopguard:"):
            try:
                events = int(line.split()[1])
            except (IndexError, ValueError):
                events = -1
            if events != 0:
                outcomes.violations.append(
                    f"event loop blocked: {line.strip()!r}"
                )
            return
    outcomes.violations.append(
        "loopguard: server printed no report line (booted with --loopguard)"
    )


def phase_sigterm(proc: subprocess.Popen, port: int, outcomes: Outcomes) -> None:
    payload = json.dumps({"corpus": "big", "query": "$.a"}).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=STALL_LIMIT)
    sock.sendall(
        b"POST /query HTTP/1.1\r\nhost: chaos\r\n"
        + b"content-length: %d\r\n\r\n" % len(payload) + payload
    )
    start = time.monotonic()
    sock.recv(4096)  # headers + first lines: the stream is in flight
    time.sleep(0.2)
    proc.send_signal(signal.SIGTERM)
    time.sleep(0.3)
    # Late arrivals get an explicit 503, not a refused connection.
    try:
        status, headers, body, dt = query(port, {"corpus": "burst", "query": "$.a"})
        outcomes.classify("sigterm-late", status, headers, body, dt)
        if status != 503:
            outcomes.violations.append(
                f"sigterm: late query got {status}, expected 503 draining"
            )
    except (TimeoutError, OSError) as exc:
        outcomes.stall("sigterm-late", repr(exc))
    # The in-flight stream must end with a terminator line.
    chunks = []
    sock.settimeout(STALL_LIMIT)
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    except TimeoutError:
        outcomes.stall("sigterm", "in-flight stream never finished")
    sock.close()
    raw = b"".join(chunks)
    last = {}
    for piece in raw.split(b"\r\n"):
        piece = piece.strip()
        if piece.startswith(b"{"):
            try:
                last = json.loads(piece)
            except ValueError:
                pass
    if any(key in last for key in TERMINATOR_KEYS):
        outcomes.served.append(time.monotonic() - start)
    else:
        outcomes.violations.append("sigterm: in-flight stream had no terminator")
    try:
        code = proc.wait(timeout=60)
        if code != 0:
            outcomes.violations.append(f"sigterm: server exited {code}, expected 0")
    except subprocess.TimeoutExpired:
        outcomes.stall("sigterm", "server never exited after SIGTERM")
        proc.kill()


# ---------------------------------------------------------------------------


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer clients, one round each)")
    parser.add_argument("--clients", type=int, default=None,
                        help="burst-phase concurrency (default 16, quick 8)")
    args = parser.parse_args()

    clients = args.clients or (8 if args.quick else 16)
    rounds = 1 if args.quick else 3
    loris = 3 if args.quick else 6
    client_timeout = 2.0

    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as tmp:
        corpora = build_corpora(Path(tmp), args.quick)
        proc, port = boot(
            corpora,
            "--max-active", "2", "--max-queued", "2",
            "--client-timeout", str(client_timeout),
            "--default-budget", "20", "--max-budget", "60",
            "--drain-grace", "30", "--batch-size", "128",
            "--degrade-after", "1", "--open-after", "2",
            "--breaker-cooldown", "60", "--allow-fault-injection",
        )
        outcomes = Outcomes()
        try:
            print(f"chaos target: 127.0.0.1:{port} "
                  f"(clients={clients} rounds={rounds} loris={loris})")
            phase_burst(port, outcomes, clients, rounds)
            print(f"  burst: {len(outcomes.served)} served, "
                  f"{outcomes.shed} shed")
            phase_doc(port, outcomes, rounds=3)
            print("  doc: single-document path served")
            phase_slow_loris(port, outcomes, loris, client_timeout)
            print("  slow-loris: cut off")
            phase_breaker(port, outcomes)
            print("  breaker: opened and isolated")
            phase_worker_kills(port, outcomes, rounds=1 if args.quick else 2)
            print("  worker-kill: recovered")
            phase_sigterm(proc, port, outcomes)
            print("  sigterm: drained")
            check_loopguard(proc, outcomes)
            print("  loopguard: report checked")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    print()
    print(f"served   : {len(outcomes.served)}")
    print(f"shed 429 : {outcomes.shed}")
    print(f"503s     : {outcomes.unavailable}")
    print(f"p50 latency: {percentile(outcomes.served, 0.50) * 1e3:8.1f} ms")
    print(f"p99 latency: {percentile(outcomes.served, 0.99) * 1e3:8.1f} ms")
    if not outcomes.served:
        outcomes.violations.append("no request was ever served")
    if outcomes.violations:
        print(f"\nCONTRACT VIOLATIONS ({len(outcomes.violations)}):")
        for violation in outcomes.violations:
            print(f"  - {violation}")
        return 1
    print("\ncontract held: shed, never stalled")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
