"""Figure 11: sequential execution over a sequence of small records."""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp
from repro.harness.runner import make_engine


def test_figure11_table(benchmark):
    result = benchmark.pedantic(exp.exp_fig11, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, headers, rows = result
    col = {name: i for i, name in enumerate(headers)}
    totals = {name: sum(row[i] for row in rows) for name, i in col.items() if name != "Query"}
    assert len(rows) == 10  # NSPL1 and WP2 excluded, as in the paper
    assert totals["JSONSki"] < totals["JPStream"]
    assert totals["JSONSki"] < totals["simdjson"]


@pytest.mark.parametrize("method", ["jpstream", "rapidjson", "simdjson", "pison", "jsonski"])
def test_tt2_small_per_method(benchmark, method, tt_records):
    engine = make_engine(method, "$.text")
    matches = benchmark(engine.run_records, tt_records)
    assert len(matches) == len(tt_records)
