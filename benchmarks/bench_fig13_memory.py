"""Figure 13: peak auxiliary memory footprint per method.

The paper's claim: streaming methods (JPStream, JSONSki) take ~input-
sized memory (here: small auxiliary state beyond the input buffer),
while preprocessing methods hold a parse tree or structural index that
multiplies the input.
"""

from __future__ import annotations

from benchmarks.conftest import SIZE, print_experiment
from repro.harness import experiments as exp
from repro.harness.memory import measure_engine_peak
from repro.harness.runner import make_engine


def test_figure13_table(benchmark):
    result = benchmark.pedantic(exp.exp_fig13, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)


def test_streaming_vs_preprocessing_gap(benchmark):
    data = exp.get_large("BB", SIZE)

    def peaks():
        out = {}
        for method in ("jpstream", "jsonski", "rapidjson", "simdjson", "pison"):
            _, out[method] = measure_engine_peak(exp._memory_engine(method, "$.pd[*].cp[1:3].id"), data)
        return out

    peak = benchmark.pedantic(peaks, rounds=1, iterations=1)
    # JPStream's dual stack is tiny; the DOM baselines dwarf it.
    assert peak["rapidjson"] > 5 * peak["jpstream"]
    assert peak["simdjson"] > 5 * peak["jpstream"]
    # JSONSki's bounded chunk index stays well below the DOM methods.
    assert peak["jsonski"] < peak["rapidjson"] / 2
    assert peak["jsonski"] < peak["simdjson"] / 2


def test_jsonski_memory_is_input_independent(benchmark):
    """The streaming property: doubling the input must not grow JSONSki's
    auxiliary memory (fixed chunk, fixed LRU), while the DOM's grows
    linearly."""
    small = exp.get_large("BB", SIZE // 2)
    large = exp.get_large("BB", SIZE)

    def peaks():
        _, ski_small = measure_engine_peak(exp._memory_engine("jsonski", "$.pd[*].cp[1:3].id"), small)
        _, ski_large = measure_engine_peak(exp._memory_engine("jsonski", "$.pd[*].cp[1:3].id"), large)
        _, dom_small = measure_engine_peak(exp._memory_engine("rapidjson", "$.pd[*].cp[1:3].id"), small)
        _, dom_large = measure_engine_peak(exp._memory_engine("rapidjson", "$.pd[*].cp[1:3].id"), large)
        return ski_small, ski_large, dom_small, dom_large

    ski_small, ski_large, dom_small, dom_large = benchmark.pedantic(peaks, rounds=1, iterations=1)
    assert ski_large < ski_small * 1.6  # bounded (match list still grows a bit)
    assert dom_large > dom_small * 1.6  # linear
