"""Extension: shared-pass multi-query evaluation.

The paper suggests developers can exploit the fast-forward functions for
further opportunities; `JsonSkiMulti` shares one streaming pass between
queries.  The benefit is structural: overlapping queries keep their
fast-forwards and amortize the scan (~2x for the BB pair below);
divergent queries force conservative guidance and gain nothing — both
cases are asserted.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.engine import JsonSki, JsonSkiMulti
from repro.harness import experiments as exp
from repro.harness.runner import time_run

OVERLAPPING = ("BB", ["$.pd[*].cp[1:3].id", "$.pd[*].cp[1:3].nm"])
DIVERGENT = ("TT", ["$[*].en.urls[*].url", "$[*].text"])


def _compare(dataset: str, queries: list[str]) -> tuple[float, float]:
    data = exp.get_large(dataset, SIZE)
    multi = JsonSkiMulti(queries)
    singles = [JsonSki(q) for q in queries]
    multi.run(data)
    for engine in singles:
        engine.run(data)
    t_multi, _ = time_run(multi, data, repeat=3)
    t_single = sum(time_run(engine, data, repeat=3)[0] for engine in singles)
    return t_multi, t_single


def test_multiquery_tradeoff(benchmark):
    def measure():
        rows = []
        for label, (dataset, queries) in (("overlapping", OVERLAPPING), ("divergent", DIVERGENT)):
            t_multi, t_single = _compare(dataset, queries)
            rows.append([label, t_multi, t_single, round(t_single / t_multi, 2)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Extension: one-pass multi-query vs separate passes",
                      ["queries", "one pass (s)", "separate (s)", "gain"], rows))
    overlap_gain = rows[0][3]
    divergent_gain = rows[1][3]
    assert overlap_gain > 1.3       # overlapping queries amortize the pass
    assert divergent_gain > 0.6     # divergent queries at worst cost ~the FF loss


@pytest.mark.parametrize("setup", ["multi", "separate"])
def test_bb_overlapping_pair(benchmark, setup, bb_large):
    queries = OVERLAPPING[1]
    if setup == "multi":
        engine = JsonSkiMulti(queries)
        benchmark(engine.run, bb_large)
    else:
        engines = [JsonSki(q) for q in queries]

        def run_all():
            for engine in engines:
                engine.run(bb_large)

        benchmark(run_all)
