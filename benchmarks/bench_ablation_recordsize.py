"""Ablation A5: small-record size sensitivity.

Figure 11's margins are thinner than Figure 10's because every record
pays a fixed indexing setup.  This sweep holds total bytes constant and
varies the record granularity by batching TT units per record, exposing
the per-record fixed cost of each engine.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.data.datasets import record_stream
from repro.harness.runner import make_engine, time_run_records
from repro.stream.records import RecordStream


def _batched(stream: RecordStream, per_record: int) -> RecordStream:
    """Group ``per_record`` tweets into one array-rooted record."""
    records = []
    units = [stream.record(i) for i in range(len(stream))]
    for i in range(0, len(units), per_record):
        records.append(b"[" + b",".join(units[i : i + per_record]) + b"]")
    return RecordStream.from_records(records)


def test_record_size_sweep(benchmark):
    base = record_stream("TT", SIZE, seed=3)

    def measure():
        rows = []
        for per_record in (1, 4, 16, 64):
            stream = _batched(base, per_record)
            row = [f"{per_record} tweets/record ({stream.size // max(len(stream),1)}B avg)"]
            expected = None
            for method in ("jpstream", "jsonski"):
                engine = make_engine(method, "$[*].text")
                engine.run_records(stream)
                seconds, matches = time_run_records(engine, stream)
                if expected is None:
                    expected = len(matches)
                assert len(matches) == expected
                row.append(seconds)
            row.append(round(row[1] / row[2], 2))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(("Ablation A5: record granularity (fixed total bytes)",
                      ["granularity", "JPStream", "JSONSki", "JSONSki gain"], rows))
    # JSONSki's advantage must grow with record size (fixed setup cost
    # amortizes); at the largest granularity it should be a clear win.
    gains = [row[3] for row in rows]
    assert gains[-1] > gains[0]
    assert gains[-1] > 1.5
