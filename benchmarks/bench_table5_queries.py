"""Table 5: the twelve JSONPath queries and their match counts."""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, print_experiment
from repro.engine import JsonSki
from repro.harness import experiments as exp


def test_table5(benchmark):
    result = benchmark.pedantic(exp.exp_table5, args=(SIZE,), rounds=1, iterations=1)
    print_experiment(result)
    _, _, rows = result
    counts = {row[0]: row[2] for row in rows}
    assert counts["NSPL1"] == 44  # Table 5's exact count
    assert counts["TT2"] > 0 and counts["NSPL2"] > 0


@pytest.mark.parametrize("qid,dataset,query", [
    (q.qid, name, q.large) for name, q in exp.all_queries()
])
def test_jsonski_per_query(benchmark, qid, dataset, query):
    """One benchmark bar per Table 5 query (JSONSki engine)."""
    data = exp.get_large(dataset, SIZE)
    engine = JsonSki(query)
    matches = benchmark(engine.run, data)
    assert len(matches) >= 0
