"""Figure 10: total execution time on a single large record.

Two layers:

- ``test_figure10_table`` regenerates the full figure (12 queries x 5
  serial methods + the 16-worker JPStream/Pison speculative bars) and
  asserts the paper's headline shape: JSONSki is the fastest serial
  method in aggregate, and the bit-parallel methods beat the
  character-by-character ones.
- the parametrized benchmarks give per-method bars on the paper's
  scalability query (BB1) for pytest-benchmark's own statistics.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIZE, WORKERS, print_experiment
from repro.harness import experiments as exp
from repro.harness.runner import make_engine


def test_figure10_table(benchmark):
    result = benchmark.pedantic(exp.exp_fig10, args=(SIZE, WORKERS), rounds=1, iterations=1)
    print_experiment(result)
    _, headers, rows = result
    col = {name: i for i, name in enumerate(headers)}
    totals = {name: sum(row[i] for row in rows) for name, i in col.items() if name != "Query"}
    # Paper shape: JSONSki fastest serial; JPStream/RapidJSON slowest.
    assert totals["JSONSki"] < totals["Pison"]
    assert totals["JSONSki"] < totals["simdjson"]
    assert totals["JSONSki"] * 1.5 < totals["JPStream"]
    assert totals["JSONSki"] * 1.5 < totals["RapidJSON"]
    # Speculative 16-worker runs beat their serial counterparts.
    assert totals[f"JPStream({WORKERS})"] < totals["JPStream"]
    assert totals[f"Pison({WORKERS})"] < totals["Pison"]


@pytest.mark.parametrize("method", ["jpstream", "rapidjson", "simdjson", "pison", "jsonski"])
def test_bb1_per_method(benchmark, method, bb_large):
    engine = make_engine(method, "$.pd[*].cp[1:3].id")
    matches = benchmark(engine.run, bb_large)
    assert len(matches) > 0
