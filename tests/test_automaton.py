"""Query automaton tests (Figure 5 transition semantics + FF guidance)."""

from __future__ import annotations

from repro.query.automaton import ACCEPT, ALIVE, MatchStatus, compile_query


class TestLinearPath:
    def test_key_transitions(self):
        qa = compile_query("$.place.name")
        s0 = qa.start_state
        s1 = qa.on_key(s0, "place")
        assert qa.status(s1) is MatchStatus.MATCHED
        s2 = qa.on_key(s1, "name")
        assert qa.status(s2) is MatchStatus.ACCEPT

    def test_wrong_key_is_dead(self):
        qa = compile_query("$.place.name")
        dead = qa.on_key(qa.start_state, "user")
        assert qa.status(dead) is MatchStatus.UNMATCHED
        assert dead == qa.dead_state
        # Dead states stay dead.
        assert qa.on_key(dead, "place") == qa.dead_state

    def test_status_flags_match_status(self):
        qa = compile_query("$.a.b")
        s0 = qa.start_state
        assert qa.status_flags(s0) == ALIVE
        acc = qa.on_key(qa.on_key(s0, "a"), "b")
        assert qa.status_flags(acc) == ACCEPT
        assert qa.status_flags(qa.dead_state) == 0

    def test_memoization_stable(self):
        qa = compile_query("$.a")
        assert qa.on_key(qa.start_state, "a") == qa.on_key(qa.start_state, "a")
        assert qa.on_key(qa.start_state, "zzz") == qa.on_key(qa.start_state, "yyy")


class TestArrayTransitions:
    def test_index(self):
        qa = compile_query("$[2]")
        s0 = qa.start_state
        assert qa.status(qa.on_element(s0, 1)) is MatchStatus.UNMATCHED
        assert qa.status(qa.on_element(s0, 2)) is MatchStatus.ACCEPT

    def test_slice(self):
        qa = compile_query("$[2:4].x")
        s0 = qa.start_state
        assert qa.status(qa.on_element(s0, 1)) is MatchStatus.UNMATCHED
        assert qa.status(qa.on_element(s0, 2)) is MatchStatus.MATCHED
        assert qa.status(qa.on_element(s0, 3)) is MatchStatus.MATCHED
        assert qa.status(qa.on_element(s0, 4)) is MatchStatus.UNMATCHED

    def test_open_slice(self):
        qa = compile_query("$[3:]")
        assert qa.status(qa.on_element(qa.start_state, 10_000)) is MatchStatus.ACCEPT

    def test_wildcard(self):
        qa = compile_query("$[*]")
        for i in (0, 7, 4096):  # beyond the memo bound too
            assert qa.status(qa.on_element(qa.start_state, i)) is MatchStatus.ACCEPT

    def test_key_in_array_context_is_dead(self):
        qa = compile_query("$[0]")
        assert qa.status(qa.on_key(qa.start_state, "x")) is MatchStatus.UNMATCHED


class TestDescendant:
    def test_self_loop(self):
        qa = compile_query("$..b")
        s0 = qa.start_state
        s_other = qa.on_key(s0, "a")
        assert qa.status(s_other) is MatchStatus.MATCHED  # still descending
        s_b = qa.on_key(s0, "b")
        assert qa.status(s_b) is MatchStatus.ACCEPT_AND_MATCHED
        assert qa.status(s_b).is_accept and qa.status(s_b).is_alive

    def test_traverses_arrays(self):
        qa = compile_query("$..b")
        s = qa.on_element(qa.start_state, 5)
        assert qa.status(s) is MatchStatus.MATCHED

    def test_frontier_contents(self):
        qa = compile_query("$..b")
        s_b = qa.on_key(qa.start_state, "b")
        assert qa.frontier(s_b) == frozenset({0, 1})


class TestGuidance:
    def test_expected_type_object(self):
        qa = compile_query("$.place.name")
        assert qa.expected_type(qa.start_state) == "object"

    def test_expected_type_array(self):
        qa = compile_query("$.pd[*].id")
        assert qa.expected_type(qa.start_state) == "array"
        s1 = qa.on_key(qa.start_state, "pd")
        assert qa.expected_type(s1) == "object"  # elements must be objects

    def test_expected_type_last_level(self):
        qa = compile_query("$.a")
        assert qa.expected_type(qa.start_state) == "unknown"

    def test_expected_type_under_descendant(self):
        qa = compile_query("$..a.b")
        assert qa.expected_type(qa.start_state) == "unknown"

    def test_object_skippable_concrete_names(self):
        qa = compile_query("$.a.b")
        assert qa.object_skippable(qa.start_state)

    def test_object_not_skippable_with_wildcard(self):
        qa = compile_query("$.*.b")
        assert not qa.object_skippable(qa.start_state)

    def test_object_not_skippable_with_descendant(self):
        qa = compile_query("$..b")
        assert not qa.object_skippable(qa.start_state)

    def test_element_range(self):
        qa = compile_query("$[2:5]")
        assert qa.element_range(qa.start_state) == (2, 5)
        qa = compile_query("$[3]")
        assert qa.element_range(qa.start_state) == (3, 4)
        qa = compile_query("$[*]")
        assert qa.element_range(qa.start_state) == (0, None)
        qa = compile_query("$..a")
        assert qa.element_range(qa.start_state) is None

    def test_can_match_in_container(self):
        qa = compile_query("$.a[0]")
        s0 = qa.start_state
        assert qa.can_match_in_object(s0) and not qa.can_match_in_array(s0)
        s1 = qa.on_key(s0, "a")
        assert qa.can_match_in_array(s1) and not qa.can_match_in_object(s1)
        assert not qa.can_match_in_object(qa.dead_state)

    def test_descendant_matches_everywhere(self):
        qa = compile_query("$..x")
        assert qa.can_match_in_object(qa.start_state)
        assert qa.can_match_in_array(qa.start_state)
