"""Malformed-input error paths: every engine, sensible diagnostics.

The contract: a diagnosably malformed record raises a
:class:`~repro.errors.ReproError` subclass carrying an ``int`` position —
never a bare builtin exception.  Engines that fast-forward may instead
*tolerate* a malformation sitting inside a skipped region (the paper's
Section 3.3 validation gap); what they may never do is crash.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import JsonSyntaxError, ReproError, StreamExhaustedError
from repro.stream.records import RecordStream

#: Malformed fixtures spanning the grammar: unterminated containers and
#: strings, missing separators, stray delimiters, bad primitives.
MALFORMED = [
    b"",
    b"{",
    b"[",
    b'{"a": ',
    b'{"a": 1',
    b'{"a" 1}',
    b'{"a": 1,}',
    b'{a: 1}',
    b'{"a": 1}}',
    b"[1, 2",
    b"[1 2]",
    b"[1, ]",
    b'{"a": "unterminated',
    b'{"a": tru}',
    b'{,}',
    b'{"a": 1] ',
]

ALL_ENGINES = tuple(repro.ENGINES)


@pytest.mark.parametrize("name", ALL_ENGINES)
@pytest.mark.parametrize("data", MALFORMED, ids=[repr(d) for d in MALFORMED])
def test_malformed_raises_diagnosable_or_is_tolerated(name, data):
    engine = repro.ENGINES[name]("$.a.b")
    try:
        engine.run(data)
    except JsonSyntaxError as exc:
        assert isinstance(exc.position, int) and exc.position >= 0
        assert isinstance(exc, ReproError)
    except ReproError:
        pass  # other diagnosed failures (resource guard etc.) are fine too
    # Success = the malformation sat in a region this engine never
    # examines (fast-forwarded past) — the documented blind spot.


@pytest.mark.parametrize("name", ALL_ENGINES)
def test_definitely_diagnosed_prefix(name):
    # A truncated record whose damage is *before* any possible skip:
    # every engine must diagnose it (no engine can match "$.a.b" here).
    engine = repro.ENGINES[name]("$.a.b")
    with pytest.raises(ReproError):
        engine.run(b'{"a": {"b": ')


class TestStreamBoundaries:
    def test_trailing_partial_record_is_exhaustion(self):
        with pytest.raises(StreamExhaustedError):
            RecordStream.from_concatenated(b'{"a": 1}\n{"b": {"c": ')

    def test_exhaustion_is_a_syntax_error(self):
        # Catchability contract: StreamExhaustedError narrows
        # JsonSyntaxError, so existing handlers keep working.
        assert issubclass(StreamExhaustedError, JsonSyntaxError)

    def test_clean_concatenated_ok(self):
        stream = RecordStream.from_concatenated(b'{"a": 1} [2]')
        assert [bytes(r) for r in stream] == [b'{"a": 1}', b"[2]"]


class TestErrorTaxonomy:
    # The raise-taxonomy rule (RS002) retyped former bare ValueErrors;
    # both new classes stay catchable as ValueError for old callers.
    def test_configuration_error_is_repro_and_value_error(self):
        from repro.errors import ConfigurationError

        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ConfigurationError, ValueError)

    def test_invariant_error_is_repro_and_value_error(self):
        from repro.errors import InvariantError

        assert issubclass(InvariantError, ReproError)
        assert issubclass(InvariantError, ValueError)

    def test_bad_checkpoint_every_is_configuration_error(self, tmp_path):
        from repro.checkpoint.runs import checkpointed_recovery
        from repro.errors import ConfigurationError

        stream = RecordStream.from_concatenated(b"[1]")
        with pytest.raises(ConfigurationError):
            checkpointed_recovery(
                repro.JsonSki("$[*]"), stream,
                checkpoint=str(tmp_path), checkpoint_every=0,
            )

    def test_bad_n_parts_is_configuration_error(self):
        from repro.errors import ConfigurationError

        stream = RecordStream.from_concatenated(b"{}")
        with pytest.raises(ConfigurationError):
            stream.partitions(0)
