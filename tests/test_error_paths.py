"""Malformed-input error paths: every engine, sensible diagnostics.

The contract: a diagnosably malformed record raises a
:class:`~repro.errors.ReproError` subclass carrying an ``int`` position —
never a bare builtin exception.  Engines that fast-forward may instead
*tolerate* a malformation sitting inside a skipped region (the paper's
Section 3.3 validation gap); what they may never do is crash.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import JsonSyntaxError, ReproError, StreamExhaustedError
from repro.stream.records import RecordStream

#: Malformed fixtures spanning the grammar: unterminated containers and
#: strings, missing separators, stray delimiters, bad primitives.
MALFORMED = [
    b"",
    b"{",
    b"[",
    b'{"a": ',
    b'{"a": 1',
    b'{"a" 1}',
    b'{"a": 1,}',
    b'{a: 1}',
    b'{"a": 1}}',
    b"[1, 2",
    b"[1 2]",
    b"[1, ]",
    b'{"a": "unterminated',
    b'{"a": tru}',
    b'{,}',
    b'{"a": 1] ',
]

ALL_ENGINES = tuple(repro.ENGINES)


@pytest.mark.parametrize("name", ALL_ENGINES)
@pytest.mark.parametrize("data", MALFORMED, ids=[repr(d) for d in MALFORMED])
def test_malformed_raises_diagnosable_or_is_tolerated(name, data):
    engine = repro.ENGINES[name]("$.a.b")
    try:
        engine.run(data)
    except JsonSyntaxError as exc:
        assert isinstance(exc.position, int) and exc.position >= 0
        assert isinstance(exc, ReproError)
    except ReproError:
        pass  # other diagnosed failures (resource guard etc.) are fine too
    # Success = the malformation sat in a region this engine never
    # examines (fast-forwarded past) — the documented blind spot.


@pytest.mark.parametrize("name", ALL_ENGINES)
def test_definitely_diagnosed_prefix(name):
    # A truncated record whose damage is *before* any possible skip:
    # every engine must diagnose it (no engine can match "$.a.b" here).
    engine = repro.ENGINES[name]("$.a.b")
    with pytest.raises(ReproError):
        engine.run(b'{"a": {"b": ')


class TestStreamBoundaries:
    def test_trailing_partial_record_is_exhaustion(self):
        with pytest.raises(StreamExhaustedError):
            RecordStream.from_concatenated(b'{"a": 1}\n{"b": {"c": ')

    def test_exhaustion_is_a_syntax_error(self):
        # Catchability contract: StreamExhaustedError narrows
        # JsonSyntaxError, so existing handlers keep working.
        assert issubclass(StreamExhaustedError, JsonSyntaxError)

    def test_clean_concatenated_ok(self):
        stream = RecordStream.from_concatenated(b'{"a": 1} [2]')
        assert [bytes(r) for r in stream] == [b'{"a": 1}', b"[2]"]
