"""Unit-level tests of the per-dataset record generators."""

from __future__ import annotations

import json
import random

import pytest

from repro.data import datasets as ds


@pytest.fixture()
def rng():
    return random.Random(123)


class TestTweetUnit:
    def test_required_fields(self, rng):
        tweet = ds._tt_unit(rng, 0)
        for field in ("created_at", "id", "text", "en", "user", "coordinates", "lang"):
            assert field in tweet
        assert set(tweet["en"]) == {"hashtags", "urls", "user_mentions"}

    def test_url_shape(self, rng):
        for i in range(50):
            tweet = ds._tt_unit(rng, i)
            for url in tweet["en"]["urls"]:
                assert url["url"].startswith("https://t.co/")
                assert len(url["indices"]) == 2

    def test_place_is_optional_but_shaped(self, rng):
        places = [ds._tt_unit(rng, i).get("place") for i in range(200)]
        present = [p for p in places if p is not None]
        assert 0 < len(present) < 200  # optional
        for place in present:
            assert place["bounding_box"]["type"] == "Polygon"
            assert len(place["bounding_box"]["pos"]) == 4


class TestProductUnits:
    def test_bb_category_path_depth(self, rng):
        for i in range(50):
            product = ds._bb_unit(rng, i)
            assert 2 <= len(product["cp"]) <= 5
            for level in product["cp"]:
                assert set(level) == {"id", "nm"}

    def test_bb_video_chapters_rare(self, rng):
        with_vc = sum("vc" in ds._bb_unit(rng, i) for i in range(500))
        assert 0 < with_vc < 50  # ~2%

    def test_wm_is_flat(self, rng):
        item = ds._wm_unit(rng, 0)
        nested = [v for v in item.values() if isinstance(v, (dict, list))]
        assert len(nested) <= 1  # only the optional bmrpr object

    def test_wm_bmrpr_shape(self, rng):
        found = 0
        for i in range(300):
            item = ds._wm_unit(rng, i)
            if "bmrpr" in item:
                found += 1
                assert set(item["bmrpr"]) == {"pr", "cu"}
        assert found > 0


class TestDirectionsUnit:
    def test_route_leg_step_nesting(self, rng):
        result = ds._gmd_unit(rng, 0)
        assert result["status"] == "OK"
        for route in result["rt"]:
            for leg in route["lg"]:
                assert len(leg["st"]) >= 3
                for step in leg["st"]:
                    assert step["dt"]["tx"].endswith("mins")
                    assert isinstance(step["dt"]["vl"], int)


class TestNsplUnits:
    def test_meta_has_44_columns(self, rng):
        meta = ds._nspl_meta(rng)
        assert len(meta["vw"]["co"]) == 44
        assert [c["ix"] for c in meta["vw"]["co"]] == list(range(44))

    def test_block_rows_are_flat_primitives(self, rng):
        block = ds._nspl_block(rng, 0)
        assert len(block) == 8
        for row in block:
            assert len(row) == 10
            assert all(not isinstance(v, (dict, list)) for v in row)


class TestWikidataUnit:
    def test_language_maps(self, rng):
        entity = ds._wp_unit(rng, 0)
        assert entity["id"].startswith("Q")
        for lang, label in entity["labels"].items():
            assert label["language"] == lang

    def test_claims_shape(self, rng):
        entity = ds._wp_unit(rng, 1)
        for prop, statements in entity["cl"].items():
            for statement in statements:
                assert statement["ms"]["pty"] == prop

    def test_p150_rare(self, rng):
        with_p150 = sum("P150" in ds._wp_unit(rng, i)["cl"] for i in range(400))
        assert 10 < with_p150 < 120  # ~12%


class TestAssembly:
    def test_unit_strings_reach_target(self):
        units = ds._unit_strings(ds.dataset("TT"), 10_000, seed=1)
        total = sum(len(u) + 1 for u in units)
        assert total >= 10_000
        assert total - len(units[-1]) - 1 < 10_000  # no overshoot beyond one unit

    def test_large_record_wrappers(self):
        assert ds.large_record("TT", 3_000, seed=1).startswith(b"[")
        assert ds.large_record("BB", 3_000, seed=1).startswith(b'{"pd":[')
        assert ds.large_record("NSPL", 3_000, seed=1).startswith(b'{"mt":')
        for name in ds.DATASETS:
            json.loads(ds.large_record(name, 3_000, seed=1))

    def test_nspl_small_records_wrapped(self):
        stream = ds.record_stream("NSPL", 3_000, seed=1)
        assert stream.record(0).startswith(b'{"dt":')
