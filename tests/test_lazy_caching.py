"""On-demand materialization and the two caching layers.

Three contracts under test:

1. **Lazy match views** (:mod:`repro.engine.output`): a matched byte
   range decodes at most once, on first touch, and the zero-parse
   terminal ops (``count``/``spans``/``texts``/``to_jsonl``) never touch
   the decoder at all.
2. **Structural-index sidecars** (:mod:`repro.engine.sidecar`): a warm
   load is byte-validated against the corpus and builds zero chunks;
   every corruption class degrades to a rebuild, never to wrong answers.
3. **Compiled-query LRU** (:class:`repro.engine.prepared.CompiledQueryCache`):
   eviction changes timing only — results stay equal to cache-free
   compilation, including under the differential fuzzer.
"""

from __future__ import annotations

import io
import json

import pytest

import repro
from repro.checkpoint import JsonlEmitter
from repro.engine import output as output_mod
from repro.engine import prepared as prepared_mod
from repro.engine import sidecar
from repro.engine.output import Match, MatchList
from repro.engine.prepared import CompiledQueryCache, IndexedBuffer
from repro.errors import IndexSidecarError, MatchTypeError
from repro.resilience import run_with_recovery
from repro.resilience.fuzz import differential_fuzz
from repro.stream.records import RecordStream


@pytest.fixture()
def decode_counter(monkeypatch):
    """Count every json.loads the lazy views perform."""
    calls = {"n": 0}
    real = output_mod._decode

    def counting(text):
        calls["n"] += 1
        return real(text)

    monkeypatch.setattr(output_mod, "_decode", counting)
    return calls


DOC = b'{"a": [1, 2, 3], "b": {"c": "hi"}, "d": null}'


# ---------------------------------------------------------------------------
# 1. Lazy Match views


class TestLazyMatch:
    def test_value_parses_once(self, decode_counter):
        m = Match(b'{"k": [1]}', 0, 10)
        assert not m.touched
        assert m.value() == {"k": [1]}
        assert m.touched
        assert m.value() == {"k": [1]}
        assert decode_counter["n"] == 1

    def test_raw_is_zero_copy(self):
        source = b'[10, 20]'
        m = Match(source, 1, 3)
        view = m.raw
        assert isinstance(view, memoryview)
        assert bytes(view) == b"10" == m.text
        assert view.obj is source  # no slice copy was made

    def test_zero_parse_terminals(self, decode_counter):
        matches = repro.compile("$.a[*]").run(DOC)
        assert matches.count() == len(matches) == 3
        assert matches.spans() == [(7, 8), (10, 11), (13, 14)]
        assert matches.texts() == [b"1", b"2", b"3"]
        assert matches.to_jsonl() == b"1\n2\n3\n"
        assert decode_counter["n"] == 0

    def test_values_memoized_across_consumers(self, decode_counter):
        matches = repro.compile("$.a[*]").run(DOC)
        assert matches.values() == [1, 2, 3]
        assert matches.values() == [1, 2, 3]
        assert [m.value() for m in matches] == [1, 2, 3]
        assert decode_counter["n"] <= 3

    def test_views_are_shared(self):
        matches = repro.compile("$.a[*]").run(DOC)
        assert matches[0] is matches[0]
        assert matches[0] is next(iter(matches))
        assert matches[-1].text == b"3"

    def test_as_int(self):
        assert Match(b"42", 0, 2).as_int() == 42
        assert Match(b" -7 ", 0, 4).as_int() == -7
        with pytest.raises(MatchTypeError):
            Match(b'"x"', 0, 3).as_int()
        with pytest.raises(MatchTypeError):
            Match(b"1.5", 0, 3).as_int()

    def test_as_int_rejects_memoized_bool(self):
        m = Match(b"true", 0, 4)
        assert m.as_bool() is True
        with pytest.raises(MatchTypeError):
            m.as_int()

    def test_as_float(self):
        assert Match(b"1.5", 0, 3).as_float() == 1.5
        assert Match(b"3", 0, 1).as_float() == 3.0
        m = Match(b"2", 0, 1)
        assert m.as_int() == 2
        assert m.as_float() == 2.0  # memoized int upgrades
        with pytest.raises(MatchTypeError):
            Match(b"null", 0, 4).as_float()

    def test_as_str_fast_path_skips_decoder(self, decode_counter):
        assert Match(b'"hi"', 0, 4).as_str() == "hi"
        assert decode_counter["n"] == 0
        assert Match(b'"a\\nb"', 0, 6).as_str() == "a\nb"
        assert decode_counter["n"] == 1  # escapes go through the decoder
        with pytest.raises(MatchTypeError):
            Match(b"12", 0, 2).as_str()

    def test_as_bool_and_is_null_never_parse(self, decode_counter):
        assert Match(b"false", 0, 5).as_bool() is False
        assert Match(b"null", 0, 4).is_null()
        assert not Match(b"0", 0, 1).is_null()
        with pytest.raises(MatchTypeError):
            Match(b"1", 0, 1).as_bool()
        assert decode_counter["n"] == 0

    def test_typed_accessor_agrees_with_value(self):
        m = Match(b'"hey"', 0, 5)
        assert m.as_str() == "hey"
        assert m.value() == "hey"  # memo reused, types agree

    def test_add_match_adopts_memoized_view(self, decode_counter):
        m = Match(b"[1,2]", 0, 5)
        assert m.value() == [1, 2]
        ml = MatchList()
        ml.add_match(m)
        assert ml[0] is m
        assert ml.values() == [[1, 2]]
        assert decode_counter["n"] == 1

    def test_extend_preserves_views(self, decode_counter):
        a, b = MatchList(), MatchList()
        a.add(b"1", 0, 1)
        touched = Match(b"2", 0, 1)
        touched.value()
        b.add_match(touched)
        a.extend(b)
        assert a.texts() == [b"1", b"2"]
        assert a[1] is touched
        assert a.values() == [1, 2]
        assert decode_counter["n"] == 2  # one for "1", one (earlier) for "2"

    def test_match_equality_and_hash(self):
        src = b"[1, 1]"
        assert Match(src, 1, 2) == Match(src, 1, 2)
        assert Match(src, 1, 2) != Match(src, 4, 5)
        assert hash(Match(src, 1, 2)) == hash(Match(bytes(src), 1, 2))


class TestFilteredSingleParse:
    """The filter predicate and the consumer share one parse (the old
    code parsed the candidate in the predicate, then re-parsed it in
    ``values()``)."""

    def test_bare_at_predicate_parses_once_per_candidate(self, decode_counter):
        doc = b'{"items": [1, 5, 2, 9]}'
        matches = repro.compile("$.items[?(@ > 3)]").run(doc)
        assert matches.values() == [5, 9]
        # 4 candidates parsed by the predicate; the 2 survivors are
        # adopted views, so values() adds no further decodes.
        assert decode_counter["n"] == 4

    def test_subpath_predicate_result_unchanged(self):
        doc = b'{"items": [{"p": 5, "n": "a"}, {"p": 15, "n": "b"}]}'
        matches = repro.compile("$.items[?(@.p > 10)].n").run(doc)
        assert matches.values() == ["b"]


# ---------------------------------------------------------------------------
# 2. Structural-index sidecars


def _corpus(n=400):
    rows = [{"a": {"b": i}, "tag": "x" * (i % 13)} for i in range(n)]
    return ("[" + ",".join(json.dumps(r) for r in rows) + "]").encode()


CHUNK = 1 << 12


class TestSidecar:
    def test_roundtrip_is_fully_warm_and_equal(self, tmp_path):
        data = _corpus()
        built = IndexedBuffer(data, chunk_size=CHUNK).warm()
        path = built.save(tmp_path / "c.ridx")
        loaded = IndexedBuffer.load(path, data, chunk_size=CHUNK)
        assert loaded.buffer.index.chunks_built == 0  # stage 1 skipped
        eng = repro.compile("$[*].a.b")
        assert eng.run(loaded).values() == eng.run(built).values()

    def test_corrupt_payload_raises_then_rebuilds(self, tmp_path):
        data = _corpus()
        built = IndexedBuffer(data, chunk_size=CHUNK).warm()
        path = built.save(sidecar.sidecar_path(tmp_path, data, CHUNK))
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexSidecarError):
            IndexedBuffer.load(path, data, chunk_size=CHUNK)
        # The caching entry point silently rebuilds (and rewrites).
        indexed = IndexedBuffer.load_or_build(data, tmp_path, chunk_size=CHUNK)
        assert repro.compile("$[*].a.b").run(indexed).count() == 400
        assert IndexedBuffer.load(path, data, chunk_size=CHUNK).buffer.index.chunks_built == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ridx"
        path.write_bytes(b"not a sidecar at all" * 4)
        with pytest.raises(IndexSidecarError):
            IndexedBuffer.load(path, _corpus(), chunk_size=CHUNK)

    def test_truncated_file_rejected(self, tmp_path):
        data = _corpus()
        path = IndexedBuffer(data, chunk_size=CHUNK).warm().save(tmp_path / "t.ridx")
        path.write_bytes(path.read_bytes()[:-64])
        with pytest.raises(IndexSidecarError):
            IndexedBuffer.load(path, data, chunk_size=CHUNK)

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        data = _corpus()
        path = IndexedBuffer(data, chunk_size=CHUNK).warm().save(tmp_path / "v.ridx")
        monkeypatch.setattr(sidecar, "FORMAT_VERSION", 2)
        with pytest.raises(IndexSidecarError, match="version"):
            IndexedBuffer.load(path, data, chunk_size=CHUNK)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        data = _corpus()
        path = IndexedBuffer(data, chunk_size=CHUNK).warm().save(tmp_path / "f.ridx")
        other = data[:-1] + b" "
        with pytest.raises(IndexSidecarError, match="corpus"):
            IndexedBuffer.load(path, other, chunk_size=CHUNK)

    def test_chunk_size_mismatch_rejected(self, tmp_path):
        data = _corpus()
        path = IndexedBuffer(data, chunk_size=CHUNK).warm().save(tmp_path / "k.ridx")
        with pytest.raises(IndexSidecarError):
            IndexedBuffer.load(path, data, chunk_size=CHUNK * 2)

    def test_word_mode_save_refused_and_builds_plain(self, tmp_path):
        data = _corpus(50)
        with pytest.raises(IndexSidecarError):
            IndexedBuffer(data, mode="word").save(tmp_path / "w.ridx")
        indexed = IndexedBuffer.load_or_build(data, tmp_path, mode="word")
        assert indexed.sidecar is None
        assert list(tmp_path.iterdir()) == []

    def test_load_or_build_miss_then_hit(self, tmp_path):
        data = _corpus()
        first = IndexedBuffer.load_or_build(data, tmp_path, chunk_size=CHUNK)
        assert first.sidecar is not None and first.sidecar.exists()
        second = IndexedBuffer.load_or_build(data, tmp_path, chunk_size=CHUNK)
        assert second.sidecar == first.sidecar
        assert second.buffer.index.chunks_built == 0

    def test_prepared_index_routes_through_cache(self, tmp_path):
        data = _corpus()
        eng = repro.compile("$[*].a.b")
        indexed = eng.index(data, chunk_size=CHUNK, cache_dir=tmp_path)
        assert indexed.sidecar is not None
        again = eng.index(data, chunk_size=CHUNK, cache_dir=tmp_path)
        assert again.buffer.index.chunks_built == 0
        assert eng.run(again).count() == eng.run(indexed).count() == 400


# ---------------------------------------------------------------------------
# 3. Compiled-query LRU


QUERIES = ["$.a[*]", "$.b.c", "$.d", "$.a[1:3]", "$..c"]


class TestCompiledQueryCache:
    def test_parse_hit_miss_accounting(self):
        cache = CompiledQueryCache(maxsize=8)
        p1 = cache.parse("$.a.b")
        p2 = cache.parse("$.a.b")
        assert p1 is p2
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_automaton_shared_for_equal_paths(self):
        cache = CompiledQueryCache(maxsize=8)
        a1 = cache.automaton(cache.parse("$.a[*]"))
        a2 = cache.automaton(cache.parse("$.a[*]"))
        assert a1 is a2

    def test_eviction_keeps_results_correct(self):
        cache = CompiledQueryCache(maxsize=2)
        expected = {q: repro.compile(q).run(DOC).values() for q in QUERIES}
        for _ in range(3):  # cycle far past capacity
            for q in QUERIES:
                path = cache.parse(q)
                cache.automaton(path)
                assert repro.compile(q).run(DOC).values() == expected[q]
        stats = cache.stats()
        assert stats["misses"] > 2 * len(QUERIES)  # eviction really happened

    def test_syntax_errors_never_cached(self):
        cache = CompiledQueryCache(maxsize=4)
        for _ in range(2):
            with pytest.raises(repro.JsonPathSyntaxError):
                cache.parse("$.a[")
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2
        assert cache.stats()["paths"] == 0

    def test_clear_resets(self):
        cache = CompiledQueryCache(maxsize=4)
        cache.parse("$.a")
        cache.clear()
        assert cache.stats()["misses"] == 0
        cache.parse("$.a")
        assert cache.stats()["misses"] == 1

    def test_global_cache_hit_via_compile(self, monkeypatch):
        monkeypatch.setattr(prepared_mod, "QUERY_CACHE", CompiledQueryCache(maxsize=8))
        repro.compile("$.b.c")
        repro.compile("$.b.c")
        stats = prepared_mod.QUERY_CACHE.stats()
        assert stats["hits"] >= 1

    def test_tiny_cache_survives_differential_fuzz(self, monkeypatch):
        monkeypatch.setattr(prepared_mod, "QUERY_CACHE", CompiledQueryCache(maxsize=1))
        records = [
            json.dumps({"a": [i, {"b": i}], "c": "x"}).encode() for i in range(4)
        ]
        report = differential_fuzz(
            records, 20, seed=3, engines=("jsonski",), deadline_per_case=None
        )
        assert report.ok, report.describe()


# ---------------------------------------------------------------------------
# Lazy checkpointed runs: exactly-once, byte-identical, zero-decode


def _records(n=12):
    return RecordStream.from_records(
        [json.dumps({"a": {"b": [i, i + 1]}}).encode() for i in range(n)]
    )


class TestLazyCheckpointedRuns:
    def test_emitter_splices_raw_match_bytes(self, tmp_path, decode_counter):
        sink = io.BytesIO()
        run_with_recovery(
            repro.compile("$.a.b"), _records(), checkpoint=tmp_path / "run.ckpt",
            emitter=JsonlEmitter(sink), materialize=False,
        )
        lines = sink.getvalue().splitlines()
        # Raw splices: the exact source bytes, spaces and all.
        assert lines == [f"[{i}, {i + 1}]".encode() for i in range(12)]
        assert decode_counter["n"] == 0  # zero json.loads end-to-end

    def test_lazy_values_are_matchlists(self, decode_counter):
        result = run_with_recovery(repro.compile("$.a.b"), _records(), materialize=False)
        assert all(isinstance(v, MatchList) for v in result.values)
        assert decode_counter["n"] == 0
        assert result.values[3].values() == [[3, 4]]  # decodes only on touch

    def test_interrupt_resume_byte_identical_lazy(self, tmp_path, decode_counter):
        stream = _records(20)
        ref_sink = io.BytesIO()
        run_with_recovery(
            repro.compile("$.a.b"), stream, checkpoint=tmp_path / "ref.ckpt",
            checkpoint_every=3, emitter=JsonlEmitter(ref_sink), materialize=False,
        )
        out_path = tmp_path / "out.jsonl"
        ck = tmp_path / "run.ckpt"
        with open(out_path, "w+b") as handle:
            first = run_with_recovery(
                repro.compile("$.a.b"), stream, checkpoint=ck, checkpoint_every=3,
                emitter=JsonlEmitter(handle), materialize=False,
                stop=lambda cursor: cursor >= 7,
            )
            assert first.checkpoint.interrupted
        with open(out_path, "r+b") as handle:
            handle.seek(0, io.SEEK_END)
            second = run_with_recovery(
                repro.compile("$.a.b"), stream, checkpoint=ck, checkpoint_every=3,
                emitter=JsonlEmitter(handle), materialize=False, resume=True,
            )
            assert second.checkpoint.completed
        assert out_path.read_bytes() == ref_sink.getvalue()
        assert decode_counter["n"] == 0  # no decode anywhere in the cycle

    def test_lazy_and_eager_agree_semantically(self, tmp_path):
        stream = _records()
        lazy_sink, eager_sink = io.BytesIO(), io.BytesIO()
        run_with_recovery(
            repro.compile("$.a.b"), stream, checkpoint=tmp_path / "l.ckpt",
            emitter=JsonlEmitter(lazy_sink), materialize=False,
        )
        run_with_recovery(
            repro.compile("$.a.b"), stream, checkpoint=tmp_path / "e.ckpt",
            emitter=JsonlEmitter(eager_sink),
        )
        decode = lambda blob: [json.loads(line) for line in blob.splitlines()]
        assert decode(lazy_sink.getvalue()) == decode(eager_sink.getvalue())


# ---------------------------------------------------------------------------
# Wiring: CLI --index-cache, serve registry


class TestCliIndexCache:
    def test_index_cache_persists_and_reuses(self, tmp_path):
        from repro.cli import main

        doc = tmp_path / "doc.json"
        doc.write_bytes(b'{"a": [1, 2, 3]}')
        cache = tmp_path / "ridx"
        cache.mkdir()

        def run():
            out = io.StringIO()
            code = main(["$.a[*]", str(doc), "--index-cache", str(cache)], out=out, err=io.StringIO())
            return code, out.getvalue()

        code, out = run()
        assert code == 0 and out.splitlines() == ["1", "2", "3"]
        sidecars = list(cache.glob("*" + sidecar.SUFFIX))
        assert len(sidecars) == 1
        code, out = run()  # warm: served from the sidecar
        assert code == 0 and out.splitlines() == ["1", "2", "3"]

    def test_corrupt_cache_is_not_fatal(self, tmp_path):
        from repro.cli import main

        doc = tmp_path / "doc.json"
        doc.write_bytes(b'{"a": [7]}')
        cache = tmp_path / "ridx"
        cache.mkdir()
        assert main(["$.a[*]", str(doc), "--index-cache", str(cache)],
                    out=io.StringIO(), err=io.StringIO()) == 0
        (ridx,) = cache.glob("*" + sidecar.SUFFIX)
        ridx.write_bytes(b"garbage")
        out = io.StringIO()
        assert main(["$.a[*]", str(doc), "--index-cache", str(cache)],
                    out=out, err=io.StringIO()) == 0
        assert out.getvalue().strip() == "7"


class TestServeRegistryCaching:
    def test_corpus_index_sidecar_shared_across_registries(self, tmp_path):
        from repro.serve.registry import CorpusRegistry

        payload = b'{"a": {"b": [1, 2, 3]}}'
        first = CorpusRegistry(index_cache=tmp_path)
        corpus = first.register("doc", payload, format="json")
        eng = first.compile("$.a.b[*]", "jsonski", limits=None)
        indexed = corpus.indexed(eng)
        assert indexed.sidecar is not None and indexed.sidecar.exists()
        # A fresh registry (a restarted process) loads, not builds.
        second = CorpusRegistry(index_cache=tmp_path)
        corpus2 = second.register("doc", payload, format="json")
        indexed2 = corpus2.indexed(second.compile("$.a.b[*]", "jsonski", limits=None))
        assert indexed2.buffer.index.chunks_built == 0
        assert eng.run(indexed2).values() == [1, 2, 3]

    def test_parse_goes_through_shared_query_cache(self, monkeypatch):
        from repro.serve.registry import CorpusRegistry

        monkeypatch.setattr(prepared_mod, "QUERY_CACHE", CompiledQueryCache(maxsize=8))
        registry = CorpusRegistry()
        registry.parse("$.a.b")
        registry.parse("$.a.b")
        assert prepared_mod.QUERY_CACHE.stats()["hits"] >= 1
