"""Validation-mode tests: repro.validate_json against json.loads."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.data.synth import random_json


class TestAccepts:
    @pytest.mark.parametrize("doc", [
        b"{}", b"[]", b"0", b"-1.5e+3", b'"s"', b"true", b"false", b"null",
        b'  {"a": [1, {"b": null}]}  \n',
        rb'{"esc": "a\"b\\c"}',
        '{"unicode": "é東"}'.encode("utf-8"),
    ])
    def test_valid(self, doc):
        repro.validate_json(doc)
        assert repro.is_valid_json(doc)


class TestRejects:
    @pytest.mark.parametrize("doc", [
        b"", b"   ", b"{", b"}", b'{"a"}', b'{"a": }', b'{"a": 1,}',
        b"[1, ]", b"[1 2]", b'{"a": not}', b'{"a": 01}', b'{"a": 1.}',
        b'{"a": +1}', b'{"a": .5}', b"nul", b"TRUE",
        b'{"a": "unterminated', b'{"a": 1} trailing', b'{"a": "\x01"}',
        b'{"a": "\\q"}',  # invalid escape
        b'{"a": 1}}',
    ])
    def test_invalid(self, doc):
        assert not repro.is_valid_json(doc)
        with pytest.raises(repro.ReproError):
            repro.validate_json(doc)


class TestAgainstStdlib:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60)
    def test_mutated_documents(self, seed):
        rng = random.Random(seed)
        doc = json.dumps(random_json(rng, 3)).encode()
        if rng.random() < 0.6 and len(doc) > 3:
            i = rng.randrange(len(doc))
            doc = doc[:i] + bytes([rng.randrange(32, 126)]) + doc[i + 1 :]
        try:
            json.loads(doc)
            std_valid = True
        except Exception:
            std_valid = False
        assert repro.is_valid_json(doc) == std_valid, doc

    def test_fastforward_blindspot_is_caught_here(self):
        """The exact input JSONSki fast-forwards past without complaint
        (engine test pins that behaviour) must fail full validation."""
        doc = b'{"skip": {"totally": not json !!}, "a": 1}'
        assert repro.JsonSki("$.a").run(doc).values() == [1]
        assert not repro.is_valid_json(doc)
