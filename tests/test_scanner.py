"""Scanner primitive tests: word vs vector vs brute-force oracle."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.posindex import PositionBufferIndex
from repro.bits.scanner import NOT_FOUND, VectorScanner, WordScanner, make_scanner
from repro.bits.strings import naive_string_mask

_DENSE = st.lists(st.sampled_from(list(b'a" \\{}[]:,')), max_size=250).map(bytes)
_CLASSES = [cls for cls in CharClass if cls is not CharClass.BACKSLASH]


def _oracle_positions(data: bytes, cls: CharClass) -> list[int]:
    """Brute-force string-filtered positions of a class."""
    mask = naive_string_mask(data)
    if cls is CharClass.QUOTE:
        return [i for i in range(len(data)) if mask.unescaped_quotes >> i & 1]
    return [
        i
        for i, c in enumerate(data)
        if c in cls.chars and not (mask.in_string >> i & 1)
    ]


def _scanners(data: bytes, chunk_size: int = 64):
    word = WordScanner(BufferIndex(data, chunk_size=chunk_size, cache_chunks=None))
    vector = VectorScanner(PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=None))
    return word, vector


class TestMakeScanner:
    def test_known_modes(self):
        idx = BufferIndex(b"{}", chunk_size=64)
        assert isinstance(make_scanner(idx, "word"), WordScanner)
        assert isinstance(make_scanner(idx, "vector"), VectorScanner)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown scanner mode"):
            make_scanner(BufferIndex(b"{}", chunk_size=64), "simd")


class TestPrimitivesAgainstOracle:
    @given(_DENSE, st.sampled_from(_CLASSES))
    def test_find_next(self, data, cls):
        word, vector = _scanners(data)
        oracle = _oracle_positions(data, cls)
        for pos in range(len(data) + 1):
            want = next((p for p in oracle if p >= pos), NOT_FOUND)
            assert word.find_next(cls, pos) == want
            assert vector.find_next(cls, pos) == want

    @given(_DENSE, st.sampled_from(_CLASSES))
    def test_find_prev(self, data, cls):
        word, vector = _scanners(data)
        oracle = _oracle_positions(data, cls)
        for pos in range(len(data) + 1):
            want = next((p for p in reversed(oracle) if p <= pos), NOT_FOUND)
            assert word.find_prev(cls, pos) == want
            assert vector.find_prev(cls, pos) == want

    @given(_DENSE, st.sampled_from(_CLASSES), st.data())
    def test_count_range(self, data, cls, draw):
        word, vector = _scanners(data)
        oracle = _oracle_positions(data, cls)
        n = len(data)
        lo = draw.draw(st.integers(min_value=0, max_value=max(n, 1)))
        hi = draw.draw(st.integers(min_value=0, max_value=max(n, 1) + 5))
        want = sum(1 for p in oracle if lo <= p < hi)
        assert word.count_range(cls, lo, hi) == want
        assert vector.count_range(cls, lo, hi) == want

    @given(_DENSE, st.sampled_from(_CLASSES), st.integers(min_value=1, max_value=10))
    def test_kth_in_range(self, data, cls, k):
        word, vector = _scanners(data)
        oracle = _oracle_positions(data, cls)
        for lo in range(0, len(data) + 1, 7):
            eligible = [p for p in oracle if p >= lo]
            want = eligible[k - 1] if len(eligible) >= k else NOT_FOUND
            assert word.kth_in_range(cls, lo, k) == want
            assert vector.kth_in_range(cls, lo, k) == want

    def test_kth_invalid_k(self):
        word, vector = _scanners(b"{}")
        for scanner in (word, vector):
            with pytest.raises(ValueError):
                scanner.kth_in_range(CharClass.LBRACE, 0, 0)


def _oracle_pair_close(data: bytes, open_cls, close_cls, pos: int, num_open: int) -> int:
    """Reference matching-close via a linear depth scan."""
    opens = set(_oracle_positions(data, open_cls))
    closes = set(_oracle_positions(data, close_cls))
    depth = num_open
    for p in range(pos, len(data)):
        if p in opens:
            depth += 1
        elif p in closes:
            depth -= 1
            if depth == 0:
                return p
    return NOT_FOUND


class TestPairClose:
    @given(_DENSE, st.integers(min_value=1, max_value=3))
    def test_matches_depth_scan(self, data, num_open):
        word, vector = _scanners(data)
        for pos in range(0, len(data) + 1, 5):
            want = _oracle_pair_close(data, CharClass.LBRACE, CharClass.RBRACE, pos, num_open)
            assert word.pair_close(CharClass.LBRACE, CharClass.RBRACE, pos, num_open) == want
            assert vector.pair_close(CharClass.LBRACE, CharClass.RBRACE, pos, num_open) == want

    def test_nested_object_end(self):
        data = b'{"a": {"b": {}}, "c": {}} tail'
        _, vector = _scanners(data)
        assert vector.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == 24

    def test_crossing_chunk_boundaries(self):
        inner = b'{"k": [' + b"1," * 100 + b"2]}"
        data = b'{"pad": "' + b"x" * 70 + b'", "v": ' + inner + b"}"
        word, vector = _scanners(data, chunk_size=64)
        want = len(data) - 1
        assert word.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == want
        assert vector.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == want

    def test_unclosed_returns_not_found(self):
        _, vector = _scanners(b'{"a": {')
        assert vector.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == NOT_FOUND


class TestLeveledQueries:
    """The leveled G1/G5 lookups behind VectorFastForwarder (this is the
    vectorized stage-2 hot path; boundary semantics are pinned here and
    cross-checked against word mode by the equivalence suite)."""

    DATA = b'{"a": 1, "b": {"x": [9]}, "c": [10, {"d": 2}, [3], 11], "e": 4}'
    #       0123456789...
    _LBRACE, _LBRACKET = 0x7B, 0x5B

    def _vector(self, data=None, chunk_size=64):
        data = self.DATA if data is None else data
        return VectorScanner(PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=None))

    def test_leveled_obj_attr_finds_object_value(self):
        sc = self._vector()
        # from just inside the root object, next object-typed value is $.b's
        end, found = sc.leveled_obj_attr(1, self._LBRACE)
        assert self.DATA[found] == self._LBRACE
        assert found == self.DATA.index(b'{"x"')
        assert self.DATA[end] == 0x7D and end == len(self.DATA) - 1

    def test_leveled_obj_attr_skips_nested_opens(self):
        sc = self._vector()
        # array-typed value of the root: $.c's '[' — not the nested
        # '[9]' inside $.b (deeper) and not '[3]' inside $.c
        end, found = sc.leveled_obj_attr(1, self._LBRACKET)
        assert found == self.DATA.index(b'[10')

    def test_leveled_obj_attr_not_found(self):
        sc = self._vector(b'{"a": 1, "b": 2}')
        end, found = sc.leveled_obj_attr(1, self._LBRACE)
        assert found == NOT_FOUND
        assert end == 15  # the closing '}'

    def test_leveled_ary_elem_counts_commas(self):
        sc = self._vector()
        start = self.DATA.index(b'10')
        end, found, commas = sc.leveled_ary_elem(start, self._LBRACE)
        assert found == self.DATA.index(b'{"d"')
        assert commas == 1  # one top-level comma crossed before it
        end2, found2, commas2 = sc.leveled_ary_elem(start, self._LBRACKET)
        assert found2 == self.DATA.index(b'[3]')
        assert commas2 == 2

    def test_leveled_ary_elem_exhausted(self):
        sc = self._vector(b'[1, 2, 3]')
        end, found, commas = sc.leveled_ary_elem(1, self._LBRACE)
        assert found == NOT_FOUND
        assert end == 8 and commas == 2

    def test_close_at_combined_depth(self):
        sc = self._vector()
        # first depth-0 close at/after position 1 is the final '}'
        assert sc.close_at_combined_depth(0, 1) == len(self.DATA) - 1
        # inside $.c, depth-1 close is $.c's ']'
        start = self.DATA.index(b'10')
        assert sc.close_at_combined_depth(1, start) == self.DATA.index(b'], "e"')

    def test_count_commas_at_depth(self):
        sc = self._vector()
        start = self.DATA.index(b'[10') + 1
        stop = self.DATA.index(b'], "e"')
        # $.c has 3 element-separating commas; nested containers' commas
        # (none here) would sit deeper
        assert sc.count_commas_at_depth(2, start, stop) == 3

    def test_open_at_depth_bounded(self):
        sc = self._vector()
        lo = self.DATA.index(b'[10') + 1
        hi = self.DATA.index(b'], "e"')
        assert sc.open_at_depth(self._LBRACE, 3, lo, hi) == self.DATA.index(b'{"d"')
        # no object open in ["d"'s value .. hi) at that depth
        assert sc.open_at_depth(self._LBRACE, 3, self.DATA.index(b'{"d"') + 1, hi) == NOT_FOUND

    def test_prev_quote_pair(self):
        sc = self._vector()
        vstart = self.DATA.index(b'{"x"')
        opening, closing = sc.prev_quote_pair(vstart - 1)
        assert self.DATA[opening + 1 : closing] == b"b"

    def test_prev_quote_pair_cross_chunk_fallback(self):
        data = b'{"' + b"k" * 100 + b'": {"x": 1}}'
        sc = self._vector(data, chunk_size=64)
        vstart = data.index(b'{"x"')
        opening, closing = sc.prev_quote_pair(vstart - 1)
        assert data[opening + 1 : closing] == b"k" * 100

    def test_leveled_queries_cross_chunk(self):
        # force the container end and the wanted open into later chunks
        pad = b'"' + b"p" * 200 + b'", '
        data = b'{"a": ' + pad + b'"b": {"x": 1}, "c": 2}'
        sc = self._vector(data, chunk_size=64)
        end, found = sc.leveled_obj_attr(1, self._LBRACE)
        assert found == data.index(b'{"x"')
        assert end == len(data) - 1
