"""Full-matrix integration: every engine × every Table 5 query × both
input formats, all validated against the oracle.

This is the closest thing to "run the paper's whole evaluation and check
every number is *correct*" (the benchmarks check every number is
*fast*).  Sizes are small; coverage is exhaustive.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.data.datasets import DATASETS, large_record, record_stream
from repro.reference import evaluate_bytes

SIZE = 25_000
ENGINES = ("jsonski", "jsonski-word", "rds", "jpstream", "rapidjson", "simdjson", "pison", "stdlib")


@pytest.fixture(scope="module")
def inputs():
    return {
        name: (large_record(name, SIZE, seed=31), record_stream(name, SIZE, seed=31))
        for name in DATASETS
    }


def _normalize(values):
    return [json.dumps(v, sort_keys=True) for v in values]


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("dataset", list(DATASETS))
def test_large_record_matrix(engine_name, dataset, inputs):
    data, _ = inputs[dataset]
    for q in DATASETS[dataset].queries:
        expected = _normalize(evaluate_bytes(q.large, data))
        got = _normalize(repro.ENGINES[engine_name](q.large).run(data).values())
        assert got == expected, (engine_name, q.qid)


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("dataset", list(DATASETS))
def test_small_records_matrix(engine_name, dataset, inputs):
    _, stream = inputs[dataset]
    for q in DATASETS[dataset].queries:
        if q.small is None:
            continue
        expected = [
            v
            for i in range(len(stream))
            for v in _normalize(evaluate_bytes(q.small, stream.record(i)))
        ]
        got = _normalize(repro.ENGINES[engine_name](q.small).run_records(stream).values())
        assert got == expected, (engine_name, q.qid)


def test_multiquery_full_dataset_pass(inputs):
    """Both of each dataset's queries in one fused pass."""
    for dataset, spec in DATASETS.items():
        data, _ = inputs[dataset]
        queries = [q.large for q in spec.queries]
        results = repro.JsonSkiMulti(queries).run(data)
        for q, got in zip(queries, results):
            assert _normalize(got.values()) == _normalize(evaluate_bytes(q, data)), (dataset, q)


def test_stats_available_for_every_query(inputs):
    for dataset, spec in DATASETS.items():
        data, _ = inputs[dataset]
        for q in spec.queries:
            engine = repro.JsonSki(q.large, collect_stats=True)
            engine.run(data)
            assert engine.last_stats is not None
            assert 0 <= engine.last_stats.overall_ratio <= 1
