"""Width-parameterized word-primitive tests (chunk-wide integers).

The word helpers run at 64 bits in the paper-faithful scanner and at
chunk width (thousands of bits) inside the string-mask pipeline; these
tests pin both regimes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import words

WIDTHS = (2, 8, 64, 128, 256, 1024)


class TestPrefixXorWidths:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_parity_at_every_position(self, bits):
        rng = random.Random(bits)
        for _ in range(10):
            value = rng.getrandbits(bits)
            out = words.prefix_xor(value, bits=bits)
            parity = 0
            for i in range(bits):
                parity ^= (value >> i) & 1
                assert (out >> i) & 1 == parity

    def test_all_ones_alternates(self):
        out = words.prefix_xor((1 << 64) - 1)
        assert out == words.EVEN_BITS ^ 0  # 0101... pattern from LSB
        assert out & 1 == 1

    def test_result_masked_to_width(self):
        assert words.prefix_xor(0b11, bits=2) < 4


class TestEscapedPositionsWidths:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_run_parity_rule(self, bits):
        rng = random.Random(bits * 7)
        for _ in range(10):
            bs = rng.getrandbits(bits)
            carry = rng.randrange(2)
            escaped, carry_out = words.escaped_positions(bs, carry, bits)
            # Oracle: linear run scan.
            run = 1 if carry else 0
            expect = 0
            for i in range(bits):
                if (bs >> i) & 1:
                    run += 1
                else:
                    if run % 2:
                        expect |= 1 << i
                    run = 0
            assert escaped == expect
            assert carry_out == run % 2

    def test_full_width_run(self):
        for bits in (8, 64, 128):
            escaped, carry = words.escaped_positions((1 << bits) - 1, 0, bits)
            assert escaped == 0
            assert carry == bits % 2

    def test_carry_plus_full_run_flips(self):
        escaped, carry = words.escaped_positions((1 << 64) - 1, 1)
        assert carry == 1  # 64 + 1 prior = odd


class TestSelectAndMasks:
    @given(st.integers(min_value=1, max_value=(1 << 128) - 1))
    @settings(max_examples=40)
    def test_select_kth_wide(self, value):
        positions = [i for i in range(128) if value >> i & 1]
        k = len(positions)
        assert words.select_kth_bit(value, k) == positions[-1]
        assert words.select_kth_bit(value, 1) == positions[0]

    def test_interval_end_equals_highest(self):
        for value in (1, 0b1010, 1 << 63, (1 << 64) - 1):
            assert words.interval_end(value) == value.bit_length() - 1

    def test_mask_complementarity(self):
        for pos in (0, 1, 31, 63):
            assert words.mask_up_to(pos) ^ words.mask_from(pos + 1) == words.WORD_MASK if pos < 63 else True
