"""Unit tests for the query-service building blocks (no sockets).

Admission, breaker, drain, budget conversion, and the pool-side
satellites (jittered backoff, dispatch-time deadline fail-fast) are all
exercised with injected clocks and seeded RNGs — nothing here sleeps
for real or binds a port; the HTTP surface is covered by
``test_serve_http.py`` and the subprocess drain tests.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import DeadlineExceededError
from repro.parallel.real_pool import (
    check_dispatch_deadline,
    retry_delay,
    run_records_pool_resilient,
)
from repro.resilience.guards import Deadline, Limits
from repro.serve import (
    AdmissionQueue,
    BreakerOpenError,
    BudgetExpiredError,
    CircuitBreaker,
    CorpusRegistry,
    DrainCoordinator,
    QueryService,
    QueueFullError,
    ServeConfig,
)
from repro.serve.breaker import CLOSED, DEGRADED, HALF_OPEN, OPEN
from repro.serve.errors import BadRequestError, UnknownCorpusError
from repro.stream.records import RecordStream


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Satellite: Limits.remaining() and injectable Deadline clocks


class TestLimitsRemaining:
    def test_no_deadline_is_none(self):
        assert Limits().remaining() is None

    def test_remaining_tracks_injected_clock(self):
        clock = FakeClock()
        limits = Limits().with_deadline(5.0, clock)
        assert limits.remaining() == pytest.approx(5.0)
        clock.advance(2.0)
        assert limits.remaining() == pytest.approx(3.0)
        clock.advance(4.0)
        assert limits.remaining() == pytest.approx(-1.0)
        assert limits.deadline.expired()

    def test_deadline_after_uses_clock(self):
        clock = FakeClock(100.0)
        deadline = Deadline.after(1.5, clock)
        assert deadline.expires_at == pytest.approx(101.5)
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.expired()


# ---------------------------------------------------------------------------
# Satellite: full-jitter retry backoff


class TestRetryDelay:
    def test_zero_jitter_reproduces_legacy_schedule(self):
        assert retry_delay(0.05, 0, jitter=0.0) == pytest.approx(0.05)
        assert retry_delay(0.05, 3, jitter=0.0) == pytest.approx(0.4)
        assert retry_delay(0.05, 10, jitter=0.0) == pytest.approx(1.0)  # capped

    def test_full_jitter_bounds(self):
        rng = random.Random(7)
        for attempts in range(8):
            cap = min(0.05 * 2**attempts, 1.0)
            for _ in range(50):
                delay = retry_delay(0.05, attempts, jitter=1.0, rng=rng)
                assert 0.0 <= delay <= cap

    def test_partial_jitter_keeps_floor(self):
        rng = random.Random(7)
        for _ in range(50):
            delay = retry_delay(0.1, 1, jitter=0.5, rng=rng)
            assert 0.1 <= delay <= 0.2

    def test_seeded_rng_is_deterministic(self):
        a = [retry_delay(0.05, n, rng=random.Random(42)) for n in range(5)]
        b = [retry_delay(0.05, n, rng=random.Random(42)) for n in range(5)]
        assert a == b

    def test_jitter_spreads_lockstep_retries(self):
        rng = random.Random(3)
        delays = {retry_delay(0.05, 2, rng=rng) for _ in range(16)}
        assert len(delays) > 8  # deterministic schedule would give 1


# ---------------------------------------------------------------------------
# Satellite: expired deadlines fail fast at pool dispatch


class TestDispatchDeadline:
    def test_fresh_deadline_passes(self):
        check_dispatch_deadline(None)
        check_dispatch_deadline(Limits())
        check_dispatch_deadline(Limits().with_deadline(10.0))

    def test_expired_deadline_raises(self):
        clock = FakeClock()
        limits = Limits().with_deadline(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            check_dispatch_deadline(limits)

    def test_pool_dispatch_fails_fast(self):
        clock = FakeClock()
        limits = Limits().with_deadline(1.0, clock)
        clock.advance(2.0)
        stream = RecordStream.from_jsonl(b'{"a": 1}\n{"a": 2}\n')
        with pytest.raises(DeadlineExceededError):
            run_records_pool_resilient("$.a", stream, n_workers=1, limits=limits)

    def test_checkpointed_dispatch_fails_fast(self, tmp_path):
        clock = FakeClock()
        limits = Limits().with_deadline(1.0, clock)
        clock.advance(2.0)
        stream = RecordStream.from_jsonl(b'{"a": 1}\n')
        with pytest.raises(DeadlineExceededError):
            run_records_pool_resilient(
                "$.a", stream, n_workers=1, limits=limits,
                checkpoint=str(tmp_path / "run.ckpt"),
            )

    def test_live_deadline_threads_into_workers(self):
        stream = RecordStream.from_jsonl(b'{"a": 1}\n{"a": 2}\n')
        result = run_records_pool_resilient(
            "$.a", stream, n_workers=1, limits=Limits().with_deadline(30.0)
        )
        assert result.ok
        assert result.values == [[1], [2]]


# ---------------------------------------------------------------------------
# Admission queue


def run(coro):
    return asyncio.run(coro)


class TestAdmissionQueue:
    def test_admits_up_to_max_active(self):
        async def scenario():
            q = AdmissionQueue(2, 4)
            await q.acquire()
            await q.acquire()
            assert q.active == 2
            assert q.admitted == 2

        run(scenario())

    def test_sheds_when_queue_full(self):
        async def scenario():
            q = AdmissionQueue(1, 0)
            await q.acquire()
            with pytest.raises(QueueFullError) as info:
                await q.acquire()
            assert info.value.retry_after >= 1.0
            assert q.shed_full == 1

        run(scenario())

    def test_expired_budget_sheds_immediately(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            with pytest.raises(BudgetExpiredError):
                await q.acquire(budget=0.0)
            assert q.shed_expired == 1
            assert q.active == 0

        run(scenario())

    def test_budget_bounds_queue_wait(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            await q.acquire()
            with pytest.raises(BudgetExpiredError):
                await q.acquire(budget=0.01)
            assert q.shed_expired == 1
            assert len(q) == 0  # the timed-out waiter left the queue

        run(scenario())

    def test_release_grants_fifo(self):
        async def scenario():
            q = AdmissionQueue(1, 4)
            await q.acquire()
            order: list[int] = []

            async def waiter(n: int):
                await q.acquire(budget=5.0)
                order.append(n)

            tasks = [asyncio.ensure_future(waiter(n)) for n in range(3)]
            await asyncio.sleep(0)  # let waiters enqueue
            for _ in range(3):
                q.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
            assert q.active == 1  # transfers kept one slot occupied

        run(scenario())

    def test_release_with_empty_queue_frees_slot(self):
        async def scenario():
            q = AdmissionQueue(2, 2)
            await q.acquire()
            q.release()
            assert q.active == 0

        run(scenario())


# ---------------------------------------------------------------------------
# Circuit breaker


class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker(
            "c", degrade_after=2, open_after=4, cooldown=10.0, clock=clock
        )

    def test_degrades_then_opens(self):
        clock = FakeClock()
        br = self.make(clock)
        assert br.admit() == "strict"
        br.record_failure()
        assert br.state == CLOSED
        br.record_failure()
        assert br.state == DEGRADED
        assert br.admit() == "lenient"
        br.record_failure()
        br.record_failure()
        assert br.state == OPEN

    def test_open_rejects_with_cooldown(self):
        clock = FakeClock()
        br = self.make(clock)
        for _ in range(4):
            br.record_failure()
        with pytest.raises(BreakerOpenError) as info:
            br.admit()
        assert info.value.retry_after == pytest.approx(10.0)
        clock.advance(4.0)
        with pytest.raises(BreakerOpenError) as info:
            br.admit()
        assert info.value.retry_after == pytest.approx(6.0)

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        br = self.make(clock)
        for _ in range(4):
            br.record_failure()
        clock.advance(11.0)
        assert br.admit() == "lenient"
        assert br.state == HALF_OPEN
        # Second request while the probe is in flight stays rejected.
        with pytest.raises(BreakerOpenError):
            br.admit()
        br.record_success()
        assert br.state == CLOSED
        assert br.admit() == "strict"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        br = self.make(clock)
        for _ in range(4):
            br.record_failure()
        clock.advance(11.0)
        br.admit()
        br.record_failure()
        assert br.state == OPEN
        with pytest.raises(BreakerOpenError):
            br.admit()

    def test_abandon_releases_probe_without_vote(self):
        clock = FakeClock()
        br = self.make(clock)
        for _ in range(4):
            br.record_failure()
        clock.advance(11.0)
        br.admit()
        br.abandon()
        assert br.admit() == "lenient"  # probe slot free again

    def test_success_resets_consecutive_failures(self):
        br = self.make(FakeClock())
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED
        assert br.consecutive_failures == 1

    def test_transitions_counted(self):
        br = self.make(FakeClock())
        for _ in range(4):
            br.record_failure()
        assert br.transitions == {DEGRADED: 1, OPEN: 1}


# ---------------------------------------------------------------------------
# Drain coordinator


class TestDrainCoordinator:
    def test_interrupting_after_grace(self):
        clock = FakeClock()
        drain = DrainCoordinator(grace=5.0, clock=clock)
        assert not drain.interrupting
        drain.begin()
        assert drain.draining
        assert not drain.interrupting
        clock.advance(5.0)
        assert drain.interrupting

    def test_second_signal_forces_interrupt(self):
        drain = DrainCoordinator(grace=100.0, clock=FakeClock())
        drain.begin()
        assert not drain.interrupting
        drain.begin()
        assert drain.interrupting

    def test_wait_drained_tracks_inflight(self):
        async def scenario():
            drain = DrainCoordinator(grace=1.0, clock=FakeClock())
            drain.track()
            assert not await drain.wait_drained(timeout=0.01)
            drain.untrack()
            assert await drain.wait_drained(timeout=0.01)

        run(scenario())


# ---------------------------------------------------------------------------
# Budget conversion (the deadline-propagation contract)


class TestRebudget:
    def make_service(self, clock):
        return QueryService(
            CorpusRegistry(), ServeConfig(), clock=clock
        )

    def test_queue_time_is_charged_to_the_budget(self):
        clock = FakeClock()
        svc = self.make_service(clock)
        limits = svc.base_limits(5.0)  # arrives with a 5s budget
        clock.advance(2.0)  # queued for 2s
        fresh = svc.rebudget(limits)
        # The dispatched engine runs under exactly the remaining 3s.
        assert fresh.remaining() == pytest.approx(3.0)
        assert fresh.deadline is not limits.deadline  # fresh, not inherited

    def test_expired_budget_sheds(self):
        clock = FakeClock()
        svc = self.make_service(clock)
        limits = svc.base_limits(1.0)
        clock.advance(1.5)
        with pytest.raises(BudgetExpiredError):
            svc.rebudget(limits)

    def test_rebudget_preserves_other_guards(self):
        clock = FakeClock()
        svc = QueryService(
            CorpusRegistry(),
            ServeConfig(max_depth=17, max_record_bytes=1024),
            clock=clock,
        )
        fresh = svc.rebudget(svc.base_limits(5.0))
        assert fresh.max_depth == 17
        assert fresh.max_record_bytes == 1024


# ---------------------------------------------------------------------------
# Corpus registry


class TestCorpusRegistry:
    def test_register_and_get(self):
        reg = CorpusRegistry()
        corpus = reg.register("t", b'{"a": 1}\n{"a": 2}\n')
        assert corpus.records == 2
        assert reg.get("t") is corpus
        assert reg.names() == ["t"]

    def test_unknown_corpus(self):
        with pytest.raises(UnknownCorpusError):
            CorpusRegistry().get("nope")

    def test_parse_caches_paths(self):
        reg = CorpusRegistry()
        assert reg.parse("$.a[*].b") is reg.parse("$.a[*].b")

    def test_bad_query_is_bad_request(self):
        with pytest.raises(BadRequestError):
            CorpusRegistry().parse("$..[")

    def test_unknown_engine_is_bad_request(self):
        reg = CorpusRegistry()
        with pytest.raises(BadRequestError):
            reg.compile("$.a", engine="nope", limits=Limits())

    def test_compile_carries_limits(self):
        reg = CorpusRegistry()
        limits = Limits(max_depth=11)
        prepared = reg.compile("$.a", engine="jsonski", limits=limits)
        assert prepared.run(b'{"a": 5}').values() == [5]

    def test_json_corpus_shares_stage1_index(self):
        reg = CorpusRegistry()
        corpus = reg.register("doc", b'{"a": [1, 2, 3]}', format="json")
        prepared = reg.compile("$.a[*]", engine="jsonski", limits=Limits())
        first = corpus.indexed(prepared)
        second = corpus.indexed(prepared)
        assert first is second  # second query pays zero index cost
        assert prepared.run(first).values() == [1, 2, 3]

    def test_concatenated_lenient_view(self):
        reg = CorpusRegistry()
        corpus = reg.register(
            "c", b'{"a": 1}{"a": 2}', format="concatenated"
        )
        assert len(corpus.records_for("strict")) == 2
        assert len(corpus.records_for("lenient")) == 2

    def test_bad_format_rejected(self):
        with pytest.raises(BadRequestError):
            CorpusRegistry().register("x", b"{}", format="xml")
