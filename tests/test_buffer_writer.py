"""StreamBuffer utilities and the on-disk dataset cache."""

from __future__ import annotations

import pytest

from repro.data import writer
from repro.stream.buffer import StreamBuffer


class TestStreamBuffer:
    def test_str_input_encoded(self):
        buf = StreamBuffer('{"é": 1}')
        assert isinstance(buf.data, bytes)
        assert len(buf) == len('{"é": 1}'.encode())

    def test_byte_at_past_end(self):
        buf = StreamBuffer(b"{}")
        assert buf.byte_at(0) == 0x7B
        assert buf.byte_at(99) == -1

    def test_skip_ws(self):
        buf = StreamBuffer(b"  \t\n{}")
        assert buf.skip_ws(0) == 4
        assert buf.skip_ws(4) == 4
        assert StreamBuffer(b"   ").skip_ws(0) == 3  # clamps to end

    def test_rstrip_ws(self):
        buf = StreamBuffer(b"12  ,")
        assert buf.rstrip_ws(0, 4) == 2
        assert buf.rstrip_ws(0, 2) == 2

    def test_slice(self):
        buf = StreamBuffer(b"abcdef")
        assert buf.slice(1, 4) == b"bcd"

    def test_word_mode_uses_word_index(self):
        from repro.bits.index import BufferIndex
        from repro.bits.posindex import PositionBufferIndex

        assert isinstance(StreamBuffer(b"{}", mode="word").index, BufferIndex)
        assert isinstance(StreamBuffer(b"{}", mode="vector").index, PositionBufferIndex)
        assert not isinstance(StreamBuffer(b"{}", mode="word").index, PositionBufferIndex)


class TestWriterCache:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))

    def test_materialize_large_roundtrip(self):
        path = writer.materialize_large("WM", 5_000, seed=1)
        data = writer.load_large("WM", 5_000, seed=1)
        assert path.exists()
        assert data == path.read_bytes()
        assert data.startswith(b'{"it":[')

    def test_cache_reused(self):
        first = writer.materialize_large("WM", 5_000, seed=1)
        mtime = first.stat().st_mtime_ns
        second = writer.materialize_large("WM", 5_000, seed=1)
        assert second.stat().st_mtime_ns == mtime

    def test_records_roundtrip(self):
        from repro.data.datasets import record_stream

        loaded = writer.load_records("WM", 5_000, seed=2)
        fresh = record_stream("WM", 5_000, seed=2)
        assert len(loaded) == len(fresh)
        assert loaded.record(0) == fresh.record(0)
        assert loaded.record(len(loaded) - 1) == fresh.record(len(fresh) - 1)

    def test_distinct_keys_distinct_files(self):
        a = writer.materialize_large("WM", 5_000, seed=1)
        b = writer.materialize_large("WM", 5_000, seed=2)
        assert a != b
