"""Parallel substrate tests: makespan math, chunking, speculation."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.baselines import JPStream, PisonLike
from repro.data.datasets import DATASETS, large_record, record_stream
from repro.harness.experiments import ARRAY_PATHS
from repro.parallel import (
    makespan,
    parallel_records_run,
    speculative_large_run,
    split_top_level,
)
from repro.reference import evaluate_bytes


class TestMakespan:
    def test_single_worker_is_sum(self):
        res = makespan([1.0, 2.0, 3.0], 1)
        assert res.wall_seconds == pytest.approx(6.0)
        assert res.speedup == pytest.approx(1.0)

    def test_perfect_split(self):
        res = makespan([1.0] * 8, 4)
        assert res.wall_seconds == pytest.approx(2.0)
        assert res.speedup == pytest.approx(4.0)
        assert res.efficiency == pytest.approx(1.0)

    def test_dynamic_scheduling_order(self):
        # Workers grab tasks in order: [3, 1, 1, 1] on 2 workers ->
        # w0 takes 3; w1 takes 1,1,1 -> wall 3.
        res = makespan([3.0, 1.0, 1.0, 1.0], 2)
        assert res.wall_seconds == pytest.approx(3.0)

    def test_serial_section_charged(self):
        res = makespan([1.0, 1.0], 2, serial_seconds=0.5)
        assert res.wall_seconds == pytest.approx(1.5)
        assert res.speedup == pytest.approx(2.5 / 1.5)

    def test_empty_tasks(self):
        assert makespan([], 4).wall_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)
        with pytest.raises(ValueError):
            makespan([-1.0], 2)

    @given(
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), max_size=40),
        st.integers(min_value=1, max_value=16),
    )
    def test_invariants(self, tasks, workers):
        res = makespan(tasks, workers)
        total = sum(tasks)
        longest = max(tasks, default=0.0)
        # Makespan is bounded below by both the critical task and the
        # perfectly-balanced share, and above by the serial sum.
        assert res.wall_seconds >= longest - 1e-9
        assert res.wall_seconds >= total / workers - 1e-9
        assert res.wall_seconds <= total + 1e-9
        assert sum(res.worker_seconds) == pytest.approx(total)


class TestSplitTopLevel:
    def test_root_array(self):
        data = b'[{"a": 1}, 2, [3]]'
        split = split_top_level(data, "$")
        assert [data[s:e] for s, e in split.element_spans] == [b'{"a": 1}', b"2", b"[3]"]

    def test_nested_array_path(self):
        data = b'{"meta": {"x": 1}, "pd": [10, 20], "tail": 3}'
        split = split_top_level(data, "$.pd")
        assert [data[s:e] for s, e in split.element_spans] == [b"10", b"20"]

    def test_chunks_reassemble_to_valid_records(self):
        data = large_record("BB", 20_000, seed=5)
        split = split_top_level(data, "$.pd")
        chunks = split.chunk_inputs(4)
        assert sum(c.n_elements for c in chunks) == len(split.element_spans)
        for chunk in chunks:
            json.loads(chunk.data)

    def test_first_chunk_keeps_real_prefix(self):
        data = large_record("NSPL", 20_000, seed=5)
        split = split_top_level(data, "$.dt")
        chunks = split.chunk_inputs(3)
        assert chunks[0].has_real_prefix
        assert b'"mt"' in chunks[0].data
        assert b'"mt"' not in chunks[1].data

    def test_missing_attribute_raises(self):
        from repro.errors import JsonSyntaxError

        with pytest.raises(JsonSyntaxError):
            split_top_level(b'{"a": [1]}', "$.nope")


class TestRecordParallel:
    def test_matches_and_speedup(self):
        stream = record_stream("TT", 40_000, seed=9)
        engine = repro.JsonSki("$.text")
        result = parallel_records_run(engine, stream, 8)
        assert len(result.matches) == len(stream)
        assert 1.0 <= result.speedup <= 8.0 + 1e-9


@pytest.mark.parametrize("dataset_name", list(DATASETS))
class TestSpeculation:
    def test_matches_equal_serial(self, dataset_name):
        data = large_record(dataset_name, 30_000, seed=13)
        for q in DATASETS[dataset_name].queries:
            expected = [json.dumps(v, sort_keys=True) for v in evaluate_bytes(q.large, data)]
            result = speculative_large_run(
                lambda p: JPStream(p), data, q.large, ARRAY_PATHS[dataset_name], n_workers=4
            )
            got = [json.dumps(v, sort_keys=True) for v in result.matches.values()]
            assert got == expected, q.qid


class TestSpeculationPison:
    def test_pison_engine_factory(self):
        data = large_record("BB", 30_000, seed=13)
        result = speculative_large_run(
            lambda p: PisonLike(p), data, "$.pd[*].cp[1:3].id", "$.pd", n_workers=4
        )
        expected = evaluate_bytes("$.pd[*].cp[1:3].id", data)
        assert result.matches.values() == expected
        assert result.n_chunks >= 1
        assert result.wall_seconds > 0
