"""Additional CLI combinations and error paths."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture()
def doc(tmp_path):
    path = tmp_path / "d.json"
    path.write_bytes(b'{"a": [10, 20, 30], "s": "hi"}')
    return str(path)


@pytest.fixture()
def jsonl(tmp_path):
    path = tmp_path / "d.jsonl"
    path.write_bytes(b'{"a": [1]}\n{"a": [2, 3]}\n')
    return str(path)


class TestFlagCombinations:
    def test_first_with_non_jsonski_engine(self, doc):
        code, out, _ = run_cli(["$.a[*]", doc, "--first", "--engine", "jpstream"])
        assert code == 0 and out.strip() == "10"

    def test_first_and_raw(self, doc):
        code, out, _ = run_cli(["$.s", doc, "--first", "--raw"])
        assert out.strip() == '"hi"'

    def test_count_jsonl(self, jsonl):
        code, out, _ = run_cli(["$.a[*]", jsonl, "--jsonl", "--count"])
        assert code == 0 and out.strip() == "3"

    def test_paths_jsonl(self, jsonl):
        code, out, _ = run_cli(["$.a[0]", jsonl, "--jsonl", "--paths"])
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("$['a'][0]\t") for line in lines)

    def test_paths_first(self, doc):
        code, out, _ = run_cli(["$.a[*]", doc, "--paths", "--first"])
        assert out.strip().splitlines() == ["$['a'][0]\t10"]

    def test_paths_requires_jsonski(self, doc):
        code, _, err = run_cli(["$.a", doc, "--paths", "--engine", "pison"])
        assert code == 2

    def test_union_query_via_cli(self, doc):
        code, out, _ = run_cli(["$.a[0,2]", doc])
        assert out.split() == ["10", "30"]

    def test_explain_bad_query(self):
        code, _, err = run_cli(["$.[", "--explain"])
        assert code == 2 and "error" in err

    def test_error_context_printed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b'{"a": {"b": 1}; "c": 2}')
        code, _, err = run_cli(["$.*.b", str(path)])
        assert code == 4
        assert "^" in err  # the caret line

    def test_stdlib_engine_from_cli(self, doc):
        code, out, _ = run_cli(["$.a[1]", doc, "--engine", "stdlib"])
        assert code == 0 and out.strip() == "20"

    def test_exit_one_without_matches_count_mode(self, doc):
        code, out, _ = run_cli(["$.nothing", doc, "--count"])
        assert code == 1 and out.strip() == "0"
