"""End-to-end HTTP tests for the query service (real sockets, in-process).

Each test boots a :class:`QueryService` on an ephemeral port inside a
background event-loop thread and drives it with ``http.client`` — the
full wire path (request parsing, chunked NDJSON, terminator lines,
Retry-After headers) without subprocess overhead.  Process-level
lifecycle (SIGTERM drain, kill -9 resume) lives in
``test_serve_drain.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.serve import CorpusRegistry, QueryService, ServeConfig

pytestmark = pytest.mark.serve_smoke

RECORDS = b'{"a": 1, "b": "x"}\n{"a": 2, "b": "y"}\n{"c": 3}\n'
POISON = b'{"a": 1\n{"a": \n{broken\n'


class LiveService:
    """A QueryService running on its own event-loop thread."""

    def __init__(self, registry: CorpusRegistry, config: ServeConfig) -> None:
        self.registry = registry
        self.config = config
        self.service: QueryService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = QueryService(self.registry, self.config)
        await self.service.start()
        self.port = self.service.port
        self._ready.set()
        # repro: ignore[RS009] -- test harness: woken by shutdown() below.
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self) -> "LiveService":
        self._thread.start()
        assert self._ready.wait(timeout=10), "service failed to boot"
        return self

    def __exit__(self, *exc) -> None:
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    # -- cross-thread pokes -------------------------------------------

    def on_loop(self, fn) -> None:
        done = threading.Event()
        self.loop.call_soon_threadsafe(lambda: (fn(), done.set()))
        assert done.wait(timeout=5)

    # -- client helpers -----------------------------------------------

    def request(self, method: str, path: str, body: dict | None = None):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def query(self, body: dict):
        return self.request("POST", "/query", body)


def ndjson(raw: bytes) -> list[dict]:
    lines = [json.loads(line) for line in raw.splitlines() if line]
    assert lines, "empty NDJSON response"
    return lines


def make_service(**overrides) -> LiveService:
    registry = CorpusRegistry()
    registry.register("t", RECORDS)
    registry.register("poison", POISON)
    registry.register("doc", b'{"a": [10, 20]}', format="json")
    defaults = dict(port=0, client_timeout=10.0, batch_size=2)
    defaults.update(overrides)
    return LiveService(registry, ServeConfig(**defaults))


# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_health_ready_metrics_corpora(self):
        with make_service() as live:
            status, _, body = live.request("GET", "/healthz")
            assert (status, json.loads(body)["status"]) == (200, "ok")
            status, _, body = live.request("GET", "/readyz")
            assert (status, json.loads(body)["status"]) == (200, "ready")
            status, headers, body = live.request("GET", "/metrics")
            assert status == 200
            assert "text/plain" in headers["content-type"]
            assert b"repro_serve_requests" in body
            status, _, body = live.request("GET", "/corpora")
            assert status == 200
            assert json.loads(body)["t"]["records"] == 3

    def test_unknown_route_404(self):
        with make_service() as live:
            status, _, body = live.request("GET", "/nope")
            assert status == 404
            assert json.loads(body)["error"] == "not_found"

    def test_query_requires_post(self):
        with make_service() as live:
            status, _, body = live.request("GET", "/query")
            assert status == 405


class TestQuery:
    def test_streamed_ndjson_with_terminator(self):
        with make_service() as live:
            status, headers, body = live.query({"corpus": "t", "query": "$.a"})
            assert status == 200
            assert headers["content-type"] == "application/x-ndjson"
            lines = ndjson(body)
            assert lines[:-1] == [
                {"index": 0, "values": [1]},
                {"index": 1, "values": [2]},
                {"index": 2, "values": []},
            ]
            assert lines[-1] == {
                "done": True, "records": 3, "emitted": 2,
                "skipped": 0, "mode": "strict",
            }

    def test_offset_resumes_partway(self):
        with make_service() as live:
            _, _, body = live.query({"corpus": "t", "query": "$.a", "offset": 2})
            lines = ndjson(body)
            assert lines[0]["index"] == 2
            assert lines[-1]["done"] is True

    def test_single_document_corpus(self):
        with make_service() as live:
            status, _, body = live.query({"corpus": "doc", "query": "$.a[*]"})
            assert status == 200
            lines = ndjson(body)
            assert lines[0] == {"index": 0, "values": [10, 20]}
            assert lines[-1]["done"] is True

    def test_pool_dispatch(self):
        with make_service() as live:
            status, _, body = live.query(
                {"corpus": "t", "query": "$.a", "workers": 1}
            )
            assert status == 200
            lines = ndjson(body)
            assert lines[-1]["done"] is True
            assert lines[-1]["records"] == 3

    def test_unknown_corpus_404(self):
        with make_service() as live:
            status, _, body = live.query({"corpus": "x", "query": "$.a"})
            assert status == 404
            assert json.loads(body)["error"] == "unknown_corpus"

    def test_bad_query_400(self):
        with make_service() as live:
            status, _, body = live.query({"corpus": "t", "query": "$..["})
            assert status == 400
            assert json.loads(body)["error"] == "bad_request"

    def test_non_json_body_400(self):
        with make_service() as live:
            conn = HTTPConnection("127.0.0.1", live.port, timeout=10)
            try:
                conn.request("POST", "/query", body=b"not json")
                response = conn.getresponse()
                assert response.status == 400
            finally:
                conn.close()

    def test_fault_injection_disabled_by_default(self):
        with make_service() as live:
            status, _, body = live.query(
                {"corpus": "t", "query": "$.a", "inject_faults": True}
            )
            assert status == 400


class TestOverload:
    def test_queue_full_sheds_429_with_retry_after(self):
        with make_service(max_active=1, max_queued=0) as live:
            live.on_loop(lambda: setattr(live.service.admission, "active", 1))
            status, headers, body = live.query({"corpus": "t", "query": "$.a"})
            assert status == 429
            assert json.loads(body)["error"] == "queue_full"
            assert int(headers["retry-after"]) >= 1
            live.on_loop(live.service.admission.release)
            status, _, _ = live.query({"corpus": "t", "query": "$.a"})
            assert status == 200

    def test_budget_expires_while_queued(self):
        with make_service(max_active=1, max_queued=4) as live:
            live.on_loop(lambda: setattr(live.service.admission, "active", 1))
            status, headers, body = live.query(
                {"corpus": "t", "query": "$.a", "budget": 0.05}
            )
            assert status == 429
            assert json.loads(body)["error"] == "budget_expired"
            assert "retry-after" in headers
            # The shed request never reached an engine.
            live.on_loop(live.service.admission.release)
            _, _, metrics = live.request("GET", "/metrics")
            text = metrics.decode()
            assert 'reason="budget_expired"' in text

    def test_draining_rejects_new_queries(self):
        with make_service() as live:
            live.on_loop(live.service.drain.begin)
            status, _, body = live.query({"corpus": "t", "query": "$.a"})
            assert status == 503
            assert json.loads(body)["error"] == "draining"
            status, _, _ = live.request("GET", "/readyz")
            assert status == 503


class TestBreaker:
    def test_poison_corpus_degrades_then_opens(self):
        with make_service(degrade_after=1, open_after=2,
                          breaker_cooldown=30.0) as live:
            # First strict request fails -> DEGRADED.
            status, _, body = live.query({"corpus": "poison", "query": "$.a"})
            assert status == 200
            assert "error" in ndjson(body)[-1]
            # Second request runs lenient: skips every record, still fails
            # the corpus -> OPEN.
            status, _, body = live.query({"corpus": "poison", "query": "$.a"})
            assert status == 200
            lines = ndjson(body)
            assert lines[-1]["done"] is True
            assert lines[-1]["skipped"] == 3
            assert all(line.get("skipped") for line in lines[:-1])
            # Third request is rejected outright.
            status, headers, body = live.query({"corpus": "poison", "query": "$.a"})
            assert status == 503
            assert json.loads(body)["error"] == "breaker_open"
            assert "retry-after" in headers
            # A healthy corpus is unaffected (breakers are per-corpus).
            status, _, _ = live.query({"corpus": "t", "query": "$.a"})
            assert status == 200

    def test_breaker_counters_exported(self):
        with make_service(degrade_after=1, open_after=2,
                          breaker_cooldown=30.0) as live:
            for _ in range(3):
                live.query({"corpus": "poison", "query": "$.a"})
            _, _, metrics = live.request("GET", "/metrics")
            text = metrics.decode()
            assert 'state="degraded"' in text
            assert 'state="open"' in text


class TestDeadlineMidStream:
    def test_budget_exhaustion_terminates_stream_cleanly(self):
        # A budget far too small to stream the corpus: the response is
        # still a well-formed 200 with an error terminator, never a
        # truncated stream or a hang.
        registry = CorpusRegistry()
        registry.register("big", b'{"a": 1}\n' * 5000)
        config = ServeConfig(port=0, batch_size=50, client_timeout=10.0)
        with LiveService(registry, config) as live:
            status, _, body = live.query(
                {"corpus": "big", "query": "$.a", "budget": 0.0001}
            )
            lines = ndjson(body)
            if status == 200:
                last = lines[-1]
                assert last.get("error") == "DeadlineExceededError" or "done" in last
            else:
                assert status == 429  # shed before dispatch: also fine
