"""The observability layer: metrics registry, tracer, sinks, and the
unified engine API (``repro.compile`` / ``repro.ENGINES``).

The load-bearing property is at the bottom: turning any combination of
``collect_stats`` / ``metrics`` / ``tracer`` on must never change a
single match on fuzzed inputs, for every engine.
"""

from __future__ import annotations

import io
import json
import random

import pytest

import repro
from repro.engine.stats import GROUPS, FastForwardStats
from repro.errors import UnsupportedQueryError
from repro.observe import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NOOP_TRACER,
    Tracer,
    metrics_document,
    render_prometheus,
)
from tests.conftest import ALL_ENGINES

INSTRUMENTED = tuple(n for n in ALL_ENGINES if repro.ENGINES[n].instrumented)

DOC = b'{"a": [{"b": 1, "pad": "xxxxxxxxxxxxxxxxxxxxxxxxxxxx"}, {"b": 2}], "z": "tail"}'


# ---------------------------------------------------------------------------
# MetricsRegistry


class TestMetrics:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", group="G1")
        c2 = reg.counter("x", group="G1")
        assert c1 is c2
        c1.add(3)
        assert reg.value("x", group="G1") == 3
        assert reg.value("x", group="G2") == 0  # absent -> 0, not KeyError

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").add(5)
        assert reg.value("x", b="2", a="1") == 5

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").add(2)
        b.counter("n").add(3)
        b.counter("m", k="v").add(7)
        a.merge(b)
        assert a.value("n") == 5
        assert a.value("m", k="v") == 7

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("runs").add(4)
        reg.histogram("t", bounds=(0.1, 1.0)).observe(0.5)
        clone = MetricsRegistry.from_dict(reg.as_dict())
        assert clone.value("runs") == 4
        assert clone.as_dict() == reg.as_dict()

    def test_merge_dict_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("runs").add(1)
        snapshot = reg.as_dict()
        reg.merge_dict(snapshot)
        reg.merge_dict(snapshot)
        assert reg.value("runs") == 3

    def test_histogram_observe_and_merge(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(55.5)
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf overflow
        other = MetricsRegistry()
        other.histogram("lat", bounds=(1.0, 10.0)).observe(0.2)
        reg.merge(other)
        assert reg.histogram("lat", bounds=(1.0, 10.0)).count == 4

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat", bounds=(1.0,))
        b.histogram("lat", bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


# ---------------------------------------------------------------------------
# Tracer and sinks


class TestTracer:
    def test_span_and_event(self):
        tracer = Tracer()
        with tracer.span("scan", engine="jsonski") as span:
            span.set(matches=2)
        tracer.event("match_emit", start=3, end=9)
        scan, emit = tracer.spans
        assert scan.name == "scan" and scan.attrs == {"engine": "jsonski", "matches": 2}
        assert scan.duration >= 0
        assert emit.name == "match_emit" and emit.duration == 0
        assert [s.name for s in tracer.named("scan")] == ["scan"]

    def test_sink_receives_dicts(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("compile"):
            pass
        assert sink.records[0]["name"] == "compile"
        assert "duration" in sink.records[0]

    def test_noop_tracer_is_structural(self):
        assert NOOP_TRACER.enabled is False
        span = NOOP_TRACER.span("scan", bytes=1)
        with span as s:
            s.set(anything=1)
        # one shared handle, nothing retained
        assert NOOP_TRACER.span("other") is span
        assert NOOP_TRACER.named("scan") == []

    def test_jsonl_sink_writes_lines(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        tracer = Tracer(sink=sink)
        tracer.event("fastforward", group="G4", start=0, end=8)
        sink.close()
        (line,) = out.getvalue().splitlines()
        record = json.loads(line)
        assert record["name"] == "fastforward" and record["group"] == "G4"


class TestPrometheus:
    def test_text_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("ff.skipped_bytes", group="G1").add(10)
        reg.counter("ff.skipped_bytes", group="G4").add(30)
        h = reg.histogram("task_seconds", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_ff_skipped_bytes counter" in lines
        assert 'repro_ff_skipped_bytes{group="G1"} 10' in lines
        assert "# TYPE repro_task_seconds histogram" in lines
        # buckets are cumulative, end at +Inf, and agree with _count
        assert 'repro_task_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_task_seconds_bucket{le="1"} 2' in lines
        assert 'repro_task_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_task_seconds_count 3" in lines
        assert any(line.startswith("repro_task_seconds_sum ") for line in lines)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("q", text='say "hi"\\x').add(1)
        text = render_prometheus(reg)
        assert r'text="say \"hi\"\\x"' in text


# ---------------------------------------------------------------------------
# FastForwardStats as a registry view


class TestStatsView:
    def test_mapping_contract(self):
        stats = FastForwardStats()
        stats.chars["G1"] += 10
        stats.record("G4", 30)
        stats.total_length = 100
        assert stats.chars["G1"] == 10
        assert dict(stats.chars.items())["G4"] == 30
        assert stats.skipped == 40
        assert stats.ratio("G4") == pytest.approx(0.3)
        assert stats.overall_ratio == pytest.approx(0.4)
        assert stats.as_row()["Overall"] == pytest.approx(0.4)

    def test_counters_are_the_storage(self):
        reg = MetricsRegistry()
        stats = FastForwardStats(reg)
        stats.chars["G2"] += 7
        stats.total_length = 50
        assert reg.value("ff.skipped_bytes", group="G2") == 7
        assert reg.value("ff.total_bytes") == 50

    def test_merge(self):
        a, b = FastForwardStats(), FastForwardStats()
        a.record("G1", 5)
        a.total_length = 10
        b.record("G1", 5)
        b.record("G5", 2)
        b.total_length = 10
        a.merge(b)
        assert a.chars["G1"] == 10 and a.chars["G5"] == 2
        assert a.total_length == 20


# ---------------------------------------------------------------------------
# Unified engine API (repro.compile / repro.ENGINES)


class TestEngineRegistry:
    def test_compile_every_engine(self):
        for name in ALL_ENGINES + ("stdlib",):
            engine = repro.compile("$.a[*].b", engine=name)
            assert engine.run(DOC).values() == [1, 2], name

    def test_legacy_constructor_lookup_still_works(self):
        engine = repro.ENGINES["jsonski-word"]("$.a[*].b")
        assert engine.run(DOC).values() == [1, 2]

    def test_capability_flags(self):
        assert repro.ENGINES["jsonski"].streaming
        assert repro.ENGINES["jsonski"].early_terminating
        assert repro.ENGINES["pison"].preprocessing
        assert not repro.ENGINES["pison"].supports_descendant
        assert not repro.ENGINES["rds"].supports_filters
        assert repro.ENGINES["rapidjson"].supports_filters

    def test_uniform_unsupported_query_errors(self):
        cases = [
            ("pison", "$..a"),
            ("pison", "$.a[?(@.b > 1)]"),
            ("jpstream", "$.a[?(@.b > 1)]"),
            ("rds", "$.a[?(@.b > 1)]"),
        ]
        for name, query in cases:
            with pytest.raises(UnsupportedQueryError) as exc_info:
                repro.compile(query, engine=name)
            message = str(exc_info.value)
            assert f"engine {name!r} does not support" in message
            # constructing directly (old path) raises the same shape
            with pytest.raises(UnsupportedQueryError) as direct:
                repro.ENGINES[name](query)
            assert str(direct.value) == message

    def test_unknown_engine(self):
        with pytest.raises(KeyError):
            repro.compile("$.a", engine="nope")

    def test_unsupported_kwarg_is_typeerror(self):
        for name in ALL_ENGINES + ("stdlib",):
            with pytest.raises(TypeError):
                repro.compile("$.a", engine=name, bogus_option=1)

    def test_collect_stats_accepted_everywhere(self):
        for name in ALL_ENGINES + ("stdlib",):
            engine = repro.compile("$.a[*].b", engine=name, collect_stats=True)
            engine.run(DOC)
            if repro.ENGINES[name].instrumented:
                assert engine.last_stats is not None, name
                assert engine.last_stats.total_length == len(DOC)
            else:
                assert engine.last_stats is None, name

    def test_rds_stats_are_truthfully_zero_skip(self):
        engine = repro.compile("$.a[*].b", engine="rds", collect_stats=True)
        engine.run(DOC)
        assert engine.last_stats.total_length == len(DOC)
        assert engine.last_stats.skipped == 0


# ---------------------------------------------------------------------------
# Engine instrumentation


class TestEngineObservability:
    def test_jsonski_spans_and_counters(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        engine = repro.compile("$.a[*].b", engine="jsonski", metrics=reg, tracer=tracer)
        matches = engine.run(DOC)
        names = [s.name for s in tracer.spans]
        assert names[0] == "compile"
        assert "index_build" in names and "scan" in names
        assert names.count("match_emit") == len(matches) == 2
        assert any(s.name == "fastforward" for s in tracer.spans)
        assert reg.value("engine.runs") == 1
        assert reg.value("engine.matches") == 2
        assert reg.value("index.chunks_built") == 1
        assert reg.value("index.words_classified") > 0
        assert sum(reg.value("scanner.calls", op=op) for op in
                   ("find_next", "find_prev", "count_range", "kth_in_range", "pair_close")) > 0

    def test_metrics_accumulate_across_runs_but_last_stats_is_per_run(self):
        reg = MetricsRegistry()
        engine = repro.compile("$.a[*].b", engine="jsonski", metrics=reg)
        engine.run(DOC)
        first_total = engine.last_stats.total_length
        engine.run(DOC)
        assert engine.last_stats.total_length == first_total  # per-run view
        assert reg.value("ff.total_bytes") == 2 * first_total  # cumulative
        assert reg.value("engine.runs") == 2

    def test_registry_agrees_with_last_stats(self):
        reg = MetricsRegistry()
        engine = repro.compile("$.a[*].b", engine="jsonski", metrics=reg)
        engine.run(DOC)
        stats = engine.last_stats
        for g in GROUPS:
            assert reg.value("ff.skipped_bytes", group=g) == stats.chars[g]
        assert reg.value("ff.total_bytes") == stats.total_length
        doc = metrics_document(reg)
        assert doc["bytes_total"] == stats.total_length
        assert doc["ff_ratio"] == pytest.approx(stats.overall_ratio)

    def test_chunk_eviction_counter(self):
        reg = MetricsRegistry()
        big = json.dumps({"a": [{"b": i, "pad": "x" * 50} for i in range(64)]}).encode()
        engine = repro.compile("$.a[*].b", engine="jsonski", metrics=reg,
                               chunk_size=64, cache_chunks=2)
        engine.run(big)
        assert reg.value("index.chunks_built") > 2
        assert reg.value("index.chunks_evicted") > 0

    def test_early_termination_counter_and_consistency(self):
        # exists()/first() agree with run() on every engine...
        for name in ALL_ENGINES + ("stdlib",):
            engine = repro.compile("$.a[*].b", engine=name)
            assert engine.exists(DOC) is True
            assert engine.first(DOC).value() == 1
            assert engine.exists(b'{"z": 1}') is False
        # ...and the instrumented streamer provably stops early.
        reg = MetricsRegistry()
        engine = repro.compile("$.a[*].b", engine="jsonski", metrics=reg)
        assert engine.first(DOC).value() == 1
        assert reg.value("engine.early_stops") == 1
        assert reg.value("engine.bytes_consumed") < len(DOC)
        # a run() consumes to the end of the record
        reg2 = MetricsRegistry()
        engine2 = repro.compile("$.a[*].b", engine="jsonski", metrics=reg2)
        engine2.run(DOC)
        assert reg2.value("engine.bytes_consumed") == len(DOC)
        assert reg2.value("engine.early_stops") == 0

    def test_scanner_attach_is_idempotent(self):
        from repro.stream.buffer import StreamBuffer

        reg = MetricsRegistry()
        buffer = StreamBuffer(DOC)
        buffer.scanner.attach_metrics(reg)
        wrapped = buffer.scanner.find_next
        buffer.scanner.attach_metrics(reg)
        assert buffer.scanner.find_next is wrapped  # same registry: no rewrap
        from repro.bits.classify import CharClass

        buffer.scanner.find_next(CharClass.LBRACE, 0)
        assert reg.value("scanner.calls", op="find_next") == 1
        # a new registry replaces the wrappers instead of stacking them
        reg2 = MetricsRegistry()
        buffer.scanner.attach_metrics(reg2)
        buffer.scanner.find_next(CharClass.LBRACE, 0)
        assert reg.value("scanner.calls", op="find_next") == 1
        assert reg2.value("scanner.calls", op="find_next") == 1


# ---------------------------------------------------------------------------
# The differential guarantee: observability never changes results


def _fuzz_corpus(n: int = 12) -> list[tuple[bytes, str]]:
    from repro.data.synth import random_json, random_path

    rng = random.Random(20260806)
    corpus = []
    for _ in range(n):
        value = random_json(rng, max_depth=4)
        data = json.dumps(value, indent=rng.choice([None, None, 1])).encode()
        corpus.append((data, random_path(rng, allow_descendant=False)))
    return corpus


class TestObservabilityIsInert:
    def test_stats_and_tracing_never_change_matches(self):
        for data, query in _fuzz_corpus():
            for name in ALL_ENGINES:
                try:
                    plain = repro.compile(query, engine=name).run(data).values()
                except UnsupportedQueryError:
                    continue
                observed = repro.compile(query, engine=name, collect_stats=True)
                assert observed.run(data).values() == plain, (name, query)
                if repro.ENGINES[name].instrumented:
                    full = repro.compile(
                        query, engine=name,
                        metrics=MetricsRegistry(), tracer=Tracer(sink=MemorySink()),
                    )
                    assert full.run(data).values() == plain, (name, query)

    def test_multi_engine_observed(self):
        from repro.engine.multi import JsonSkiMulti

        queries = ["$.a[*].b", "$.z"]
        plain = [m.values() for m in JsonSkiMulti(queries).run(DOC)]
        reg = MetricsRegistry()
        observed = JsonSkiMulti(queries, metrics=reg, tracer=Tracer())
        assert [m.values() for m in observed.run(DOC)] == plain
        assert reg.value("engine.matches") == sum(len(v) for v in plain)


# ---------------------------------------------------------------------------
# Parallel metrics merging


class TestParallelMetrics:
    def test_simulated_parallel_merges_engine_counters(self):
        from repro.parallel import parallel_records_run
        from repro.stream.records import RecordStream

        stream = RecordStream.from_records([DOC] * 5)
        reg = MetricsRegistry()
        engine = repro.compile("$.a[*].b", engine="jsonski", collect_stats=True)
        result = parallel_records_run(engine, stream, n_workers=2, metrics=reg)
        assert len(result.matches) == 10
        assert reg.value("parallel.records") == 5
        assert reg.value("ff.total_bytes") == 5 * len(DOC)
        hist = reg.histogram("parallel.task_seconds")
        assert hist.count == 5

    def test_worker_registry_snapshots_merge(self):
        from repro.parallel.real_pool import run_records_pool
        from repro.stream.records import RecordStream

        stream = RecordStream.from_records([DOC] * 6)
        serial = run_records_pool("$.a[*].b", stream, n_workers=1)
        reg = MetricsRegistry()
        values = run_records_pool("$.a[*].b", stream, n_workers=2,
                                  batch_size=2, metrics=reg)
        assert values == serial
        # every worker's counters arrived: 6 runs, 2 matches each
        assert reg.value("engine.runs") == 6
        assert reg.value("engine.matches") == 12
        assert reg.value("ff.total_bytes") == 6 * len(DOC)
        assert reg.value("parallel.batch_records") == 6


# ---------------------------------------------------------------------------
# CLI flags


class TestCliObservability:
    def _run(self, argv, tmp_path):
        from repro.cli import main

        target = tmp_path / "in.json"
        target.write_bytes(DOC)
        out, err = io.StringIO(), io.StringIO()
        code = main([argv[0], str(target), *argv[1:]], out=out, err=err)
        return code, out.getvalue(), err.getvalue()

    def test_metrics_to_stderr_agrees_with_stats(self, tmp_path):
        code, out, err = self._run(["$.a[*].b", "--metrics"], tmp_path)
        assert code == 0
        doc = json.loads(err)
        engine = repro.compile("$.a[*].b", collect_stats=True)
        engine.run(DOC)
        assert doc["bytes_total"] == engine.last_stats.total_length
        assert doc["bytes_skipped"] == engine.last_stats.skipped
        assert doc["ff_ratio"] == pytest.approx(engine.last_stats.overall_ratio)

    def test_metrics_to_file_and_prometheus(self, tmp_path):
        json_file = tmp_path / "metrics.json"
        code, _, _ = self._run(["$.a[*].b", "--metrics", str(json_file)], tmp_path)
        assert code == 0
        doc = json.loads(json_file.read_text())
        assert doc["engine"] == "jsonski" and doc["bytes_total"] == len(DOC)
        prom_file = tmp_path / "metrics.prom"
        code, _, _ = self._run(["$.a[*].b", "--metrics", str(prom_file)], tmp_path)
        assert code == 0
        text = prom_file.read_text()
        assert "# TYPE repro_ff_total_bytes counter" in text

    def test_metrics_for_uninstrumented_engine(self, tmp_path):
        code, _, err = self._run(["$.a[*].b", "--engine", "stdlib", "--metrics"], tmp_path)
        assert code == 0
        doc = json.loads(err)
        assert doc["bytes_total"] == len(DOC)
        assert doc["bytes_skipped"] == 0  # stdlib examines everything

    def test_trace_jsonl(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        code, _, _ = self._run(["$.a[*].b", "--trace", str(trace_file)], tmp_path)
        assert code == 0
        names = [json.loads(line)["name"] for line in trace_file.read_text().splitlines()]
        assert names[0] == "compile"
        assert "scan" in names and "match_emit" in names
