"""Extra multi-query automaton guidance cases (conjunction semantics)."""

from __future__ import annotations

import pytest

from repro.query.automaton import ACCEPT, ALIVE
from repro.query.multi import MultiQueryAutomaton


class TestStatesAndAccepting:
    def test_start_state_covers_all_queries(self):
        qa = MultiQueryAutomaton(["$.a", "$.b", "$.c"])
        assert len(qa.frontier(qa.start_state)) == 3
        assert qa.status_flags(qa.start_state) == ALIVE

    def test_shared_prefix_states_merge(self):
        qa = MultiQueryAutomaton(["$.a.x", "$.a.y"])
        s = qa.on_key(qa.start_state, "a")
        assert len(qa.frontier(s)) == 2
        sx = qa.on_key(s, "x")
        assert qa.accepting(sx) == (0,)
        assert qa.status_flags(sx) == ACCEPT

    def test_simultaneous_accepts(self):
        qa = MultiQueryAutomaton(["$.a", "$.*"])
        s = qa.on_key(qa.start_state, "a")
        assert qa.accepting(s) == (0, 1)

    def test_dead_state(self):
        qa = MultiQueryAutomaton(["$.a", "$.b"])
        dead = qa.on_key(qa.start_state, "zzz")
        assert dead == qa.dead_state
        assert qa.status_flags(dead) == 0

    def test_memoized_transitions_stable(self):
        qa = MultiQueryAutomaton(["$.a[0]", "$.a[2]"])
        s = qa.on_key(qa.start_state, "a")
        assert qa.on_element(s, 0) == qa.on_element(s, 0)
        assert qa.on_element(s, 1) == qa.dead_state


class TestGuidanceConjunctionMore:
    def test_expected_type_partial_frontier(self):
        qa = MultiQueryAutomaton(["$.a.x.deep", "$.b[0]"])
        # After 'a', only query 0 is alive: inference sharp again.
        s = qa.on_key(qa.start_state, "a")
        assert qa.expected_type(s) == "object"

    def test_element_range_with_wildcard_member(self):
        qa = MultiQueryAutomaton(["$[2:4]", "$[*]"])
        assert qa.element_range(qa.start_state) == (0, None)

    def test_element_range_mixed_index_and_slice(self):
        qa = MultiQueryAutomaton(["$[1]", "$[5:9]"])
        assert qa.element_range(qa.start_state) == (1, 9)

    def test_element_range_none_when_keys_present(self):
        qa = MultiQueryAutomaton(["$[1]", "$.a"])
        # Only one index-type constraint is live; the envelope is its own.
        assert qa.element_range(qa.start_state) == (1, 2)

    def test_can_match_union(self):
        qa = MultiQueryAutomaton(["$[0]", "$.a"])
        assert qa.can_match_in_object(qa.start_state)
        assert qa.can_match_in_array(qa.start_state)

    def test_skippable_after_divergence_resolves(self):
        qa = MultiQueryAutomaton(["$.a.k1", "$.b.k2"])
        s = qa.on_key(qa.start_state, "a")  # query 1 is dead here
        assert qa.object_skippable(s)  # single concrete name remains

    def test_descendant_disables_range(self):
        qa = MultiQueryAutomaton(["$[1]", "$..x"])
        assert qa.element_range(qa.start_state) is None

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            MultiQueryAutomaton([])
