"""Observability overhead smoke checks (``pytest -m perf_smoke``).

Asserts the structural no-op design actually holds: running an engine
built with the default ``NOOP_TRACER`` and no registry must stay within
noise of the pre-observability hot path.  Timing on shared machines is
jittery, so these are deselected by default (see ``addopts`` in
pyproject.toml) and non-blocking for CI — run them deliberately::

    PYTHONPATH=src pytest -m perf_smoke -q

The thresholds are generous (the ISSUE budget is <5% on the large-record
benchmark; we allow extra slack per-test because each sample here is
short) — a real regression, like an attribute lookup or dict build per
scanned value, shows up as 2x, not 1.05x.
"""

from __future__ import annotations

import time

import pytest

from repro.data.datasets import large_record
from repro.engine import JsonSki

pytestmark = pytest.mark.perf_smoke


def _best_seconds(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_noop_observability_overhead_fig10_style():
    """bench_fig10_large_record's BB1 cell, metrics-off vs pre-layer path.

    The comparison baseline is the same engine object exercised twice —
    both runs use the default no-op tracer and no registry, one built
    plainly and one built with every observability default spelled out.
    They must be indistinguishable (within 5% + timing noise floor).
    """
    data = large_record("BB", 300_000, seed=7)
    plain = JsonSki("$.pd[*].cp[1:3].id")
    spelled = JsonSki("$.pd[*].cp[1:3].id", collect_stats=False, tracer=None, metrics=None)
    plain.run(data)  # warm caches
    spelled.run(data)
    t_plain = _best_seconds(lambda: plain.run(data))
    t_spelled = _best_seconds(lambda: spelled.run(data))
    assert t_spelled <= t_plain * 1.05 + 0.005, (t_plain, t_spelled)


def test_default_guard_overhead_under_five_percent():
    """The default depth guard is one ``is not None`` branch plus an int
    compare per container entry; against the guards-off hot path it must
    stay under the 5% resilience budget (plus noise floor)."""
    from repro.resilience import Limits

    data = large_record("BB", 300_000, seed=7)
    unguarded = JsonSki("$.pd[*].cp[1:3].id", limits=Limits.unlimited())
    guarded = JsonSki("$.pd[*].cp[1:3].id")  # DEFAULT_LIMITS: depth guard on
    unguarded.run(data)  # warm caches
    guarded.run(data)
    t_off = _best_seconds(lambda: unguarded.run(data))
    t_on = _best_seconds(lambda: guarded.run(data))
    assert t_on <= t_off * 1.05 + 0.005, (t_off, t_on)


def test_checkpoint_overhead_under_five_percent(tmp_path):
    """``checkpoint_every=1000`` must stay within the 5% resilience budget
    of the plain record loop: one staged list append per record, and one
    json+fsync+rename commit amortized over every 1000 records."""
    from repro.data.datasets import record_stream
    from repro.resilience import run_with_recovery

    stream = record_stream("TT", 300_000, seed=7)
    plain_engine = JsonSki("$.text")
    ckpt_engine = JsonSki("$.text")
    run_with_recovery(plain_engine, stream)  # warm caches
    t_plain = _best_seconds(lambda: run_with_recovery(plain_engine, stream))
    t_ckpt = _best_seconds(
        lambda: run_with_recovery(
            ckpt_engine, stream,
            checkpoint=tmp_path / "run.ckpt", checkpoint_every=1000,
        )
    )
    assert t_ckpt <= t_plain * 1.05 + 0.005, (t_plain, t_ckpt)


def test_collect_stats_overhead_is_modest():
    """collect_stats touches counters per fast-forward, not per byte;
    its cost must stay a small fraction of the scan itself."""
    data = large_record("BB", 300_000, seed=7)
    off = JsonSki("$.pd[*].cp[1:3].id")
    on = JsonSki("$.pd[*].cp[1:3].id", collect_stats=True)
    off.run(data)
    on.run(data)
    t_off = _best_seconds(lambda: off.run(data))
    t_on = _best_seconds(lambda: on.run(data))
    assert t_on <= t_off * 1.5 + 0.005, (t_off, t_on)
