"""Robustness: engines must never crash with non-library exceptions.

Arbitrary byte garbage, truncated JSON, deeply adversarial strings — the
contract is: either a :class:`repro.errors.ReproError` (diagnosed
malformation) or a successful run (the fast-forwarded-region
non-validation documented in paper Section 3.3).  Anything else
(IndexError, RecursionError on shallow input, numpy errors) is a bug.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import ReproError
from tests.conftest import ALL_ENGINES

_QUERIES = ["$.a", "$[0]", "$.a.b[1:3]", "$[*].x", "$..k", "$['a','b']"]


def _attempt(engine_name: str, query: str, data: bytes) -> None:
    if engine_name == "pison" and ".." in query:
        return
    try:
        repro.ENGINES[engine_name](query).run(data)
    except ReproError:
        pass  # diagnosed malformation is fine


class TestGarbageBytes:
    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    @given(data=st.binary(min_size=1, max_size=120))
    @settings(max_examples=30)
    def test_arbitrary_binary(self, engine_name, data):
        _attempt(engine_name, "$.a", data)

    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_metachar_soup(self, engine_name, seed):
        rng = random.Random(seed)
        data = bytes(rng.choice(b'{}[]:,"\\ab01 \t\n') for _ in range(rng.randrange(1, 200)))
        _attempt(engine_name, rng.choice(_QUERIES), data)


class TestTruncations:
    """Every prefix of a valid record must be handled gracefully."""

    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    def test_all_prefixes(self, engine_name, tweet_record):
        for cut in range(0, len(tweet_record), 7):
            _attempt(engine_name, "$.place.name", tweet_record[:cut])

    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    def test_mid_string_and_mid_escape_cuts(self, engine_name):
        base = rb'{"key\\\"x": "valu\\e", "a": [1, 2]}'
        for cut in range(1, len(base)):
            _attempt(engine_name, "$.a[1]", base[:cut])


class TestAdversarialValid:
    def test_many_empty_containers(self):
        data = b'{"a": ' + b"[" * 200 + b"]" * 200 + b"}"
        assert repro.JsonSki("$.a").run(data).values() == [eval("[" * 200 + "]" * 200)]

    def test_object_of_only_escapes(self):
        data = b'{"\\\\\\"": "\\\\", "x": 1}'
        assert repro.JsonSki("$.x").run(data).values() == [1]

    def test_long_string_of_backslash_runs(self):
        payload = b"\\\\" * 500
        data = b'{"s": "' + payload + b'", "x": 2}'
        assert repro.JsonSki("$.x").run(data).values() == [2]
        # across chunk boundaries too
        assert repro.JsonSki("$.x", chunk_size=64).run(data).values() == [2]

    def test_keys_shadowing_metachars(self):
        data = b'{"{": 1, "}": 2, "[1,2]": 3, ":": 4}'
        assert repro.JsonSki("$[':']").run(data).values() == [4]
        assert repro.JsonSki("$['[1,2]']").run(data).values() == [3]

    def test_huge_flat_array(self):
        data = b"[" + b",".join(b"%d" % i for i in range(5000)) + b"]"
        assert repro.JsonSki("$[4999]").run(data).values() == [4999]
        assert repro.JsonSki("$[4999]", chunk_size=64).run(data).values() == [4999]
