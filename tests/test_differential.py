"""The central property: every engine agrees with the reference oracle.

Hypothesis drives random JSON documents (with pathological strings,
escapes, empty containers, pretty-printing) and random JSONPath queries
through all seven engines; any divergence from the tree-walking oracle is
a bug somewhere in the stack — classification, string masking, scanning,
fast-forwarding, or matching.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.data.synth import random_json, random_path
from repro.reference import evaluate_bytes
from tests.conftest import ALL_ENGINES

_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _document(rng: random.Random) -> bytes:
    value = random_json(rng, max_depth=4)
    indent = rng.choice([None, None, None, 1, 2])
    return json.dumps(value, indent=indent, ensure_ascii=rng.random() < 0.5).encode()


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
@given(seed=_seeds)
@settings(max_examples=40)
def test_engine_matches_oracle(engine_name, seed):
    rng = random.Random(seed)
    data = _document(rng)
    query = random_path(rng, allow_descendant=engine_name != "pison")
    expected = evaluate_bytes(query, data)
    got = repro.ENGINES[engine_name](query).run(data).values()
    assert got == expected, (query, data)


@given(seed=_seeds)
@settings(max_examples=30)
def test_all_engines_agree_pairwise(seed):
    """Engines must agree not only on values but on raw matched text
    modulo whitespace trimming conventions (compare parsed values)."""
    rng = random.Random(seed)
    data = _document(rng)
    query = random_path(rng, allow_descendant=False)
    results = {name: repro.ENGINES[name](query).run(data).values() for name in ALL_ENGINES}
    baseline = results["jsonski"]
    for name, got in results.items():
        assert got == baseline, (name, query, data)


@given(seed=_seeds)
@settings(max_examples=30)
def test_chunk_boundaries_are_invisible(seed):
    """JSONSki's answers must not depend on the index chunk size."""
    rng = random.Random(seed)
    data = _document(rng)
    query = random_path(rng)
    reference = None
    for chunk_size in (64, 256, 1 << 16):
        got = repro.JsonSki(query, chunk_size=chunk_size, cache_chunks=2).run(data).values()
        if reference is None:
            reference = got
        assert got == reference, (chunk_size, query)


@given(seed=_seeds)
@settings(max_examples=25)
def test_match_text_reparses_to_value(seed):
    """Every raw match slice must itself be valid JSON equal to the
    oracle value (the streaming output contract)."""
    rng = random.Random(seed)
    data = _document(rng)
    query = random_path(rng, allow_descendant=False)
    expected = evaluate_bytes(query, data)
    matches = repro.JsonSki(query).run(data)
    assert [json.loads(m.text) for m in matches] == expected
