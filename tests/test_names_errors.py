"""Name decoding and error-hierarchy units."""

from __future__ import annotations

import pytest

import repro
from repro.engine.names import decode_name
from repro.errors import (
    JsonPathSyntaxError,
    JsonSyntaxError,
    RecordTooLargeError,
    ReproError,
    StreamExhaustedError,
    UnsupportedQueryError,
)


class TestDecodeName:
    def test_plain(self):
        assert decode_name(b"place") == "place"

    def test_utf8(self):
        assert decode_name("名前".encode()) == "名前"

    def test_escapes(self):
        assert decode_name(rb"a\"b") == 'a"b'
        assert decode_name(rb"tab\tnl\n") == "tab\tnl\n"
        assert decode_name(rb"A") == "A"
        assert decode_name(rb"back\\slash") == "back\\slash"

    def test_malformed_escape_is_lenient(self):
        # Never raises: the literal text becomes the (unmatchable) name.
        assert decode_name(rb"\q") == "\\q"

    def test_invalid_utf8_is_lenient(self):
        name = decode_name(b"\xff\xfe")
        assert isinstance(name, str)

    def test_consistency_across_engines(self):
        # The same weird name must match through every engine.
        doc = '{"\\u0061b": 1}'.encode()
        for engine_name in ("jsonski", "rds", "jpstream", "rapidjson", "simdjson", "pison"):
            assert repro.ENGINES[engine_name]("$.ab").run(doc).values() == [1], engine_name


class TestErrorHierarchy:
    def test_subclassing(self):
        assert issubclass(JsonPathSyntaxError, ReproError)
        assert issubclass(JsonSyntaxError, ReproError)
        assert issubclass(StreamExhaustedError, JsonSyntaxError)
        assert issubclass(UnsupportedQueryError, ReproError)
        assert issubclass(RecordTooLargeError, ReproError)

    def test_json_error_message_carries_position(self):
        err = JsonSyntaxError("boom", 17)
        assert err.position == 17
        assert "byte 17" in str(err)

    def test_path_error_carries_expression(self):
        err = JsonPathSyntaxError("bad", "$..", 3)
        assert err.expression == "$.."
        assert err.position == 3

    def test_single_except_catches_everything(self):
        for factory in (
            lambda: repro.JsonSki("$["),
            lambda: repro.JsonSki("$.a").run(b""),
            lambda: repro.PisonLike("$..a"),
            lambda: repro.SimdJsonLike("$.a", max_record_bytes=1).run(b"123"),
        ):
            with pytest.raises(ReproError):
                factory()
