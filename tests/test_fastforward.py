"""Fast-forward function tests (Table 1 semantics, crafted + property)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.synth import random_json
from repro.engine.fastforward import FastForwarder
from repro.errors import StreamExhaustedError
from repro.stream.buffer import StreamBuffer


def ff_for(data: bytes, mode: str = "vector", chunk_size: int = 64) -> FastForwarder:
    return FastForwarder(StreamBuffer(data, mode=mode, chunk_size=chunk_size))


def _matching_close(data: bytes, pos: int) -> int:
    """Oracle: the matching closer of the container opening at ``pos``."""
    opener = data[pos : pos + 1]
    closer = b"}" if opener == b"{" else b"]"
    depth = 0
    in_string = False
    i = pos
    while i < len(data):
        c = data[i : i + 1]
        if in_string:
            if c == b"\\":
                i += 2
                continue
            if c == b'"':
                in_string = False
        elif c == b'"':
            in_string = True
        elif c == opener:
            depth += 1
        elif c == closer:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    raise AssertionError("unbalanced input")


class TestGoOverObj:
    def test_flat(self):
        data = b'{"a": 1} tail'
        assert ff_for(data).go_over_obj(0) == 8

    def test_nested(self):
        data = b'{"a": {"b": {"c": 1}}, "d": {}} rest'
        assert ff_for(data).go_over_obj(0) == data.index(b" rest")

    def test_braces_in_strings_ignored(self):
        data = b'{"a": "}}}{{{", "b": 1}x'
        assert ff_for(data).go_over_obj(0) == len(data) - 1

    def test_requires_brace(self):
        with pytest.raises(StreamExhaustedError):
            ff_for(b"[1]").go_over_obj(0)

    def test_unclosed_raises(self):
        with pytest.raises(StreamExhaustedError):
            ff_for(b'{"a": {"b": 1}').go_over_obj(0)

    @given(st.randoms(use_true_random=False))
    def test_matches_oracle_on_random_objects(self, rng):
        value = {"k": random_json(rng, 3)}
        data = json.dumps(value).encode() + b" tail"
        for mode in ("vector", "word"):
            assert ff_for(data, mode=mode).go_over_obj(0) == _matching_close(data, 0) + 1


class TestGoOverAry:
    def test_nested(self):
        data = b'[[1, [2]], [3]] rest'
        assert ff_for(data).go_over_ary(0) == 15

    def test_crossing_chunks(self):
        data = b"[" + b"8," * 200 + b"9]!"
        for mode in ("vector", "word"):
            assert ff_for(data, mode=mode, chunk_size=64).go_over_ary(0) == len(data) - 1

    @given(st.randoms(use_true_random=False))
    def test_matches_oracle(self, rng):
        data = json.dumps([random_json(rng, 3), 1]).encode()
        assert ff_for(data).go_over_ary(0) == _matching_close(data, 0) + 1


class TestGoToEnds:
    def test_go_to_obj_end_from_inside(self):
        data = b'{"a": 1, "b": {"c": 2}} t'
        # From just after the first attribute's comma.
        assert ff_for(data).go_to_obj_end(9) == 23

    def test_go_to_ary_end_from_inside(self):
        data = b'[1, [2, 3], 4] t'
        assert ff_for(data).go_to_ary_end(3) == 14


class TestGoOverPri:
    def test_attr_delimited_by_comma(self):
        data = b'{"a": 123, "b": 2}'
        assert ff_for(data).go_over_pri(6, in_object=True) == 9

    def test_last_attr_delimited_by_brace(self):
        data = b'{"a": 123}'
        assert ff_for(data).go_over_pri(6, in_object=True) == 9

    def test_string_value_with_pseudo_delimiters(self):
        data = b'{"a": "x,y}", "b": 2}'
        assert ff_for(data).go_over_pri(6, in_object=True) == 12

    def test_element(self):
        data = b"[12, 34]"
        assert ff_for(data).go_over_pri(1, in_object=False) == 3
        assert ff_for(data).go_over_pri(5, in_object=False) == 7

    def test_exhausted(self):
        with pytest.raises(StreamExhaustedError):
            ff_for(b"[123").go_over_pri(1, in_object=False)


class TestGoToObjAttr:
    def test_skips_primitive_run_to_object(self):
        data = b'{"a": 1, "b": "s", "place": {"name": 1}}'
        ended, name_start, name_raw, vpos = ff_for(data).go_to_obj_attr(1, "object")
        assert not ended
        assert name_raw == b"place"
        assert data[vpos : vpos + 1] == b"{"
        assert data[name_start : name_start + 1] == b'"'

    def test_skips_wrong_structured_type(self):
        data = b'{"a": [1, {"x": 2}], "b": {"y": 3}}'
        ended, _, name_raw, vpos = ff_for(data).go_to_obj_attr(1, "object")
        assert not ended and name_raw == b"b"

    def test_wants_array(self):
        data = b'{"a": {"x": [9]}, "b": [1]}'
        ended, _, name_raw, vpos = ff_for(data).go_to_obj_attr(1, "array")
        assert not ended and name_raw == b"b"
        assert data[vpos : vpos + 1] == b"["

    def test_object_ends_without_match(self):
        data = b'{"a": 1, "b": 2} tail'
        ended, end_pos, _, _ = ff_for(data).go_to_obj_attr(1, "object")
        assert ended and end_pos == 16

    def test_name_with_escaped_quote(self):
        data = b'{"we\\"ird": {"x": 1}}'
        ended, _, name_raw, _ = ff_for(data).go_to_obj_attr(1, "object")
        assert not ended and name_raw == b'we\\"ird'


class TestGoToAryElem:
    def test_counts_commas(self):
        data = b'[1, "s", [2], {"x": 1}] t'
        ended, pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert not ended
        assert data[pos : pos + 1] == b"{"
        assert commas == 3

    def test_skips_wrong_container_counting(self):
        data = b"[[1], [2], {}]"
        ended, pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert not ended and commas == 2

    def test_array_ends(self):
        data = b"[1, 2, 3]!"
        ended, end_pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert ended and end_pos == 9 and commas == 2


class TestGoOverElems:
    def test_skips_exactly_k(self):
        data = b'[10, [20], {"x": 1}, 40, 50]'
        ended, pos, skipped = ff_for(data).go_over_elems(1, 3)
        assert not ended and skipped == 3
        assert data[pos : pos + 2] == b"40"

    def test_array_ends_early(self):
        data = b"[1, 2]"
        ended, end_pos, skipped = ff_for(data).go_over_elems(1, 5)
        assert ended and end_pos == 6 and skipped == 1

    def test_nested_values_skipped_whole(self):
        data = b"[[1, 2, 3], 9]"
        ended, pos, skipped = ff_for(data).go_over_elems(1, 1)
        assert not ended and data[pos : pos + 1] == b"9"


class TestModesAgree:
    @given(st.randoms(use_true_random=False))
    def test_word_and_vector_identical(self, rng):
        value = [random_json(rng, 3) for _ in range(3)]
        data = json.dumps({"w": value, "z": 1}).encode()
        a = ff_for(data, mode="vector", chunk_size=64)
        b = ff_for(data, mode="word", chunk_size=64)
        assert a.go_over_obj(0) == b.go_over_obj(0)
        assert a.go_to_obj_attr(1, "array") == b.go_to_obj_attr(1, "array")
