"""Checkpoint subsystem: store crash-consistency, suspend/resume, runs.

The contract under test is behavioural: *interrupt anywhere, resume,
and the output is byte-identical to never having been interrupted* —
including a real SIGKILL between checkpoints (subprocess test) and
suspension in the middle of one large record with the state carried
across a process boundary as JSON.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.checkpoint import (
    CheckpointStore,
    EngineState,
    JsonlEmitter,
    SuspendableRun,
    kill_resume_differential,
)
from repro.errors import CheckpointError, UnsupportedQueryError
from repro.resilience import run_with_recovery
from repro.stream.records import RecordStream

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH", "")) + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# CheckpointStore: atomic generations, corruption fallback, pruning.
# ---------------------------------------------------------------------------


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save({"cursor": 3, "emitted": 7})
        record = store.load_latest()
        assert record.payload == {"cursor": 3, "emitted": 7}
        assert record.generation == 1

    def test_generations_accumulate_and_prune(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt", keep=3)
        for cursor in range(5):
            store.save({"cursor": cursor})
        gens = store.generations()
        assert [g for g, _ in gens] == [3, 4, 5]  # oldest two pruned
        assert store.load_latest().payload["cursor"] == 4

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save({"cursor": 1})
        newest = store.save({"cursor": 2})
        # Bit-rot the newest generation's payload; the CRC must catch it.
        raw = bytearray(newest.read_bytes())
        raw[-2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        record = store.load_latest()
        assert record.payload["cursor"] == 1
        assert len(store.skipped) == 1 and "CRC32" in store.skipped[0][1]

    def test_truncated_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save({"cursor": 1})
        newest = store.save({"cursor": 2})
        newest.write_bytes(newest.read_bytes()[:-5])
        assert store.load_latest().payload["cursor"] == 1
        assert "truncated" in store.skipped[0][1]

    def test_wrong_version_is_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        path = store.save({"cursor": 1})
        raw = path.read_bytes()
        header, _, body = raw.partition(b"\n")
        doc = json.loads(header)
        doc["version"] = 999
        path.write_bytes(json.dumps(doc).encode() + b"\n" + body)
        assert store.load_latest() is None
        assert "version" in store.skipped[0][1]

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save({"cursor": 1})
        assert not list(tmp_path.glob("*.tmp"))

    def test_clear_removes_all_generations(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save({"a": 1})
        store.save({"a": 2})
        store.clear()
        assert store.generations() == [] and store.load_latest() is None

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path / "run.ckpt", keep=0)


# ---------------------------------------------------------------------------
# JsonlEmitter: the exactly-once output channel.
# ---------------------------------------------------------------------------


class TestJsonlEmitter:
    def test_emits_compact_json_lines(self):
        sink = io.BytesIO()
        emitter = JsonlEmitter(sink)
        emitter.emit(0, [1, "x"])
        emitter.emit(1, [{"a": 2}])
        assert sink.getvalue() == b'1\n"x"\n{"a":2}\n'

    def test_truncate_rewinds_seekable(self):
        sink = io.BytesIO()
        emitter = JsonlEmitter(sink)
        emitter.emit(0, [1])
        offset = emitter.tell()
        emitter.emit(1, [2])
        emitter.truncate_to(offset)
        emitter.emit(2, [3])
        assert sink.getvalue().splitlines() == [b"1", b"3"]

    def test_truncate_non_seekable_raises(self):
        class Pipe:
            def write(self, data):
                return len(data)

            def flush(self):
                pass

            def seekable(self):
                return False

        emitter = JsonlEmitter(Pipe())
        assert emitter.tell() is None
        with pytest.raises(CheckpointError):
            emitter.truncate_to(0)


# ---------------------------------------------------------------------------
# Record-granularity checkpointing: stop/resume equality, exactly-once.
# ---------------------------------------------------------------------------


def _stream(n=20, bad_at=(4, 11)):
    records = [
        b'{"a": ' if i in bad_at else json.dumps({"a": {"b": i}}).encode()
        for i in range(n)
    ]
    return RecordStream.from_records(records)


class TestCheckpointedRecovery:
    def test_uninterrupted_matches_plain_recovery(self, tmp_path):
        stream = _stream()
        plain = run_with_recovery(repro.JsonSki("$.a.b"), stream)
        ckpt = run_with_recovery(
            repro.JsonSki("$.a.b"), stream, checkpoint=tmp_path / "run.ckpt"
        )
        assert ckpt.values == plain.values
        assert [f.index for f in ckpt.failures] == [f.index for f in plain.failures]
        assert ckpt.checkpoint is not None and ckpt.checkpoint.completed

    @pytest.mark.parametrize("interrupt_at", [0, 1, 5, 11, 19, 500])
    def test_kill_resume_equality_recovery(self, tmp_path, interrupt_at):
        report = kill_resume_differential(
            "$.a.b", _stream(), interrupt_at=interrupt_at, workdir=tmp_path
        )
        assert report.ok, report.describe()

    def test_resume_skips_completed_prefix(self, tmp_path):
        stream = _stream()
        ck = tmp_path / "run.ckpt"
        first = run_with_recovery(
            repro.JsonSki("$.a.b"), stream, checkpoint=ck, checkpoint_every=2,
            stop=lambda cursor: cursor >= 7,
        )
        assert first.checkpoint.interrupted and not first.checkpoint.completed
        second = run_with_recovery(
            repro.JsonSki("$.a.b"), stream, checkpoint=ck, checkpoint_every=2,
            resume=True,
        )
        assert second.checkpoint.resumed_at == 7
        assert second.checkpoint.completed
        plain = run_with_recovery(repro.JsonSki("$.a.b"), stream)
        assert [f.index for f in second.failures] == [f.index for f in plain.failures]

    def test_resume_against_different_stream_rejected(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        run_with_recovery(
            repro.JsonSki("$.a.b"), _stream(), checkpoint=ck,
            stop=lambda cursor: cursor >= 3,
        )
        other = RecordStream.from_records(
            [json.dumps({"a": {"b": i}}).encode() for i in range(50)]
        )
        with pytest.raises(CheckpointError):
            run_with_recovery(
                repro.JsonSki("$.a.b"), other, checkpoint=ck, resume=True
            )

    def test_resume_with_different_query_rejected(self, tmp_path):
        ck = tmp_path / "run.ckpt"
        stream = _stream()
        run_with_recovery(
            repro.JsonSki("$.a.b"), stream, checkpoint=ck,
            stop=lambda cursor: cursor >= 3,
        )
        with pytest.raises(CheckpointError):
            run_with_recovery(
                repro.JsonSki("$.a[*]"), stream, checkpoint=ck, resume=True
            )

    def test_sigkill_between_checkpoints_subprocess(self, tmp_path):
        """A real SIGKILL mid-run: the resumed output is byte-identical.

        The child checkpoints every 3 records into ``tmp_path`` and kills
        itself — no handlers, no cleanup — at record 8, after the cursor-6
        commit but before the next one.  The parent resumes from the files
        alone and compares against an uninterrupted reference.
        """
        payload_path = tmp_path / "stream.bin"
        offsets_path = tmp_path / "offsets.json"
        out_path = tmp_path / "out.jsonl"
        ck = tmp_path / "run.ckpt"
        stream = _stream()
        payload_path.write_bytes(stream.payload)
        offsets_path.write_text(json.dumps([[int(a), int(b)] for a, b in stream.offsets]))

        child = textwrap.dedent(
            f"""
            import json, os, signal
            import repro
            from repro.checkpoint import JsonlEmitter
            from repro.stream.records import RecordStream

            payload = open({str(payload_path)!r}, "rb").read()
            offsets = json.load(open({str(offsets_path)!r}))
            stream = RecordStream(payload, offsets)

            def suicide(cursor):
                if cursor >= 8:
                    os.kill(os.getpid(), signal.SIGKILL)
                return False

            with open({str(out_path)!r}, "wb") as handle:
                repro.run_with_recovery(
                    repro.JsonSki("$.a.b"), stream,
                    checkpoint={str(ck)!r}, checkpoint_every=3,
                    emitter=JsonlEmitter(handle), stop=suicide,
                )
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=_env(), capture_output=True, timeout=60
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # Only committed output may exist (exactly-once: staged values die
        # with the process; nothing past the last commit point is visible).
        committed = out_path.read_bytes()
        assert 0 < committed.count(b"\n") <= 8

        resumed = run_with_recovery(
            repro.JsonSki("$.a.b"), _stream(), checkpoint=ck, checkpoint_every=3,
            resume=True, emitter=JsonlEmitter(open(out_path, "r+b")),
        )
        assert resumed.checkpoint.completed and resumed.checkpoint.resumed_at >= 6

        ref_sink = io.BytesIO()
        run_with_recovery(
            repro.JsonSki("$.a.b"), _stream(),
            checkpoint=tmp_path / "ref.ckpt", emitter=JsonlEmitter(ref_sink),
        )
        assert out_path.read_bytes() == ref_sink.getvalue()


class TestCheckpointedPool:
    def test_kill_resume_equality_pool(self, tmp_path):
        report = kill_resume_differential(
            "$.a.b", _stream(), interrupt_at=7, workdir=tmp_path,
            runner="pool", checkpoint_every=4, n_workers=2,
        )
        assert report.ok, report.describe()

    def test_isolated_trial_clears_innocent_record(self):
        """The bisection endgame must not quarantine a record whose only
        sin was sharing a batch with a genuine worker-killer."""
        from repro.parallel.real_pool import _Batch, _isolated_trial

        harvested = {}
        ok = _isolated_trial(
            "$.a", _Batch(5, [b'{"a": 42}']), 30.0, False,
            lambda start, out: harvested.update({start: out}),
        )
        assert ok and harvested[5] == [("ok", [42])]

    def test_isolated_trial_convicts_worker_killer(self):
        from repro.parallel.real_pool import _Batch, _isolated_trial
        from repro.resilience.faults import CRASH_SENTINEL

        ok = _isolated_trial(
            "$.a", _Batch(0, [CRASH_SENTINEL]), 30.0, True, lambda *a: None
        )
        assert not ok


# ---------------------------------------------------------------------------
# Intra-record suspension: EngineState across a process boundary.
# ---------------------------------------------------------------------------

LARGE_QUERY = "$.pd[*].cp[1:3].id"


def _large_record(size=120_000):
    from repro.data.datasets import large_record

    return large_record("BB", size, seed=7)


class TestSuspendableRun:
    def test_stepwise_equals_oneshot(self):
        data = _large_record(40_000)
        expected = repro.JsonSki(LARGE_QUERY).run(data).values()
        run = SuspendableRun.begin(LARGE_QUERY, data)
        steps = 0
        while not run.step(max_bytes=1500):
            steps += 1
        assert run.matches().values() == expected
        assert steps > 5  # the budget genuinely suspended the scan

    def test_state_json_roundtrip_every_step(self):
        data = _large_record(30_000)
        expected = repro.JsonSki(LARGE_QUERY).run(data).values()
        run = SuspendableRun.begin(LARGE_QUERY, data, chunk_size=4096, cache_chunks=2)
        while not run.step(max_bytes=1000):
            wire = json.dumps(run.suspend().to_dict())
            run = SuspendableRun.resume(data, EngineState.from_dict(json.loads(wire)))
        assert run.matches().values() == expected

    def test_resume_in_fresh_process(self, tmp_path):
        """Suspend mid-record, finish the scan in a separate interpreter."""
        data = _large_record(60_000)
        expected = [(m.start, m.end) for m in repro.JsonSki(LARGE_QUERY).run(data)]

        run = SuspendableRun.begin(LARGE_QUERY, data)
        done = run.step(max_bytes=len(data) // 3)  # stop ~1/3 through
        assert not done
        data_path = tmp_path / "record.json"
        state_path = tmp_path / "state.json"
        data_path.write_bytes(data)
        state_path.write_text(json.dumps(run.suspend().to_dict()))

        child = textwrap.dedent(
            f"""
            import json
            from repro.checkpoint import EngineState, SuspendableRun

            data = open({str(data_path)!r}, "rb").read()
            state = EngineState.from_dict(json.load(open({str(state_path)!r})))
            run = SuspendableRun.resume(data, state)
            run.run_to_completion()
            print(json.dumps(run.match_offsets()))
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=_env(), capture_output=True, timeout=60
        )
        assert proc.returncode == 0, proc.stderr.decode()
        got = [tuple(pair) for pair in json.loads(proc.stdout)]
        assert got == list(expected)

    def test_word_mode_suspends_too(self):
        data = _large_record(20_000)
        expected = repro.JsonSki(LARGE_QUERY, mode="word").run(data).values()
        run = SuspendableRun.begin(LARGE_QUERY, data, mode="word")
        while not run.step(max_bytes=2000):
            run = SuspendableRun.resume(
                data, EngineState.from_dict(run.suspend().to_dict())
            )
        assert run.matches().values() == expected

    def test_resume_rejects_changed_input(self):
        data = _large_record(20_000)
        run = SuspendableRun.begin(LARGE_QUERY, data)
        run.step(max_bytes=500)
        state = run.suspend()
        tampered = data[:-10] + b"0123456789"
        with pytest.raises(CheckpointError):
            SuspendableRun.resume(tampered, state)

    def test_state_version_mismatch_rejected(self):
        data = _large_record(20_000)
        run = SuspendableRun.begin(LARGE_QUERY, data)
        run.step(max_bytes=500)
        doc = run.suspend().to_dict()
        doc["version"] = 999
        with pytest.raises(CheckpointError):
            EngineState.from_dict(doc)

    def test_filter_queries_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            SuspendableRun.begin("$.a[?(@.x > 1)]", b'{"a": []}')

    def test_run_to_completion_without_budget(self):
        data = b'{"a": {"b": [1, 2, 3]}}'
        run = SuspendableRun.begin("$.a.b[*]", data)
        run.run_to_completion()
        assert run.matches().values() == [1, 2, 3]
