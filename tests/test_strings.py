"""Tests for the string masks (escaped characters + in-string parity)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import CharClass, classify_chunk, packed_to_int
from repro.bits.strings import (
    INITIAL_CARRY,
    StringCarry,
    compute_string_mask,
    naive_string_mask,
)


def _masks_for(chunk: bytes, carry: StringCarry = INITIAL_CARRY):
    raw = classify_chunk(chunk)
    n_bits = len(raw[CharClass.QUOTE]) * 8
    return compute_string_mask(
        packed_to_int(raw[CharClass.QUOTE]),
        packed_to_int(raw[CharClass.BACKSLASH]),
        n_bits,
        carry,
        length=len(chunk),
    )


class TestBasicMasks:
    def test_simple_string(self):
        #         0123456789
        chunk = b'a "bc" d'
        res = _masks_for(chunk)
        # opening quote at 2 inside, body 3-4 inside, closing quote 5 outside
        assert [i for i in range(len(chunk)) if res.in_string >> i & 1] == [2, 3, 4]
        assert [i for i in range(len(chunk)) if res.unescaped_quotes >> i & 1] == [2, 5]

    def test_escaped_quote_does_not_close(self):
        chunk = b'"a\\"b"x'
        res = _masks_for(chunk)
        assert [i for i in range(len(chunk)) if res.unescaped_quotes >> i & 1] == [0, 5]
        assert res.in_string >> 6 & 1 == 0  # x outside

    def test_double_backslash_then_quote_closes(self):
        chunk = b'"a\\\\"x'
        res = _masks_for(chunk)
        assert [i for i in range(len(chunk)) if res.unescaped_quotes >> i & 1] == [0, 4]
        assert res.in_string >> 5 & 1 == 0

    def test_metachars_inside_string_are_masked(self):
        chunk = b'{"k": "{[,:]}"}'
        res = _masks_for(chunk)
        for i, c in enumerate(chunk):
            if c in b"{}[]:," and 7 <= i <= 12:
                assert res.in_string >> i & 1, f"pos {i} should be in-string"

    def test_unterminated_string_carries_state(self):
        res = _masks_for(b'{"open')
        assert res.carry_out.in_string == 1

    def test_trailing_backslash_carries_escape(self):
        res = _masks_for(b'"abc\\')
        assert res.carry_out.escape == 1

    def test_empty_chunk(self):
        res = _masks_for(b"")
        assert res.in_string == 0
        assert res.carry_out == INITIAL_CARRY

    def test_empty_chunk_preserves_carry(self):
        carry = StringCarry(1, 1)
        res = _masks_for(b"", carry)
        assert res.carry_out == carry


_ALPHABET = st.sampled_from(list(b'ab"\\ {}[]:,'))


class TestAgainstNaiveOracle:
    @given(st.lists(_ALPHABET, max_size=200), st.booleans(), st.booleans())
    def test_single_chunk(self, byte_list, esc, ins):
        chunk = bytes(byte_list)
        carry = StringCarry(int(esc), int(ins))
        got = _masks_for(chunk, carry)
        want = naive_string_mask(chunk, carry)
        mask = (1 << len(chunk)) - 1
        assert got.in_string & mask == want.in_string
        assert got.unescaped_quotes & mask == want.unescaped_quotes
        assert got.escaped & mask == want.escaped
        assert got.carry_out == want.carry_out

    @given(st.lists(_ALPHABET, min_size=1, max_size=300))
    def test_chunked_equals_whole(self, byte_list):
        """Splitting at arbitrary 64-char chunks must not change anything."""
        data = bytes(byte_list)
        whole = naive_string_mask(data)
        carry = INITIAL_CARRY
        reconstructed = 0
        for start in range(0, len(data), 64):
            part = data[start : start + 64]
            res = _masks_for(part, carry)
            reconstructed |= (res.in_string & ((1 << len(part)) - 1)) << start
            carry = res.carry_out
        assert reconstructed == whole.in_string
        assert carry == whole.carry_out
