"""The durable storage substrate (repro.storage).

Covers the atomic-write protocol (including crash-at-every-boundary
via FaultFS), stale-tmp sweeps, quarantine, advisory locking with
stale-lock steal, single-flight build_once, the CheckpointStore and
sidecar migrations, cross-process writer races, and the telemetry
surfaced through CLI --metrics and serve /metrics.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.checkpoint.store import CheckpointStore
from repro.engine import sidecar
from repro.engine.prepared import IndexedBuffer
from repro.errors import IndexSidecarError, LockTimeoutError, StorageError
from repro.observe.metrics import MetricsRegistry
from repro.storage import (
    FaultFS,
    FaultPlan,
    SimulatedCrash,
    advisory_lock,
    atomic_write,
    build_once,
    fault_plans,
    lock_path_for,
    quarantine,
    storage_metrics,
    sweep_stale_tmp,
    trace,
)

CHUNK = 1 << 12


def tmp_residue(directory: Path) -> list[str]:
    return sorted(
        e.name for e in directory.iterdir()
        if ".tmp" in e.name and e.name.rpartition(".tmp")[2].isdigit()
    )


# ---------------------------------------------------------------------------
# atomic_write


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        target = atomic_write(tmp_path / "a" / "x.bin", b"payload")
        assert target.read_bytes() == b"payload"
        assert tmp_residue(target.parent) == []

    def test_accepts_chunk_iterable(self, tmp_path):
        target = atomic_write(tmp_path / "x.bin", [b"ab", b"cd", b"ef"])
        assert target.read_bytes() == b"abcdef"

    def test_protocol_order(self, tmp_path):
        fs = trace(lambda fs: atomic_write(tmp_path / "x.bin", b"data", fs=fs))
        ops = [op for op, _ in fs.ops]
        assert ops == ["open", "write", "fsync", "replace", "fsync_dir"]
        # fsync happens on the tmp file, before the rename publishes it.
        assert ".tmp" in fs.ops[2][1]
        assert fs.ops[3][1].endswith("x.bin")

    def test_failed_write_cleans_tmp_and_preserves_old(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write(target, b"old")
        registry = MetricsRegistry()
        for step in (1, 2, 3, 4):  # open, write, fsync, replace
            with pytest.raises(OSError):
                atomic_write(target, b"new-content",
                             fs=FaultFS(FaultPlan(step=step)), metrics=registry)
            assert target.read_bytes() == b"old"
            assert tmp_residue(tmp_path) == []
        assert registry.value("storage.save_errors", kind="file") == 4

    def test_torn_write_cleans_tmp(self, tmp_path):
        target = tmp_path / "x.bin"
        atomic_write(target, b"old")
        plan = FaultPlan(step=2, torn=True)
        with pytest.raises(OSError):
            atomic_write(target, b"0123456789", fs=FaultFS(plan))
        assert target.read_bytes() == b"old"
        assert tmp_residue(tmp_path) == []

    def test_crash_at_every_boundary_old_or_new(self, tmp_path):
        target = tmp_path / "x.bin"
        fs = trace(lambda fs: atomic_write(target, b"old", fs=fs))
        for plan in fault_plans(fs.ops):
            if plan.mode != "crash":
                continue
            shim = FaultFS(plan)
            with pytest.raises(SimulatedCrash):
                atomic_write(target, b"new", fs=shim)
                raise SimulatedCrash("plan did not fire")  # pragma: no cover
            assert target.read_bytes() in (b"old", b"new")
            # The frozen disk may hold an orphan tmp; the sweep reclaims it.
            sweep_stale_tmp(tmp_path, max_age=0.0)
            assert tmp_residue(tmp_path) == []
            atomic_write(target, b"old")  # reset for the next plan

    def test_post_crash_fs_is_frozen(self, tmp_path):
        shim = FaultFS(FaultPlan(step=2, mode="crash"))
        with pytest.raises(SimulatedCrash):
            atomic_write(tmp_path / "x.bin", b"data", fs=shim)
        assert shim.crashed
        with pytest.raises(SimulatedCrash):
            shim.unlink(tmp_path / "anything")

    def test_success_counter_labeled(self, tmp_path):
        registry = MetricsRegistry()
        atomic_write(tmp_path / "x", b"d", metrics=registry, kind="sidecar")
        assert registry.value("storage.saves", kind="sidecar") == 1


# ---------------------------------------------------------------------------
# sweep_stale_tmp


class TestSweep:
    def test_removes_only_old_tmp_files(self, tmp_path):
        old_tmp = tmp_path / "x.bin.tmp123"
        old_tmp.write_bytes(b"orphan")
        os.utime(old_tmp, (time.time() - 7200, time.time() - 7200))
        fresh_tmp = tmp_path / "y.bin.tmp456"
        fresh_tmp.write_bytes(b"live writer")
        bystander = tmp_path / "z.bin"
        bystander.write_bytes(b"data")
        lockfile = tmp_path / "x.bin.lock"
        lockfile.write_bytes(b"")

        removed = sweep_stale_tmp(tmp_path)
        assert removed == [old_tmp]
        assert not old_tmp.exists()
        assert fresh_tmp.exists() and bystander.exists() and lockfile.exists()

    def test_age_zero_takes_everything(self, tmp_path):
        (tmp_path / "a.tmp1").write_bytes(b"x")
        assert len(sweep_stale_tmp(tmp_path, max_age=0.0)) == 1

    def test_missing_directory_is_noop(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "absent") == []

    def test_counter(self, tmp_path):
        (tmp_path / "a.tmp1").write_bytes(b"x")
        registry = MetricsRegistry()
        sweep_stale_tmp(tmp_path, max_age=0.0, metrics=registry)
        assert registry.value("storage.tmp_swept") == 1


# ---------------------------------------------------------------------------
# quarantine


class TestQuarantine:
    def test_renames_and_writes_reason(self, tmp_path):
        bad = tmp_path / "x.ridx"
        bad.write_bytes(b"garbage")
        registry = MetricsRegistry()
        dest = quarantine(bad, "checksum", detail="crc mismatch", metrics=registry)
        assert dest == tmp_path / "x.ridx.corrupt"
        assert not bad.exists()
        assert dest.read_bytes() == b"garbage"
        note = dest.with_name(dest.name + ".reason").read_text()
        assert "reason: checksum" in note and "crc mismatch" in note
        assert registry.value("storage.quarantines", reason="checksum") == 1

    def test_missing_file_returns_none(self, tmp_path):
        registry = MetricsRegistry()
        assert quarantine(tmp_path / "gone", "magic", metrics=registry) is None
        assert registry.value("storage.quarantines", reason="magic") == 0


# ---------------------------------------------------------------------------
# advisory_lock


class TestAdvisoryLock:
    def test_exclusive_within_process(self, tmp_path):
        target = tmp_path / "artifact"
        registry = MetricsRegistry()
        with advisory_lock(target):
            with pytest.raises(LockTimeoutError):
                with advisory_lock(target, timeout=0.2, poll_interval=0.02,
                                   metrics=registry):
                    pass  # pragma: no cover
        assert registry.value("storage.lock_waits") == 1
        assert registry.value("storage.lock_timeouts") == 1
        assert isinstance(LockTimeoutError("x"), StorageError)

    def test_reacquirable_after_release(self, tmp_path):
        target = tmp_path / "artifact"
        with advisory_lock(target):
            pass
        with advisory_lock(target, timeout=1.0) as handle:
            assert not handle.waited

    def test_waiter_proceeds_when_holder_releases(self, tmp_path):
        target = tmp_path / "artifact"
        order: list[str] = []
        release = threading.Event()

        def holder():
            with advisory_lock(target):
                order.append("held")
                release.wait(5.0)
            order.append("released")

        thread = threading.Thread(target=holder)
        thread.start()
        while "held" not in order:
            time.sleep(0.01)
        release.set()
        with advisory_lock(target, timeout=5.0):
            order.append("acquired")
        thread.join()
        assert order.index("released") < order.index("acquired")

    def test_fallback_steals_dead_holder(self, tmp_path):
        target = tmp_path / "artifact"
        lock_file = lock_path_for(target)
        # A pid that provably exited: a finished child process.
        lock_file.write_text(json.dumps(
            {"pid": _dead_pid(), "acquired_at": time.time()}
        ))
        registry = MetricsRegistry()
        with advisory_lock(target, timeout=2.0, metrics=registry,
                           _force_fallback=True) as handle:
            assert handle.stole
        assert registry.value("storage.lock_steals") == 1
        # Fallback locks release by unlinking their file.
        assert not lock_file.exists()

    def test_fallback_respects_live_holder(self, tmp_path):
        target = tmp_path / "artifact"
        lock_path_for(target).write_text(json.dumps(
            {"pid": os.getpid(), "acquired_at": time.time()}
        ))
        with pytest.raises(LockTimeoutError):
            with advisory_lock(target, timeout=0.2, poll_interval=0.02,
                               stale_after=3600.0, _force_fallback=True):
                pass  # pragma: no cover

    def test_fallback_steals_ancient_metadata(self, tmp_path):
        target = tmp_path / "artifact"
        lock_path_for(target).write_text(json.dumps(
            {"pid": os.getpid(), "acquired_at": time.time() - 7200}
        ))
        with advisory_lock(target, timeout=2.0, stale_after=60.0,
                           _force_fallback=True) as handle:
            assert handle.stole

    def test_crashed_fs_skips_release(self, tmp_path):
        """A simulated kill inside the critical section must not run the
        release path (a dead process cannot) — flock dies with the fd."""
        target = tmp_path / "artifact"
        shim = FaultFS(FaultPlan(step=1, mode="crash"))
        with pytest.raises(SimulatedCrash):
            with advisory_lock(target, fs=shim):
                shim.unlink(target)  # journaled op 1 -> simulated kill
        # The crash closed the tracked lock fd: a fresh locker succeeds.
        with advisory_lock(target, timeout=1.0):
            pass


def _dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# ---------------------------------------------------------------------------
# build_once


class TestBuildOnce:
    def test_builds_when_missing(self, tmp_path):
        target = tmp_path / "artifact"
        registry = MetricsRegistry()
        result = build_once(
            target,
            lambda: target.read_bytes() if target.exists() else None,
            lambda: atomic_write(target, b"built").read_bytes(),
            metrics=registry,
        )
        assert result.built and result.value == b"built"
        assert registry.value("storage.rebuilds") == 1

    def test_loads_without_lock_when_present(self, tmp_path):
        target = tmp_path / "artifact"
        atomic_write(target, b"cached")
        result = build_once(
            target,
            lambda: target.read_bytes() if target.exists() else None,
            lambda: pytest.fail("must not build"),
        )
        assert not result.built and result.value == b"cached"

    def test_single_flight_across_threads(self, tmp_path):
        target = tmp_path / "artifact"
        registry = MetricsRegistry()
        builds: list[int] = []
        results: list[bytes] = []

        def load():
            return target.read_bytes() if target.exists() else None

        def build():
            builds.append(1)
            time.sleep(0.2)  # hold the lock long enough for overlap
            return atomic_write(target, b"built").read_bytes()

        def worker():
            outcome = build_once(target, load, build,
                                 lock_timeout=10.0, metrics=registry)
            results.append(outcome.value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert builds == [1]
        assert results == [b"built"] * 4
        assert registry.value("storage.rebuilds") == 1
        assert registry.value("storage.single_flight_reuse") == 3

    def test_lock_timeout_degrades_to_local_build(self, tmp_path):
        target = tmp_path / "artifact"
        with advisory_lock(target):
            result = build_once(
                target,
                lambda: None,
                lambda: b"local",
                lock_timeout=0.2,
            )
        assert result.built and result.value == b"local"


# ---------------------------------------------------------------------------
# CheckpointStore on the substrate (satellite: crash at every boundary)


class TestCheckpointCrashBoundaries:
    OLD = {"cursor": 1}
    NEW = {"cursor": 2}

    def _seed(self, tmp_path: Path) -> Path:
        base = tmp_path / "run.ckpt"
        CheckpointStore(base, keep=1).save(self.OLD)
        return base

    def test_fail_and_crash_at_every_boundary(self, tmp_path):
        base = self._seed(tmp_path / "trace")
        traced = trace(lambda fs: CheckpointStore(base, keep=1, fs=fs).save(self.NEW))
        assert [op for op, _ in traced.ops] == [
            "open", "write", "fsync", "replace", "fsync_dir", "unlink",
        ]
        for index, plan in enumerate(fault_plans(traced.ops)):
            root = tmp_path / f"case{index}"
            root.mkdir()
            case_base = self._seed(root)
            try:
                CheckpointStore(case_base, keep=1, fs=FaultFS(plan)).save(self.NEW)
            except (OSError, SimulatedCrash):
                pass
            record = CheckpointStore(case_base, keep=1).load_latest()
            assert record is not None, plan
            assert record.payload in (self.OLD, self.NEW), (plan, record.payload)
            sweep_stale_tmp(root, max_age=0.0)
            assert tmp_residue(root) == [], plan
            # Recovery: the next saver wins cleanly.
            CheckpointStore(case_base, keep=1).save({"cursor": 3})
            after = CheckpointStore(case_base, keep=1).load_latest()
            assert after is not None and after.payload == {"cursor": 3}

    def test_generations_ignore_pid_tmp_names(self, tmp_path):
        base = self._seed(tmp_path)
        (tmp_path / "run.ckpt.g000002.tmp999").write_bytes(b"torn")
        store = CheckpointStore(base, keep=3)
        assert [gen for gen, _ in store.generations()] == [1]
        record = store.load_latest()
        assert record is not None and record.payload == self.OLD


# ---------------------------------------------------------------------------
# sidecar writers on the substrate


class TestSidecarStorage:
    DATA = b'{"rows":[' + b",".join(b'{"id":%d}' % i for i in range(50)) + b"]}"

    def test_failed_save_leaves_no_tmp(self, tmp_path):
        """The PR-8 leak: a failed save_buffer stranded its .tmpPID."""
        indexed = IndexedBuffer(self.DATA, chunk_size=CHUNK).warm()
        path = tmp_path / "x.ridx"
        for step in (1, 2, 3, 4):
            with pytest.raises(OSError):
                sidecar.save_buffer(indexed.buffer, path, fs=FaultFS(FaultPlan(step=step)))
            assert tmp_residue(tmp_path) == []
            assert not path.exists()

    def test_save_fsyncs_parent_directory(self, tmp_path):
        """The PR-8 gap: the sidecar writer never fsync'd the directory."""
        fs = trace(lambda fs: sidecar.save_buffer(
            IndexedBuffer(self.DATA, chunk_size=CHUNK).warm().buffer,
            tmp_path / "x.ridx", fs=fs,
        ))
        assert [op for op, _ in fs.ops] == [
            "open", "write", "write", "fsync", "replace", "fsync_dir",
        ]
        assert fs.ops[-1][1] == str(tmp_path)

    def test_load_or_build_quarantines_corrupt_sidecar(self, tmp_path):
        registry = MetricsRegistry()
        IndexedBuffer.load_or_build(self.DATA, tmp_path, chunk_size=CHUNK)
        path = sidecar.sidecar_path(tmp_path, self.DATA, CHUNK)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))

        rebuilt = IndexedBuffer.load_or_build(
            self.DATA, tmp_path, chunk_size=CHUNK, metrics=registry
        )
        assert rebuilt.buffer.data == self.DATA
        assert registry.value("storage.sidecar_rejects", reason="checksum") == 1
        assert registry.value("storage.quarantines", reason="checksum") == 1
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()
        assert b"checksum" in corrupt.with_name(corrupt.name + ".reason").read_bytes()
        # The fresh sidecar is valid again and loads cold.
        warm = IndexedBuffer.load_or_build(self.DATA, tmp_path, chunk_size=CHUNK)
        assert warm.buffer.index.chunks_built == 0

    def test_load_or_build_missing_counts_but_no_quarantine(self, tmp_path):
        registry = MetricsRegistry()
        IndexedBuffer.load_or_build(self.DATA, tmp_path, chunk_size=CHUNK,
                                    metrics=registry)
        # load_once probes once before and once under the lock, so a cold
        # start records the "missing" reject at least once (here: twice).
        assert registry.value("storage.sidecar_rejects", reason="missing") >= 1
        assert registry.value("storage.rebuilds") == 1
        assert not list(tmp_path.glob("*.corrupt"))

    def test_load_or_build_sweeps_stale_tmp_on_open(self, tmp_path):
        orphan = tmp_path / "idx-dead.ridx.tmp999"
        orphan.write_bytes(b"orphan")
        os.utime(orphan, (time.time() - 7200, time.time() - 7200))
        IndexedBuffer.load_or_build(self.DATA, tmp_path, chunk_size=CHUNK)
        assert not orphan.exists()

    def test_sidecar_reason_codes(self, tmp_path):
        path = tmp_path / "x.ridx"
        with pytest.raises(IndexSidecarError) as exc_info:
            sidecar.load_buffer(path, self.DATA)
        assert exc_info.value.reason == "missing"
        path.write_bytes(b"not a sidecar at all")
        with pytest.raises(IndexSidecarError) as exc_info:
            sidecar.load_buffer(path, self.DATA)
        assert exc_info.value.reason == "magic"

    def test_concurrent_processes_save_same_path(self, tmp_path):
        """Satellite: two processes writing one sidecar path never
        collide on tmp names, and the survivor is fully valid."""
        script = (
            "import sys\n"
            "from repro.engine.prepared import IndexedBuffer\n"
            "data = open(sys.argv[1], 'rb').read()\n"
            "indexed = IndexedBuffer(data, chunk_size=%d).warm()\n"
            "for _ in range(5):\n"
            "    indexed.save(sys.argv[2])\n"
            "print('done')\n"
        ) % CHUNK
        data_file = tmp_path / "corpus.json"
        data_file.write_bytes(self.DATA)
        path = tmp_path / "cache" / "x.ridx"
        env = dict(os.environ, PYTHONPATH=str(Path(__file__).parent.parent / "src"))
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(data_file), str(path)],
                             env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for _ in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode(errors="replace")
            assert out.strip() == b"done"
        loaded = sidecar.load_buffer(path, self.DATA, chunk_size=CHUNK)
        assert loaded.data == self.DATA
        assert tmp_residue(path.parent) == []


# ---------------------------------------------------------------------------
# telemetry surfacing (CLI --metrics, serve /metrics)


class TestTelemetrySurfacing:
    def test_cli_metrics_include_sidecar_rejects(self, tmp_path):
        from repro.cli import main
        from repro.storage import reset_storage_metrics

        reset_storage_metrics()
        doc = tmp_path / "doc.json"
        doc.write_text('{"a": [1, 2, 3]}')
        cache = tmp_path / "cache"
        out_path = tmp_path / "metrics.json"
        # Cold start: the "missing" reject and the rebuild must be visible.
        code = main(["$.a[*]", str(doc), "--index-cache", str(cache),
                     "--metrics", str(out_path)],
                    out=io.StringIO(), err=io.StringIO())
        assert code == 0
        rendered = out_path.read_text()
        assert "storage.sidecar_rejects" in rendered
        assert "storage.saves" in rendered
        reset_storage_metrics()

    def test_serve_merged_metrics_include_storage(self):
        from repro.serve.app import QueryService
        from repro.serve.registry import CorpusRegistry
        from repro.storage import reset_storage_metrics

        registry = reset_storage_metrics()
        registry.counter("storage.quarantines", reason="checksum").add(2)
        service = QueryService(CorpusRegistry())
        merged = service.merged_metrics()
        assert merged.value("storage.quarantines", reason="checksum") == 2
        reset_storage_metrics()
