"""RecordStream (small-records format) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.records import RecordStream


class TestFromRecords:
    def test_offsets_and_access(self):
        stream = RecordStream.from_records([b'{"a":1}', b"[2]", b"3"])
        assert len(stream) == 3
        assert stream.record(0) == b'{"a":1}'
        assert stream.record(2) == b"3"
        assert list(stream) == [b'{"a":1}', b"[2]", b"3"]

    def test_payload_contains_separators(self):
        stream = RecordStream.from_records([b"1", b"2"], separator=b"\n")
        assert stream.payload == b"1\n2\n"
        assert stream.size == 4

    def test_empty(self):
        stream = RecordStream.from_records([])
        assert len(stream) == 0


class TestFromJsonl:
    def test_basic(self):
        stream = RecordStream.from_jsonl(b'{"a":1}\n\n{"a":2}\n')
        assert len(stream) == 2
        assert stream.record(1) == b'{"a":2}'

    def test_no_trailing_newline(self):
        stream = RecordStream.from_jsonl(b"[1]\n[2]")
        assert list(stream) == [b"[1]", b"[2]"]

    def test_blank_lines_skipped(self):
        assert len(RecordStream.from_jsonl(b"\n  \n[1]\n \n")) == 1


class TestPartitions:
    def test_partitions_cover_all_records(self):
        stream = RecordStream.from_records([b"%d" % i for i in range(10)])
        parts = stream.partitions(3)
        recovered = [rec for part in parts for rec in part]
        assert recovered == list(stream)

    def test_share_payload(self):
        stream = RecordStream.from_records([b"1", b"2"])
        parts = stream.partitions(2)
        assert all(p.payload is stream.payload for p in parts)

    def test_more_parts_than_records(self):
        stream = RecordStream.from_records([b"1", b"2"])
        parts = stream.partitions(5)
        assert sum(len(p) for p in parts) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            RecordStream.from_records([b"1"]).partitions(0)


class TestOffsetsArray:
    def test_custom_offsets(self):
        payload = b"xx[1]yy[2]"
        stream = RecordStream(payload, np.array([[2, 5], [7, 10]]))
        assert stream.record(0) == b"[1]"
        assert stream.record(1) == b"[2]"
