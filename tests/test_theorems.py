"""The paper's formal claims, tested as stated (Lemma 4.2, Theorem 4.3).

Figure 9's running example is reconstructed and the counting-based
pairing claims are checked both on it and on arbitrary generated
records, against a depth-scan oracle.
"""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.posindex import PositionBufferIndex
from repro.bits.scanner import VectorScanner
from repro.data.synth import random_json


def _structural(data: bytes, char: bytes) -> list[int]:
    """String-aware positions of a metacharacter (test oracle)."""
    out = []
    in_string = False
    i = 0
    while i < len(data):
        c = data[i : i + 1]
        if in_string:
            if c == b"\\":
                i += 2
                continue
            if c == b'"':
                in_string = False
        elif c == b'"':
            in_string = True
        elif c == char:
            out.append(i)
        i += 1
    return out


class TestLemma42:
    """Between two closest '{'s inside a nested object, the number of
    '}'s is strictly less than the unpaired-'{' count (Lemma 4.2)."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_on_random_objects(self, seed):
        rng = random.Random(seed)
        value = {"k": random_json(rng, 4, object_bias=0.6)}
        data = json.dumps(value).encode()
        opens = _structural(data, b"{")
        closes = set(_structural(data, b"}"))
        # For every adjacent pair of opens strictly inside the record:
        for a, b in zip(opens, opens[1:]):
            n_close = sum(1 for p in closes if a < p < b)
            # unpaired opens before and including a:
            depth = 0
            for p in opens:
                if p > a:
                    break
                depth += 1
            depth -= sum(1 for p in closes if p < a)
            n_open_unpaired = depth
            # The object enclosing position `a` has not ended before `b`
            # iff n_close < n_open_unpaired — Lemma 4.2 asserts exactly
            # the strict inequality whenever both opens are in one object.
            balance = 0
            enclosed = True
            for i in range(a, b):
                if i in set(opens):
                    balance += 1
                elif i in closes:
                    balance -= 1
                    if balance <= 0:
                        enclosed = False
            if enclosed:
                assert n_close < n_open_unpaired


class TestTheorem43:
    """If the interval between two closest '{'s holds >= n_open closers,
    the object ends there, at the n_open-th closer (Theorem 4.3)."""

    def test_figure9_style_example(self):
        # A reconstruction of Figure 9: nested object with the counts the
        # paper walks through.
        data = b'{"a": {"b": {"c": 1}, "d": 2}, "e": 3} {"next": 1}'
        scanner = VectorScanner(PositionBufferIndex(data, chunk_size=64, cache_chunks=None))
        # From inside the root (pos 1), one unpaired '{': the root ends at 37.
        assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == 37
        # From inside "a"'s object (pos 7): it ends at 28.
        assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 7, 1) == 28

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_pairing_equals_depth_scan(self, seed):
        rng = random.Random(seed)
        data = json.dumps(random_json(rng, 4, object_bias=0.6)).encode()
        if not data.startswith(b"{"):
            data = b'{"w": ' + data + b"}"
        scanner = VectorScanner(PositionBufferIndex(data, chunk_size=64, cache_chunks=None))
        opens = _structural(data, b"{")
        closes = _structural(data, b"}")
        close_set = set(closes)
        open_set = set(opens)
        for start in opens[: 10]:
            # Oracle: matching close of the object opening at `start`.
            depth = 0
            want = None
            for i in range(start, len(data)):
                if i in open_set:
                    depth += 1
                elif i in close_set:
                    depth -= 1
                    if depth == 0:
                        want = i
                        break
            got = scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, start + 1, 1)
            assert got == want, (start, data)
