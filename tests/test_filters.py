"""Filter predicate tests: grammar, semantics, engines, properties."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.engine.filtered import SlicePredicate
from repro.jsonpath.parser import parse_path
from repro.reference import evaluate_bytes

DOC = b"""{
  "items": [
    {"name": "cheap",  "price": 5,  "stock": 0,  "tags": ["x"]},
    {"name": "mid",    "price": 15, "stock": 3},
    {"name": "dear",   "price": 25, "stock": 9,  "tags": []},
    {"name": "odd",    "price": "n/a"},
    42,
    {"price": 30}
  ]
}"""

FILTER_ENGINES = ("jsonski", "rapidjson", "simdjson", "stdlib")


class TestGrammar:
    @pytest.mark.parametrize("text", [
        "$[?(@.a)]",
        "$[?(@.a.b[0] == 'x')]",
        "$.items[?(@.price > 10)].name",
        "$[?(@.a && @.b || !(@.c))]",
        "$[?(@ == 3)]",
        "$[?(@.x != null)]",
        "$[?(@.y <= -2.5)]",
    ])
    def test_roundtrip(self, text):
        path = parse_path(text)
        assert path.has_filter
        assert parse_path(path.unparse()) == path

    @pytest.mark.parametrize("bad", [
        "$[?]",
        "$[?(]",
        "$[?()]",
        "$[?(@.a ==)]",
        "$[?(price > 1)]",     # missing '@'
        "$[?(@.a &| @.b)]",
        "$[?(@.a > 'x)]",      # unterminated string literal
    ])
    def test_rejected(self, bad):
        with pytest.raises(repro.JsonPathSyntaxError):
            parse_path(bad)

    def test_spaces_tolerated(self):
        assert parse_path("$[?( @.a  ==  3 )]").unparse() == "$[?(@.a == 3)]"


class TestSemantics:
    def test_comparisons(self):
        cases = {
            "$.items[?(@.price > 10)].name": ["mid", "dear"],
            "$.items[?(@.price >= 25)].name": ["dear"],
            "$.items[?(@.price < 10)].name": ["cheap"],
            "$.items[?(@.price == 15)].name": ["mid"],
            "$.items[?(@.name == 'odd')].price": ["n/a"],
            "$.items[?(@.price != 5)].name": ["mid", "dear", "odd"],
        }
        for query, expected in cases.items():
            assert repro.JsonSki(query).run(DOC).values() == expected, query
            assert evaluate_bytes(query, DOC) == expected, query

    def test_ordering_requires_comparable_types(self):
        # "n/a" > 10 is false (not an error); 42 has no .price.
        got = repro.JsonSki("$.items[?(@.price > 0)].name").run(DOC).values()
        assert got == ["cheap", "mid", "dear"]

    def test_existence_and_not(self):
        assert repro.JsonSki("$.items[?(@.tags)].name").run(DOC).values() == ["cheap", "dear"]
        got = repro.JsonSki("$.items[?(!(@.name))]").run(DOC).values()
        assert got == [42, {"price": 30}]

    def test_boolean_operators(self):
        q = "$.items[?(@.price > 10 && @.stock > 5)].name"
        assert repro.JsonSki(q).run(DOC).values() == ["dear"]
        q = "$.items[?(@.price < 10 || @.stock == 3)].name"
        assert repro.JsonSki(q).run(DOC).values() == ["cheap", "mid"]

    def test_bool_is_not_number(self):
        doc = b'[{"v": true}, {"v": 1}]'
        assert repro.JsonSki("$[?(@.v == 1)]").run(doc).values() == [{"v": 1}]
        assert repro.JsonSki("$[?(@.v == true)]").run(doc).values() == [{"v": True}]

    def test_whole_element_comparison(self):
        doc = b"[1, 2, 3, 2]"
        assert repro.JsonSki("$[?(@ == 2)]").run(doc).values() == [2, 2]

    def test_filter_on_non_array_matches_nothing(self):
        assert repro.JsonSki("$.items[?(@.x)]").run(b'{"items": {"x": 1}}').values() == []

    def test_nested_filters(self):
        doc = b'{"a": [{"b": [{"v": 1}, {"v": 5}]}, {"b": [{"v": 9}]}, {"c": 1}]}'
        q = "$.a[?(@.b)].b[?(@.v > 2)].v"
        assert repro.JsonSki(q).run(doc).values() == [5, 9]
        assert evaluate_bytes(q, doc) == [5, 9]

    def test_match_offsets_are_global(self):
        matches = repro.JsonSki("$.items[?(@.price > 20)].name").run(DOC)
        for match in matches:
            assert DOC[match.start : match.end] == match.text


class TestEngineSupport:
    @pytest.mark.parametrize("engine_name", FILTER_ENGINES)
    def test_supporting_engines_agree(self, engine_name):
        query = "$.items[?(@.price > 10 && @.name)].name"
        expected = evaluate_bytes(query, DOC)
        assert repro.ENGINES[engine_name](query).run(DOC).values() == expected

    @pytest.mark.parametrize("engine_name", ["rds", "jpstream", "pison"])
    def test_unsupporting_engines_reject_cleanly(self, engine_name):
        with pytest.raises(repro.UnsupportedQueryError):
            repro.ENGINES[engine_name]("$[?(@.a)]")

    def test_multiquery_rejects(self):
        with pytest.raises(repro.UnsupportedQueryError):
            repro.JsonSkiMulti(["$.a", "$[?(@.b)]"])

    def test_first_and_exists_work(self):
        engine = repro.JsonSki("$.items[?(@.price > 10)].name")
        assert engine.first(DOC).value() == "mid"
        assert engine.exists(DOC)
        assert not repro.JsonSki("$.items[?(@.price > 999)]").exists(DOC)

    def test_paths_and_trace_rejected(self):
        engine = repro.JsonSki("$[?(@.a)]")
        with pytest.raises(repro.UnsupportedQueryError):
            engine.run_with_paths(b"[]")
        with pytest.raises(repro.UnsupportedQueryError):
            engine.trace_run(b"[]")


class TestSlicePredicate:
    def test_subengine_resolution(self):
        expr = parse_path("$[?(@.a.b == 7)]").steps[0].expr
        predicate = SlicePredicate(expr)
        assert predicate.matches(b'{"a": {"b": 7}}')
        assert not predicate.matches(b'{"a": {"b": 8}}')
        assert not predicate.matches(b'{"a": 1}')
        assert not predicate.matches(b"3")

    def test_empty_relpath(self):
        expr = parse_path("$[?(@ > 5)]").steps[0].expr
        predicate = SlicePredicate(expr)
        assert predicate.matches(b"6") and not predicate.matches(b"5")


class TestDifferential:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_streaming_equals_oracle(self, seed):
        rng = random.Random(seed)
        items = []
        for i in range(rng.randrange(0, 12)):
            kind = rng.random()
            if kind < 0.6:
                item = {}
                if rng.random() < 0.8:
                    item["p"] = rng.choice([rng.randrange(-5, 30), "str", True, None])
                if rng.random() < 0.5:
                    item["q"] = rng.randrange(0, 10)
                items.append(item)
            else:
                items.append(rng.choice([1, "x", [1, 2], None]))
        doc = json.dumps({"it": items}).encode()
        query = rng.choice([
            "$.it[?(@.p > 3)]",
            "$.it[?(@.p == 'str')]",
            "$.it[?(@.p != null)]",
            "$.it[?(@.p)]",
            "$.it[?(@.p && @.q)]",
            "$.it[?(@.p < 10 || @.q >= 5)].q",
            "$.it[?(!(@.q))]",
        ])
        expected = evaluate_bytes(query, doc)
        for name in FILTER_ENGINES:
            assert repro.ENGINES[name](query).run(doc).values() == expected, (name, query, doc)
