"""Engine-API conveniences: count/exists/first, files, traces, paths."""

from __future__ import annotations

import pytest

import repro
from repro.reference import evaluate_bytes, evaluate_with_paths
from tests.conftest import ALL_ENGINES

DOC = b'{"a": [ {"b": 1}, {"b": 2} ], "c": {"b": 3}}'


class TestDerivedOperations:
    @pytest.mark.parametrize("engine_name", ALL_ENGINES)
    def test_count_exists_first(self, engine_name):
        engine = repro.ENGINES[engine_name]("$.a[*].b")
        assert engine.count(DOC) == 2
        assert engine.exists(DOC)
        assert engine.first(DOC).value() == 1
        missing = repro.ENGINES[engine_name]("$.zzz")
        assert missing.count(DOC) == 0
        assert not missing.exists(DOC)
        assert missing.first(DOC) is None

    def test_jsonski_first_is_early_terminating(self):
        # A match early in a long stream: tracing shows the engine never
        # walked the tail.
        tail = b",".join(b'{"x": %d}' % i for i in range(2000))
        data = b'{"hit": 1, "rest": [' + tail + b"]}"
        engine = repro.JsonSki("$.hit")
        match = engine.first(data)
        assert match.value() == 1
        assert match.end < 20  # found within the head of the stream

    def test_first_with_descendant(self):
        engine = repro.JsonSki("$..b")
        assert engine.first(DOC).value() == 1


class TestFiles:
    def test_run_file(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_bytes(DOC)
        for engine_name in ("jsonski", "jpstream"):
            got = repro.ENGINES[engine_name]("$.c.b").run_file(str(path))
            assert got.values() == [3]

    def test_open_jsonl(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": 1}\n{"a": 2}\n')
        stream = repro.RecordStream.open_jsonl(str(path))
        assert repro.JsonSki("$.a").run_records(stream).values() == [1, 2]


class TestTrace:
    def test_events_cover_stats(self):
        engine = repro.JsonSki("$.c.b", collect_stats=True)
        matches, events = engine.trace_run(DOC)
        assert matches.values() == [3]
        by_group: dict[str, int] = {}
        for group, start, end in events:
            assert 0 <= start < end <= len(DOC)
            by_group[group] = by_group.get(group, 0) + (end - start)
        assert by_group == {g: n for g, n in engine.last_stats.chars.items() if n}

    def test_events_are_disjoint_and_ordered(self):
        tail = b", ".join(b'"k%d": [%d]' % (i, i) for i in range(50))
        data = b'{"target": {"x": 1}, ' + tail + b"}"
        _, events = repro.JsonSki("$.target.x").trace_run(data)
        spans = [(s, e) for _, s, e in events]
        assert spans == sorted(spans)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestRunWithPaths:
    def test_matches_reference(self):
        got = repro.JsonSki("$.a[*].b").run_with_paths(DOC)
        want = evaluate_with_paths("$.a[*].b", __import__("json").loads(DOC))
        assert [(p, m.value()) for p, m in got] == want

    def test_descendant_paths(self):
        got = repro.JsonSki("$..b").run_with_paths(DOC)
        assert [p for p, _ in got] == [("a", 0, "b"), ("a", 1, "b"), ("c", "b")]

    def test_normal_run_unaffected(self):
        engine = repro.JsonSki("$.a[*].b")
        engine.run_with_paths(DOC)
        assert engine.run(DOC).values() == evaluate_bytes("$.a[*].b", DOC)
