"""Fixture tests for the engine-contract checker (repro.staticcheck).

Per rule: one minimal failing snippet, one passing snippet.  Plus the
suppression machinery, the CLI surface, and the two meta-properties the
CI gate depends on: the real tree is clean, and deleting the clamp from
``repro.bits.words.mask_from`` trips RS001.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.staticcheck import check_paths, check_sources
from repro.staticcheck.cli import main as cli_main

SRC = Path(__file__).resolve().parent.parent / "src"

#: Synthetic paths that land each snippet in the right rule scope.
BITS = "src/repro/bits/snippet.py"
ENGINE = "src/repro/engine/snippet.py"
CHECKPOINT = "src/repro/checkpoint/snippet.py"
FUZZ = "src/repro/resilience/fuzz.py"
SERVE = "src/repro/serve/snippet.py"
REFERENCE = "src/repro/reference/snippet.py"
BASELINE = "src/repro/baselines/snippet.py"
OUTPUT = "src/repro/engine/output.py"
ELSEWHERE = "src/repro/harness/snippet.py"


def codes(findings):
    return [finding.rule for finding in findings]


def check_one(path, source, select=None):
    return check_sources({path: source}, select=select)


# ---------------------------------------------------------------------------
# RS001 — unmasked word arithmetic in repro/bits/


class TestRS001:
    def test_unmasked_invert_fails(self):
        findings = check_one(BITS, "def f(w):\n    return ~w\n")
        assert codes(findings) == ["RS001"]
        assert findings[0].line == 2

    def test_clamped_invert_passes(self):
        src = "M = (1 << 64) - 1\ndef f(w):\n    return M & ~w\n"
        assert check_one(BITS, src) == []

    def test_unmasked_shift_fails(self):
        findings = check_one(BITS, "def f(w, n):\n    return w << n\n")
        assert codes(findings) == ["RS001"]

    def test_single_bit_shift_passes(self):
        assert check_one(BITS, "def f(n):\n    return 1 << n\n") == []

    def test_mask_idiom_passes(self):
        assert check_one(BITS, "def f(n):\n    return (1 << n) - 1\n") == []

    def test_single_bit_borrow_passes(self):
        src = "def f(n):\n    b = 1 << n\n    return b ^ (b - 1)\n"
        assert check_one(BITS, src) == []

    def test_word_addition_fails(self):
        src = "def f(a, m):\n    w = a & m\n    return w + w\n"
        findings = check_one(BITS, src)
        assert codes(findings) == ["RS001"]

    def test_clamped_word_addition_passes(self):
        src = "def f(a, m):\n    w = a & m\n    return (w + w) & m\n"
        assert check_one(BITS, src) == []

    def test_augmented_shift_fails(self):
        findings = check_one(BITS, "def f(w):\n    w <<= 1\n    return w\n")
        assert codes(findings) == ["RS001"]

    def test_numpy_boolean_index_passes(self):
        assert check_one(BITS, "def f(q, mask):\n    return q[~mask]\n") == []

    def test_out_of_scope_file_passes(self):
        assert check_one(ELSEWHERE, "def f(w):\n    return ~w\n") == []


# ---------------------------------------------------------------------------
# RS002 — raise taxonomy


class TestRS002:
    def test_builtin_raise_fails(self):
        src = "def f():\n    raise ValueError('nope')\n"
        assert codes(check_one(ENGINE, src)) == ["RS002"]

    def test_repro_error_passes(self):
        src = (
            "from repro.errors import JsonSyntaxError\n"
            "def f():\n    raise JsonSyntaxError('bad', 0)\n"
        )
        assert check_one(ENGINE, src) == []

    def test_private_control_flow_exception_passes(self):
        src = (
            "class _Suspend(Exception):\n    pass\n"
            "def f():\n    raise _Suspend\n"
        )
        assert check_one(ENGINE, src) == []

    def test_not_implemented_passes(self):
        src = "def f():\n    raise NotImplementedError\n"
        assert check_one(ENGINE, src) == []

    def test_out_of_scope_file_passes(self):
        src = "def f():\n    raise ValueError('fine here')\n"
        assert check_one(ELSEWHERE, src) == []


# ---------------------------------------------------------------------------
# RS003 — limits= threading


ENGINE_CLASS_OK = """
class EngineBase: pass
class Thing(EngineBase):
    def __init__(self, query, limits=None): pass
"""

ENGINE_CLASS_MISSING = """
class EngineBase: pass
class Thing(EngineBase):
    def __init__(self, query): pass
"""


class TestRS003:
    def test_init_without_limits_fails(self):
        findings = check_one(ENGINE, ENGINE_CLASS_MISSING, select=["RS003"])
        assert codes(findings) == ["RS003"]
        assert "Thing" in findings[0].message

    def test_init_with_limits_passes(self):
        assert check_one(ENGINE, ENGINE_CLASS_OK, select=["RS003"]) == []

    def test_init_with_kwargs_passes(self):
        src = (
            "class EngineBase: pass\n"
            "class Thing(EngineBase):\n"
            "    def __init__(self, query, **kw): pass\n"
        )
        assert check_one(ENGINE, src, select=["RS003"]) == []

    def test_nested_call_without_limits_fails(self):
        src = ENGINE_CLASS_OK + "def make():\n    return Thing('$.a')\n"
        findings = check_one(ENGINE, src, select=["RS003"])
        assert codes(findings) == ["RS003"]
        assert "forward" in findings[0].message

    def test_nested_call_with_limits_passes(self):
        src = ENGINE_CLASS_OK + (
            "def make(limits):\n    return Thing('$.a', limits=limits)\n"
        )
        assert check_one(ENGINE, src, select=["RS003"]) == []

    def test_nested_call_with_kwargs_forwarding_passes(self):
        src = ENGINE_CLASS_OK + "def make(**kw):\n    return Thing('$.a', **kw)\n"
        assert check_one(ENGINE, src, select=["RS003"]) == []


# ---------------------------------------------------------------------------
# RS004 — checkpoint payload serializability


class TestRS004:
    def test_non_json_field_fails(self):
        src = (
            "from dataclasses import dataclass\n"
            "from pathlib import Path\n"
            "@dataclass\n"
            "class State:\n"
            "    where: Path\n"
            "    def to_dict(self): return {}\n"
        )
        findings = check_one(CHECKPOINT, src)
        assert codes(findings) == ["RS004"]
        assert "Path" in findings[0].message

    def test_json_composable_fields_pass(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class State:\n"
            "    pos: int\n"
            "    label: str | None\n"
            "    frames: list[dict]\n"
            "    matches: list[list[int] | None]\n"
            "    def to_dict(self): return {}\n"
        )
        assert check_one(CHECKPOINT, src) == []

    def test_non_serialized_dataclass_ignored(self):
        src = (
            "from dataclasses import dataclass\n"
            "from pathlib import Path\n"
            "@dataclass\n"
            "class ReadView:\n"
            "    where: Path\n"
        )
        assert check_one(CHECKPOINT, src) == []


# ---------------------------------------------------------------------------
# RS005 — determinism on resume/fuzz paths


class TestRS005:
    def test_wall_clock_fails(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert codes(check_one(CHECKPOINT, src)) == ["RS005"]

    def test_module_level_random_fails(self):
        src = "import random\ndef f():\n    return random.random()\n"
        assert codes(check_one(FUZZ, src)) == ["RS005"]

    def test_seeded_rng_passes(self):
        src = "import random\ndef f(seed):\n    return random.Random(seed)\n"
        assert check_one(FUZZ, src) == []

    def test_unseeded_rng_fails(self):
        src = "import random\ndef f():\n    return random.Random()\n"
        assert codes(check_one(FUZZ, src)) == ["RS005"]

    def test_set_iteration_fails(self):
        src = "def f(items):\n    for x in set(items):\n        yield x\n"
        assert codes(check_one(CHECKPOINT, src)) == ["RS005"]

    def test_sorted_iteration_passes(self):
        src = "def f(items):\n    for x in sorted(set(items)):\n        yield x\n"
        assert check_one(CHECKPOINT, src) == []

    def test_out_of_scope_file_passes(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert check_one(ELSEWHERE, src) == []


# ---------------------------------------------------------------------------
# RS006 — exception swallowing


class TestRS006:
    def test_swallowing_broad_except_fails(self):
        src = "def f():\n    try:\n        g()\n    except Exception:\n        pass\n"
        assert codes(check_one(ELSEWHERE, src)) == ["RS006"]

    def test_bare_except_fails(self):
        src = "def f():\n    try:\n        g()\n    except:\n        pass\n"
        assert codes(check_one(ELSEWHERE, src)) == ["RS006"]

    def test_reraise_passes(self):
        src = "def f():\n    try:\n        g()\n    except Exception:\n        raise\n"
        assert check_one(ELSEWHERE, src) == []

    def test_using_bound_exception_passes(self):
        src = (
            "def f(out):\n    try:\n        g()\n"
            "    except Exception as exc:\n        out.failures = exc\n"
        )
        assert check_one(ELSEWHERE, src) == []

    def test_recording_metric_passes(self):
        src = (
            "def f(metrics):\n    try:\n        g()\n"
            "    except Exception:\n        metrics.count('errors')\n"
        )
        assert check_one(ELSEWHERE, src) == []

    def test_narrow_except_passes(self):
        src = "def f():\n    try:\n        g()\n    except OSError:\n        pass\n"
        assert check_one(ELSEWHERE, src) == []


# ---------------------------------------------------------------------------
# RS007 — registry completeness


REGISTRY_SNIPPET = """
from repro.registry import EngineInfo, ENGINES
ENGINES.register(EngineInfo(name='thing', label='T', factory=Thing))
"""


class TestRS007:
    def test_unregistered_engine_fails(self):
        findings = check_sources({ENGINE: ENGINE_CLASS_OK}, select=["RS007"])
        assert codes(findings) == ["RS007"]
        assert "Thing" in findings[0].message

    def test_registered_engine_passes(self):
        sources = {
            ENGINE: ENGINE_CLASS_OK,
            "src/repro/registry.py": REGISTRY_SNIPPET,
        }
        assert check_sources(sources, select=["RS007"]) == []

    def test_lambda_registered_engine_passes(self):
        sources = {
            ENGINE: ENGINE_CLASS_OK,
            "src/repro/registry.py": (
                "from repro.registry import EngineInfo, ENGINES\n"
                "ENGINES.register(EngineInfo(name='t', label='T',\n"
                "    factory=lambda q, **kw: Thing(q, mode='word', **kw)))\n"
            ),
        }
        assert check_sources(sources, select=["RS007"]) == []

    def test_abstract_base_is_not_an_engine(self):
        src = (
            "class EngineBase:\n"
            "    def run(self, data):\n"
            "        raise NotImplementedError\n"
            "    def run_records(self, stream):\n"
            "        return [self.run(r) for r in stream]\n"
        )
        assert check_sources({ENGINE: src}, select=["RS007"]) == []


# ---------------------------------------------------------------------------
# RS008 — per-word Python-int loops outside repro/bits/words.py


class TestRS008:
    LOOPING = (
        "def f(words):\n"
        "    total = 0\n"
        "    for wid in range(len(words)):\n"
        "        total += int(words[wid])\n"
        "    return total\n"
    )

    def test_per_word_loop_fails(self):
        findings = check_one(BITS, self.LOOPING, select=["RS008"])
        assert codes(findings) == ["RS008"]
        assert findings[0].line == 4

    def test_while_loop_fails(self):
        src = (
            "def f(chunk, n):\n"
            "    wid = 0\n"
            "    while wid < n:\n"
            "        w = int(chunk.words[wid])\n"
            "        wid += 1\n"
        )
        assert codes(check_one(ENGINE, src, select=["RS008"])) == ["RS008"]

    def test_words_module_exempt(self):
        assert check_one("src/repro/bits/words.py", self.LOOPING, select=["RS008"]) == []

    def test_int_outside_loop_passes(self):
        src = "def f(words):\n    return int(words[0])\n"
        assert check_one(BITS, src, select=["RS008"]) == []

    def test_unrelated_int_in_loop_passes(self):
        src = (
            "def f(values):\n"
            "    out = []\n"
            "    for v in values:\n"
            "        out.append(int(v))\n"
            "    return out\n"
        )
        assert check_one(BITS, src, select=["RS008"]) == []

    def test_suppression_honored(self):
        src = (
            "def f(words):\n"
            "    for wid in range(len(words)):\n"
            "        w = int(words[wid])  # repro: ignore[RS008] -- fixture\n"
        )
        assert check_one(BITS, src, select=["RS008"]) == []


# ---------------------------------------------------------------------------
# RS003 (serve extension) — dispatch sites must pass limits=


class TestRS003Serve:
    def test_compile_without_limits_fails(self):
        src = (
            "def dispatch(registry, query):\n"
            "    return registry.compile(query, engine='jsonski')\n"
        )
        findings = check_one(SERVE, src, select=["RS003"])
        assert codes(findings) == ["RS003"]
        assert "limits" in findings[0].message

    def test_compile_engine_without_limits_fails(self):
        src = (
            "from repro.registry import compile as compile_engine\n"
            "def dispatch(query):\n"
            "    return compile_engine(query)\n"
        )
        assert codes(check_one(SERVE, src, select=["RS003"])) == ["RS003"]

    def test_compile_with_limits_passes(self):
        src = (
            "def dispatch(registry, query, limits):\n"
            "    return registry.compile(query, engine='jsonski', limits=limits)\n"
        )
        assert check_one(SERVE, src, select=["RS003"]) == []

    def test_kwargs_forwarding_passes(self):
        src = (
            "def dispatch(registry, query, **opts):\n"
            "    return registry.compile(query, **opts)\n"
        )
        assert check_one(SERVE, src, select=["RS003"]) == []

    def test_re_compile_is_exempt(self):
        src = "import re\nPATTERN = re.compile(r'x+')\n"
        assert check_one(SERVE, src, select=["RS003"]) == []

    def test_outside_serve_not_checked(self):
        src = "def f(registry, q):\n    return registry.compile(q)\n"
        assert check_one(ELSEWHERE, src, select=["RS003"]) == []


# ---------------------------------------------------------------------------
# RS009 — bounded queues and timed client I/O in repro/serve/


class TestRS009:
    def test_untimed_readline_fails(self):
        src = (
            "async def handle(reader):\n"
            "    line = await reader.readline()\n"
        )
        findings = check_one(SERVE, src, select=["RS009"])
        assert codes(findings) == ["RS009"]
        assert "readline" in findings[0].message

    def test_untimed_drain_fails(self):
        src = (
            "async def push(writer, data):\n"
            "    writer.write(data)\n"
            "    await writer.drain()\n"
        )
        assert codes(check_one(SERVE, src, select=["RS009"])) == ["RS009"]

    def test_wait_for_wrapped_passes(self):
        src = (
            "import asyncio\n"
            "async def handle(reader, timeout):\n"
            "    return await asyncio.wait_for(reader.readline(), timeout)\n"
        )
        assert check_one(SERVE, src, select=["RS009"]) == []

    def test_unbounded_queue_fails(self):
        src = "import asyncio\nq = asyncio.Queue()\n"
        findings = check_one(SERVE, src, select=["RS009"])
        assert codes(findings) == ["RS009"]
        assert "maxsize" in findings[0].message

    def test_bounded_queue_passes(self):
        src = "import asyncio\nq = asyncio.Queue(maxsize=16)\n"
        assert check_one(SERVE, src, select=["RS009"]) == []

    def test_non_client_await_passes(self):
        src = (
            "async def work(loop, pool, fn):\n"
            "    return await loop.run_in_executor(pool, fn)\n"
        )
        assert check_one(SERVE, src, select=["RS009"]) == []

    def test_outside_serve_not_checked(self):
        src = "async def f(reader):\n    return await reader.readline()\n"
        assert check_one(ELSEWHERE, src, select=["RS009"]) == []

    def test_suppression_honored(self):
        src = (
            "async def wait_forever(event):\n"
            "    # repro: ignore[RS009] -- fixture: sleeps until SIGTERM\n"
            "    await event.wait()\n"
        )
        assert check_one(SERVE, src, select=["RS009"]) == []


# ---------------------------------------------------------------------------
# RS010 — no eager materialization in engine hot paths


class TestRS010:
    def test_json_loads_in_engine_fails(self):
        src = "import json\ndef f(raw):\n    return json.loads(raw)\n"
        findings = check_one(ENGINE, src, select=["RS010"])
        assert codes(findings) == ["RS010"]
        assert "lazy" in findings[0].message

    def test_json_loads_in_reference_flagged(self):
        src = "import json\ndef oracle(data):\n    return json.loads(data)\n"
        assert codes(check_one(REFERENCE, src, select=["RS010"])) == ["RS010"]

    def test_json_loads_in_baselines_flagged(self):
        src = "import json\ndef run(text):\n    return json.loads(text)\n"
        assert codes(check_one(BASELINE, src, select=["RS010"])) == ["RS010"]

    def test_output_module_exempt(self):
        src = "import json\ndef _decode(text):\n    return json.loads(text)\n"
        assert check_one(OUTPUT, src, select=["RS010"]) == []

    def test_chained_values_fails(self):
        src = "def f(engine, data):\n    return engine.run(data).values()\n"
        assert codes(check_one(ENGINE, src, select=["RS010"])) == ["RS010"]

    def test_match_value_fails(self):
        src = "def f(match):\n    return match.value()\n"
        assert codes(check_one(ENGINE, src, select=["RS010"])) == ["RS010"]

    def test_dict_values_on_attribute_passes(self):
        src = "def f(self):\n    return sum(self._counters.values())\n"
        assert check_one(ENGINE, src, select=["RS010"]) == []

    def test_lazy_count_passes(self):
        src = "def f(engine, data):\n    return engine.run(data).count()\n"
        assert check_one(ENGINE, src, select=["RS010"]) == []

    def test_outside_scope_not_checked(self):
        src = "import json\ndef f(raw):\n    return json.loads(raw)\n"
        assert check_one(ELSEWHERE, src, select=["RS010"]) == []

    def test_suppression_honored(self):
        src = (
            "import json\n"
            "def f(raw):\n"
            "    # repro: ignore[RS010] -- fixture: consumer-side decode\n"
            "    return json.loads(raw)\n"
        )
        assert check_one(ENGINE, src, select=["RS010"]) == []


# ---------------------------------------------------------------------------
# RS011 — durable writes go through repro.storage


STORAGE = "src/repro/storage/snippet.py"


class TestRS011:
    def test_os_replace_fails(self):
        src = "import os\ndef f(tmp, path):\n    os.replace(tmp, path)\n"
        findings = check_one(ENGINE, src, select=["RS011"])
        assert codes(findings) == ["RS011"]
        assert "atomic_write" in findings[0].message

    def test_os_fsync_fails(self):
        src = "import os\ndef f(handle):\n    os.fsync(handle.fileno())\n"
        assert codes(check_one(CHECKPOINT, src, select=["RS011"])) == ["RS011"]

    def test_os_rename_fails(self):
        src = "import os\ndef f(a, b):\n    os.rename(a, b)\n"
        assert codes(check_one(ELSEWHERE, src, select=["RS011"])) == ["RS011"]

    def test_tmp_publish_idiom_fails(self):
        src = (
            "def f(path, data):\n"
            "    tmp = path.with_suffix('.tmp')\n"
            "    tmp.write_bytes(data)\n"
            "    tmp.rename(path)\n"
        )
        findings = check_one(ENGINE, src, select=["RS011"])
        assert codes(findings) == ["RS011", "RS011"]

    def test_inside_storage_package_exempt(self):
        src = "import os\ndef f(tmp, path):\n    os.replace(tmp, path)\n"
        assert check_one(STORAGE, src, select=["RS011"]) == []

    def test_atomic_write_call_passes(self):
        src = (
            "from repro.storage import atomic_write\n"
            "def f(path, data):\n"
            "    return atomic_write(path, data)\n"
        )
        assert check_one(ENGINE, src, select=["RS011"]) == []

    def test_plain_string_replace_passes(self):
        src = "def f(text):\n    return text.replace('a', 'b')\n"
        assert check_one(ENGINE, src, select=["RS011"]) == []

    def test_suppression_honored(self):
        src = (
            "import os\n"
            "def f(tmp, path):\n"
            "    # repro: ignore[RS011] -- fixture: non-durable scratch file\n"
            "    os.replace(tmp, path)\n"
        )
        assert check_one(ENGINE, src, select=["RS011"]) == []


# ---------------------------------------------------------------------------
# Suppressions


class TestSuppressions:
    FAILING = "def f(w):\n    return ~w\n"

    def test_trailing_suppression_honored(self):
        src = "def f(w):\n    return ~w  # repro: ignore[RS001] -- fixture\n"
        assert check_one(BITS, src) == []

    def test_standalone_suppression_covers_next_code_line(self):
        src = (
            "def f(w):\n"
            "    # repro: ignore[RS001] -- fixture reason\n"
            "    # (continuation comment lines are skipped)\n"
            "    return ~w\n"
        )
        assert check_one(BITS, src) == []

    def test_suppression_without_reason_is_rs000(self):
        src = "def f(w):\n    return ~w  # repro: ignore[RS001]\n"
        found = codes(check_one(BITS, src))
        assert "RS000" in found and "RS001" in found

    def test_wrong_code_does_not_suppress(self):
        src = "def f(w):\n    return ~w  # repro: ignore[RS006] -- wrong rule\n"
        assert codes(check_one(BITS, src)) == ["RS001"]

    def test_malformed_code_list_is_rs000(self):
        src = "def f(w):\n    return ~w  # repro: ignore[banana] -- reason\n"
        found = codes(check_one(BITS, src))
        assert "RS000" in found


# ---------------------------------------------------------------------------
# Framework / CLI


class TestFramework:
    def test_syntax_error_reported_not_crashed(self):
        findings = check_one(BITS, "def f(:\n")
        assert codes(findings) == ["RS000"]

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            check_one(BITS, "x = 1\n", select=["RS999"])

    def test_cli_clean_exit_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert cli_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_findings_exit_one_with_location(self, tmp_path, capsys):
        bits = tmp_path / "repro" / "bits"
        bits.mkdir(parents=True)
        target = bits / "bad.py"
        target.write_text("def f(w):\n    return ~w\n")
        assert cli_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out and "RS001" in out

    def test_cli_json_format(self, tmp_path, capsys):
        bits = tmp_path / "repro" / "bits"
        bits.mkdir(parents=True)
        (bits / "bad.py").write_text("def f(w):\n    return ~w\n")
        assert cli_main([str(bits), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["rule"] == "RS001"
        assert "RS001" in doc["rules"]

    def test_cli_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RS001", "RS002", "RS003", "RS004", "RS005", "RS006", "RS007"):
            assert code in out

    def test_cli_bad_select_exit_two(self, capsys):
        assert cli_main(["--select", "RS123", "."]) == 2


# ---------------------------------------------------------------------------
# The CI gate itself


# ---------------------------------------------------------------------------
# RS012 — blocking call reachable from the event loop


class TestRS012:
    def test_direct_blocking_call_in_async_def_fails(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        findings = check_one(SERVE, src, select=["RS012"])
        assert codes(findings) == ["RS012"]
        assert findings[0].line == 3
        assert "time.sleep" in findings[0].message

    def test_transitive_blocking_path_fails_with_chain(self):
        src = (
            "import os\n"
            "def flush(fd):\n"
            "    os.fsync(fd)\n"
            "def persist(fd):\n"
            "    flush(fd)\n"
            "async def handler(fd):\n"
            "    persist(fd)\n"
        )
        findings = check_one(SERVE, src, select=["RS012"])
        assert codes(findings) == ["RS012"]
        # The diagnostic reconstructs the call chain down to the primitive.
        assert "os.fsync" in findings[0].message

    def test_call_soon_callback_is_a_loop_root(self):
        src = (
            "import time\n"
            "def tick():\n"
            "    time.sleep(1)\n"
            "def schedule(loop):\n"
            "    loop.call_soon(tick)\n"
        )
        findings = check_one(SERVE, src, select=["RS012"])
        assert codes(findings) == ["RS012"]

    def test_executor_hop_passes(self):
        src = (
            "import asyncio\n"
            "import time\n"
            "def blocking():\n"
            "    time.sleep(1)\n"
            "async def handler():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, blocking)\n"
        )
        assert check_one(SERVE, src, select=["RS012"]) == []

    def test_blocking_helper_never_reached_from_loop_passes(self):
        src = (
            "import time\n"
            "def warm_cache():\n"
            "    time.sleep(1)\n"
            "async def handler():\n"
            "    return 1\n"
        )
        assert check_one(SERVE, src, select=["RS012"]) == []


# ---------------------------------------------------------------------------
# RS013 — shared mutable state written from >=2 execution contexts


_RS013_SHARED = """\
import threading

class Stats:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1

STATS = Stats()

async def handle():
    STATS.bump()

def _worker():
    STATS.bump()

def start():
    threading.Thread(target=_worker).start()
"""


class TestRS013:
    def test_unguarded_write_from_loop_and_thread_fails(self):
        findings = check_one(SERVE, _RS013_SHARED, select=["RS013"])
        assert codes(findings) == ["RS013"]
        assert "Stats.count" in findings[0].message
        assert "loop" in findings[0].message and "thread" in findings[0].message

    def test_lock_guarded_write_passes(self):
        src = _RS013_SHARED.replace(
            "    def bump(self):\n        self.count += 1\n",
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n",
        )
        assert src != _RS013_SHARED
        assert check_one(SERVE, src, select=["RS013"]) == []

    def test_single_context_write_passes(self):
        # Only the async path touches the object: one context, no race.
        src = _RS013_SHARED.replace(
            "def start():\n    threading.Thread(target=_worker).start()\n", ""
        )
        assert check_one(SERVE, src, select=["RS013"]) == []

    def test_init_writes_exempt(self):
        # __init__ runs before the object is reachable from anywhere
        # else; the fixture above would otherwise flag `self.count = 0`.
        findings = check_one(SERVE, _RS013_SHARED, select=["RS013"])
        assert all(f.line != 5 for f in findings)

    def test_mutating_method_on_module_global_fails(self):
        # `push` itself is reachable from both the loop (via the async
        # caller) and a spawned thread, so its append races with itself.
        src = (
            "import threading\n"
            "PENDING = []\n"
            "def push(item):\n"
            "    PENDING.append(item)\n"
            "async def enqueue(item):\n"
            "    push(item)\n"
            "def start():\n"
            "    threading.Thread(target=push).start()\n"
        )
        findings = check_one(SERVE, src, select=["RS013"])
        assert codes(findings) == ["RS013"]
        assert "PENDING" in findings[0].message


# ---------------------------------------------------------------------------
# RS014 — read-modify-write split across an await


class TestRS014:
    def test_attribute_rmw_across_await_fails(self):
        src = (
            "import asyncio\n"
            "class Session:\n"
            "    def __init__(self):\n"
            "        self.seq = 0\n"
            "    async def bump(self):\n"
            "        current = self.seq\n"
            "        await asyncio.sleep(0)\n"
            "        self.seq = current + 1\n"
        )
        findings = check_one(SERVE, src, select=["RS014"])
        assert codes(findings) == ["RS014"]
        assert findings[0].line == 8
        assert "Session.seq" in findings[0].message

    def test_recompute_after_await_passes(self):
        src = (
            "import asyncio\n"
            "class Session:\n"
            "    def __init__(self):\n"
            "        self.seq = 0\n"
            "    async def bump(self):\n"
            "        await asyncio.sleep(0)\n"
            "        self.seq = self.seq + 1\n"
        )
        assert check_one(SERVE, src, select=["RS014"]) == []

    def test_lock_held_across_rmw_passes(self):
        src = (
            "import asyncio\n"
            "class Session:\n"
            "    def __init__(self):\n"
            "        self.seq = 0\n"
            "        self._lock = asyncio.Lock()\n"
            "    async def bump(self):\n"
            "        async with self._lock:\n"
            "            current = self.seq\n"
            "            await asyncio.sleep(0)\n"
            "            self.seq = current + 1\n"
        )
        assert check_one(SERVE, src, select=["RS014"]) == []

    def test_module_global_rmw_across_await_fails(self):
        src = (
            "import asyncio\n"
            "TOTAL = 0\n"
            "async def add(delta):\n"
            "    global TOTAL\n"
            "    current = TOTAL\n"
            "    await asyncio.sleep(0)\n"
            "    TOTAL = current + delta\n"
        )
        findings = check_one(SERVE, src, select=["RS014"])
        assert codes(findings) == ["RS014"]
        assert "TOTAL" in findings[0].message


# ---------------------------------------------------------------------------
# Suppression budget (the CI ratchet)


class TestSuppressionBudget:
    def _tree(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import os\n"
            "os.replace('x', 'y')  # repro: ignore[RS011] -- test fixture\n"
        )
        (tmp_path / "b.py").write_text(
            "x = 1  # repro: ignore[RS001] -- reasoned\n"
            "y = 2  # repro: ignore[RS001]\n"  # malformed: RS000, not budget
        )
        return tmp_path

    def test_count_ignores_malformed(self, tmp_path):
        from repro.staticcheck.core import count_suppressions

        counts = count_suppressions([str(self._tree(tmp_path))])
        assert sum(counts.values()) == 2

    def test_within_budget_exit_zero(self, tmp_path):
        from repro.staticcheck.cli import enforce_budget

        tree = self._tree(tmp_path)
        budget = tmp_path / "budget.txt"
        budget.write_text("# comment\nbudget: 2\n")
        status, message = enforce_budget(str(budget), [str(tree)])
        assert status == 0
        assert "within budget" in message

    def test_over_budget_exit_one_names_files(self, tmp_path):
        from repro.staticcheck.cli import enforce_budget

        tree = self._tree(tmp_path)
        budget = tmp_path / "budget.txt"
        budget.write_text("budget: 1\n")
        status, message = enforce_budget(str(budget), [str(tree)])
        assert status == 1
        assert "exceeded" in message and "a.py" in message

    def test_missing_budget_line_exit_two(self, tmp_path):
        from repro.staticcheck.cli import enforce_budget

        budget = tmp_path / "budget.txt"
        budget.write_text("# no number here\n")
        status, message = enforce_budget(str(budget), [str(tmp_path)])
        assert status == 2

    def test_cli_flag_enforces(self, tmp_path, capsys):
        tree = self._tree(tmp_path)
        budget = tmp_path / "budget.txt"
        budget.write_text("budget: 0\n")
        # b.py's bare suppression is RS000 on its own, so findings also
        # drive the exit code; assert the budget message still prints.
        status = cli_main(
            [str(tree / "a.py"), "--suppression-budget", str(budget)]
        )
        assert status == 1
        assert "suppression budget exceeded" in capsys.readouterr().err

    def test_repo_budget_file_is_current(self):
        """The checked-in ratchet matches the tree: a new suppression
        must raise staticcheck-budget.txt in the same commit."""
        from repro.staticcheck.cli import enforce_budget

        root = SRC.parent
        status, message = enforce_budget(
            str(root / "staticcheck-budget.txt"),
            [str(SRC), str(root / "benchmarks")],
        )
        assert status == 0, message


class TestTreeIsClean:
    def test_src_tree_is_clean(self):
        findings = check_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_deleting_word_mask_clamp_trips_rs001(self):
        """The acceptance tripwire: removing the clamp from
        repro/bits/words.py mask_from must produce an RS001 diagnostic
        naming the file and line."""
        words = SRC / "repro" / "bits" / "words.py"
        source = words.read_text()
        clamp = "return WORD_MASK & ~((1 << pos) - 1)"
        assert clamp in source
        mutated = source.replace(clamp, "return ~((1 << pos) - 1)")
        findings = check_sources({str(words): mutated}, select=["RS001"])
        assert [f.rule for f in findings] == ["RS001"]
        assert findings[0].line == source.splitlines().index(
            "    " + clamp
        ) + 1

    def test_module_runs_as_script(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", str(SRC)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
