"""Tests for chunk classification and bitmap packing helpers."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import (
    DERIVED_CLASSES,
    STRUCTURAL_CLASSES,
    CharClass,
    classify_chunk,
    int_to_words,
    pack_bool_mask,
    packed_to_int,
    packed_to_words,
)


class TestCharClass:
    def test_base_classes_have_single_char(self):
        for cls in STRUCTURAL_CLASSES:
            assert len(cls.chars) == 1

    def test_derived_classes_union_members(self):
        for derived, members in DERIVED_CLASSES.items():
            member_chars = b"".join(m.chars for m in members)
            assert sorted(derived.chars) == sorted(member_chars)

    def test_any_covers_all_structural(self):
        assert sorted(CharClass.ANY.chars) == sorted(b"{}[]:,")


class TestPacking:
    def test_pack_pads_to_word(self):
        packed = pack_bool_mask(np.array([True] * 3))
        assert packed.size == 8

    def test_mirrored_order(self):
        # Character 0 must land in bit 0.
        mask = np.zeros(64, dtype=bool)
        mask[0] = True
        mask[63] = True
        word = int(packed_to_words(pack_bool_mask(mask))[0])
        assert word == (1 << 63) | 1

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_int_roundtrip(self, bits):
        mask = np.array(bits, dtype=bool)
        packed = pack_bool_mask(mask)
        value = packed_to_int(packed)
        for i, b in enumerate(bits):
            assert bool(value >> i & 1) == b
        words = int_to_words(value, packed.size // 8)
        assert packed_to_int(packed) == packed_to_int(words.view(np.uint8))


class TestClassifyChunk:
    def test_finds_every_metachar(self):
        chunk = b'{"a": [1, 2], "b": {}}'
        raw = classify_chunk(chunk)
        for cls in STRUCTURAL_CLASSES:
            got = packed_to_int(raw[cls])
            want = sum(1 << i for i, c in enumerate(chunk) if c == cls.chars[0])
            assert got == want, cls

    def test_quotes_and_backslashes(self):
        chunk = b'"a\\"b"'
        raw = classify_chunk(chunk)
        # quotes at 0, 3, 5 (the escaped one included — this is raw)
        assert packed_to_int(raw[CharClass.QUOTE]) == (1 << 0) | (1 << 3) | (1 << 5)
        assert packed_to_int(raw[CharClass.BACKSLASH]) == 1 << 2

    def test_raw_classification_ignores_strings(self):
        # classify_chunk is *raw*: pseudo-metacharacters are still marked
        # (string filtering happens in the index layer).
        chunk = b'"{"'
        raw = classify_chunk(chunk)
        assert packed_to_int(raw[CharClass.LBRACE]) == 1 << 1

    def test_empty_chunk(self):
        raw = classify_chunk(b"")
        assert all(arr.size == 0 for arr in raw.values())
