"""Unit tests for chunk re-wrapping and per-chunk query rewriting."""

from __future__ import annotations

import json

from repro.jsonpath.ast import Index, MultiIndex, Slice
from repro.jsonpath.parser import parse_path
from repro.parallel.chunking import ChunkInput, split_top_level
from repro.parallel.speculation import _rewrite_query


class TestChunkInputs:
    DATA = b'{"meta": 1, "it": [' + b",".join(b'{"v": %d}' % i for i in range(20)) + b'], "tail": 2}'

    def test_offsets_and_counts(self):
        split = split_top_level(self.DATA, "$.it")
        chunks = split.chunk_inputs(4)
        assert sum(c.n_elements for c in chunks) == 20
        offsets = [c.element_offset for c in chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_every_chunk_parses_and_holds_its_elements(self):
        split = split_top_level(self.DATA, "$.it")
        for chunk in split.chunk_inputs(5):
            value = json.loads(chunk.data)
            assert [e["v"] for e in value["it"]] == list(
                range(chunk.element_offset, chunk.element_offset + chunk.n_elements)
            )

    def test_real_prefix_and_suffix_placement(self):
        split = split_top_level(self.DATA, "$.it")
        chunks = split.chunk_inputs(3)
        assert b'"meta"' in chunks[0].data
        assert all(b'"meta"' not in c.data for c in chunks[1:])
        assert b'"tail"' in chunks[-1].data
        assert all(b'"tail"' not in c.data for c in chunks[:-1])

    def test_single_chunk_is_whole_record(self):
        split = split_top_level(self.DATA, "$.it")
        (chunk,) = split.chunk_inputs(1)
        assert chunk.data == self.DATA

    def test_more_chunks_than_elements(self):
        data = b'[1, 2]'
        split = split_top_level(data, "$")
        chunks = split.chunk_inputs(10)
        assert len(chunks) <= 2
        assert sum(c.n_elements for c in chunks) == 2

    def test_empty_array(self):
        split = split_top_level(b'{"it": []}', "$.it")
        chunks = split.chunk_inputs(4)
        assert len(chunks) == 1

    def test_nested_partition_path(self):
        data = b'{"a": {"b": [10, 20, 30]}}'
        split = split_top_level(data, "$.a.b")
        chunks = split.chunk_inputs(2)
        for chunk in chunks[1:]:
            value = json.loads(chunk.data)
            assert "b" in value["a"]  # minimal prefix reproduces nesting


def _chunk(offset: int, count: int) -> ChunkInput:
    return ChunkInput(b"[]", offset, count, has_real_prefix=offset == 0)


class TestQueryRewrite:
    def test_wildcard_untouched(self):
        path = parse_path("$[*].x")
        assert _rewrite_query(path, 0, _chunk(5, 10)) is path

    def test_index_localized(self):
        path = parse_path("$[7].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert local.steps[0] == Index(2)

    def test_index_out_of_window_unmatchable(self):
        path = parse_path("$[3].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert isinstance(local.steps[0], Index)
        assert local.steps[0].index > 10  # matches nothing, still parses all

    def test_slice_intersected(self):
        path = parse_path("$[8:14].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert local.steps[0] == Slice(3, 9)

    def test_slice_open_end(self):
        path = parse_path("$[8:].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert local.steps[0] == Slice(3, 10)

    def test_multiindex_localized(self):
        path = parse_path("$[6,9,40].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert local.steps[0] == MultiIndex((1, 4))

    def test_multiindex_single_survivor_becomes_index(self):
        path = parse_path("$[6,40].x")
        local = _rewrite_query(path, 0, _chunk(5, 10))
        assert local.steps[0] == Index(1)

    def test_depth_beyond_steps(self):
        path = parse_path("$.a")
        assert _rewrite_query(path, 5, _chunk(0, 3)) is path

    def test_later_steps_untouched(self):
        path = parse_path("$.pd[3].x")
        local = _rewrite_query(path, 1, _chunk(2, 4))
        assert local.steps[0] == path.steps[0]
        assert local.steps[1] == Index(1)
        assert local.steps[2] == path.steps[2]
