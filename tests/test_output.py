"""MatchList / Match tests."""

from __future__ import annotations

import pytest

from repro.engine.output import Match, MatchList


class TestMatch:
    def test_text_and_value(self):
        m = Match(b'xx{"a": 1}yy', 2, 10)
        assert m.text == b'{"a": 1}'
        assert m.value() == {"a": 1}


class TestMatchList:
    def test_order_preserved(self):
        ml = MatchList()
        ml.add(b"abc", 0, 1)
        ml.add(b"abc", 1, 2)
        assert ml.texts() == [b"a", b"b"]
        assert [m.start for m in ml] == [0, 1]
        assert ml[1].text == b"b"

    def test_reserve_fill_keeps_position(self):
        ml = MatchList()
        slot = ml.reserve()
        ml.add(b"xy", 1, 2)
        ml.fill(slot, b"xy", 0, 1)
        assert ml.texts() == [b"x", b"y"]

    def test_double_fill_rejected(self):
        ml = MatchList()
        slot = ml.reserve()
        ml.fill(slot, b"x", 0, 1)
        with pytest.raises(ValueError):
            ml.fill(slot, b"x", 0, 1)

    def test_unfilled_slot_detected(self):
        ml = MatchList()
        ml.reserve()
        with pytest.raises(ValueError):
            ml.texts()

    def test_extend(self):
        a, b = MatchList(), MatchList()
        a.add(b"1", 0, 1)
        b.add(b"2", 0, 1)
        a.extend(b)
        assert a.values() == [1, 2]
        assert len(a) == 2

    def test_values_decode(self):
        ml = MatchList()
        ml.add(b'[true, null]', 0, 12)
        assert ml.values() == [[True, None]]
