"""Harness internals: runner, tables, report rendering."""

from __future__ import annotations

from repro.harness.report import generate_markdown
from repro.harness.runner import Measurement, time_run_records
from repro.harness.tables import render_series, render_table
from repro.harness import experiments as exp


class TestTablesRendering:
    def test_column_alignment(self):
        out = render_table(["name", "v"], [["long-name-here", 1], ["x", 123456.0]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header/sep/body aligned (trailing pad aside)

    def test_float_formats(self):
        out = render_table(["v"], [[0.00012345], [12.3456], [1234567.0], [0.0]])
        assert "0.0001234" in out or "0.0001235" in out
        assert "12.346" in out
        assert "1,234,567" in out

    def test_series_transposition(self):
        out = render_series("size", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = out.splitlines()
        assert lines[0].split() == ["size", "a", "b"]
        assert lines[2].split() == ["1", "10", "30"]

    def test_title_line(self):
        out = render_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"


class TestRunner:
    def test_measurement_holds_extras(self):
        m = Measurement("jsonski", "TT", "TT1", 0.5, 10, extra={"note": "x"})
        assert m.extra["note"] == "x"

    def test_time_run_records(self):
        from repro.harness.runner import make_engine
        from repro.stream.records import RecordStream

        stream = RecordStream.from_records([b'{"a": 1}'] * 5)
        seconds, matches = time_run_records(make_engine("jsonski", "$.a"), stream, repeat=2)
        assert seconds >= 0 and len(matches) == 5


class TestMarkdownReport:
    def test_structure(self):
        out = generate_markdown(25_000, workers=4, fast=True)
        assert out.startswith("# Measured results")
        assert out.count("## ") >= 11
        # every table has a separator row
        assert out.count("|---") >= 11

    def test_cells_escape_free_floats(self):
        out = generate_markdown(25_000, workers=4, fast=True)
        assert "e-" not in out.split("## Table 4")[1].split("##")[0]


class TestExperimentKnobs:
    def test_env_overrides(self, monkeypatch):
        # DEFAULT_SIZE is read at import; the functions accept explicit
        # sizes, which is what the benches rely on.
        title, _, rows = exp.exp_table5(20_000)
        assert "19.5KiB" in title
        assert len(rows) == 12

    def test_fig14_custom_sizes(self):
        _, headers, rows = exp.exp_fig14(sizes=(20_000, 40_000), simdjson_cap=10**9, repeat=1)
        assert len(rows) == 2
        assert all(row[3] != "cap" for row in rows)  # generous cap never bites

    def test_memory_engine_config(self):
        engine = exp._memory_engine("jsonski", "$.a")
        assert engine.chunk_size == exp.STREAM_CHUNK
        assert engine.cache_chunks == 2
        other = exp._memory_engine("pison", "$.a")
        assert type(other).__name__ == "PisonLike"
