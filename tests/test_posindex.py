"""Tests for the position-based index (vector-mode fast path).

The defining property: for every chunk and every class, the position
lists must be *identical* to those derived from the word-bitmap index —
the two are alternative materializations of the same structural facts.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.posindex import PositionBufferIndex, build_position_chunk
from repro.bits.strings import StringCarry

_JSONISH = st.binary(max_size=400)
_DENSE = st.lists(st.sampled_from(list(b'ab"\\ {}[]:,')), max_size=400).map(bytes)

_CLASSES = [cls for cls in CharClass if cls is not CharClass.BACKSLASH]


class TestBuildPositionChunk:
    def test_simple_record(self):
        chunk = build_position_chunk(b'{"a": [1, 2]}', 0)
        assert list(chunk.positions_list(CharClass.LBRACE)) == [0]
        assert list(chunk.positions_list(CharClass.COLON)) == [4]
        assert list(chunk.positions_list(CharClass.COMMA)) == [8]
        assert list(chunk.positions_list(CharClass.QUOTE)) == [1, 3]

    def test_string_filtering(self):
        chunk = build_position_chunk(b'{"x": "a{b,c}"}', 0)
        assert list(chunk.positions_list(CharClass.LBRACE)) == [0]
        assert list(chunk.positions_list(CharClass.COMMA)) == []

    def test_escaped_quote(self):
        chunk = build_position_chunk(b'"a\\"b" {', 0)
        assert list(chunk.positions_list(CharClass.QUOTE)) == [0, 5]
        assert list(chunk.positions_list(CharClass.LBRACE)) == [7]

    def test_carry_in_escape(self):
        # Previous chunk ended with an odd backslash run: the first quote
        # here is escaped and must not open a string.
        chunk = build_position_chunk(b'"x{', 0, StringCarry(escape=1, in_string=1))
        assert list(chunk.positions_list(CharClass.QUOTE)) == []
        assert list(chunk.positions_list(CharClass.LBRACE)) == []  # still in string

    def test_carry_in_string(self):
        chunk = build_position_chunk(b'x" {', 0, StringCarry(escape=0, in_string=1))
        assert list(chunk.positions_list(CharClass.LBRACE)) == [3]
        assert chunk.carry_out.in_string == 0

    def test_offsets_are_absolute(self):
        chunk = build_position_chunk(b"{}", 500)
        assert list(chunk.positions_list(CharClass.ANY)) == [500, 501]

    def test_empty(self):
        chunk = build_position_chunk(b"", 0, StringCarry(1, 1))
        assert list(chunk.positions_list(CharClass.ANY)) == []
        assert chunk.carry_out == StringCarry(1, 1)


class TestEquivalenceWithWordIndex:
    @given(_DENSE, st.sampled_from([64, 128, 256]))
    def test_dense_metachar_soup(self, data, chunk_size):
        self._check(data, chunk_size)

    @given(_JSONISH)
    def test_arbitrary_bytes(self, data):
        self._check(data, 64)

    @staticmethod
    def _check(data: bytes, chunk_size: int) -> None:
        wi = BufferIndex(data, chunk_size=chunk_size, cache_chunks=None)
        pi = PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=None)
        assert wi.n_chunks == pi.n_chunks
        for cid in range(wi.n_chunks):
            wc, pc = wi.get(cid), pi.get(cid)
            assert wc.carry_out == pc.carry_out, (cid, data)
            for cls in _CLASSES:
                assert list(wc.positions_list(cls)) == list(pc.positions_list(cls)), (cid, cls, data)


class TestSingleDecode:
    """Regression: ``positions()`` used to re-filter the keep array on
    every call — one decode per class per chunk is the contract (the
    two-stage story depends on stage-1 artifacts being built once)."""

    DATA = b'{"a": [1, 2], "b": {"c": [3]}}'

    def test_positions_decodes_once(self):
        import numpy as np

        chunk = build_position_chunk(self.DATA, 0)
        counter = {"eq": 0}

        class Counting(np.ndarray):
            def __eq__(self, other):  # each decode compares keep_vals once per byte value
                counter["eq"] += 1
                return np.ndarray.__eq__(self, other)

        chunk.keep_vals = chunk.keep_vals.view(Counting)
        for _ in range(5):
            chunk.positions(CharClass.COLON)
        assert counter["eq"] == 1, f"COLON decoded {counter['eq']} times"

    def test_positions_and_lists_are_memoized(self):
        chunk = build_position_chunk(self.DATA, 0)
        for cls in (CharClass.COMMA, CharClass.LBRACE, CharClass.OPEN):
            assert chunk.positions(cls) is chunk.positions(cls)
            assert chunk.positions_list(cls) is chunk.positions_list(cls)
        assert chunk.depth_tables() is chunk.depth_tables()

    def test_memoized_positions_still_correct(self):
        chunk = build_position_chunk(self.DATA, 0)
        first = list(chunk.positions_list(CharClass.COMMA))
        again = list(chunk.positions_list(CharClass.COMMA))
        assert first == again == [8, 12]
