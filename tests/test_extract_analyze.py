"""Tests for the Extractor DSL and the analysis advisor."""

from __future__ import annotations

import json

import pytest

import repro
from repro.analysis import analyze
from repro.data.datasets import large_record, record_stream
from repro.extract import Extractor


class TestExtractor:
    DOC = b'{"user": {"id": 7, "name": "ann"}, "tags": ["a", "b"], "n": 1}'

    def test_first_mode(self):
        rows = Extractor({"id": "$.user.id", "tag": "$.tags[*]", "zz": "$.missing"})
        assert rows.extract(self.DOC) == {"id": 7, "tag": "a", "zz": None}

    def test_list_mode(self):
        rows = Extractor({"tags": "$.tags[*]"}, mode="list")
        assert rows.extract(self.DOC) == {"tags": ["a", "b"]}

    def test_custom_default(self):
        rows = Extractor({"zz": "$.missing"}, default=-1)
        assert rows.extract(self.DOC) == {"zz": -1}

    def test_column_order_preserved(self):
        rows = Extractor({"b": "$.n", "a": "$.user.id"})
        assert list(rows.extract(self.DOC)) == ["b", "a"]

    def test_extract_records_lazy(self):
        stream = repro.RecordStream.from_records([self.DOC, b'{"user": {"id": 9}}'])
        it = Extractor({"id": "$.user.id"}).extract_records(stream)
        assert next(it) == {"id": 7}
        assert next(it) == {"id": 9}
        with pytest.raises(StopIteration):
            next(it)

    def test_extract_many_list_input(self):
        got = Extractor({"n": "$.n"}).extract_many([self.DOC, b'{"n": 2}'])
        assert [row["n"] for row in got] == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            Extractor({})
        with pytest.raises(ValueError):
            Extractor({"a": "$.a"}, mode="nope")

    def test_matches_per_query_engines(self):
        """One fused pass must equal independent single-query runs."""
        stream = record_stream("TT", 40_000, seed=8)
        fields = {"text": "$.text", "followers": "$.user.followers_count", "url": "$.en.urls[0].url"}
        extractor = Extractor(fields)
        singles = {name: repro.JsonSki(q) for name, q in fields.items()}
        for record in list(stream)[:40]:
            row = extractor.extract(record)
            for name, engine in singles.items():
                match = engine.first(record)
                assert row[name] == (match.value() if match else None), name


class TestAnalyze:
    def test_high_skip_workload(self):
        data = large_record("NSPL", 40_000, seed=5)
        report = analyze(data, "$.mt.vw.co[*].nm")
        assert report.n_matches == 44
        assert report.overall_ratio > 0.95
        assert report.ratios["G4"] > 0.9
        assert "well" in report.assessment()

    def test_low_skip_workload(self):
        # A wildcard-everything query touches nearly the whole stream.
        data = json.dumps({"a": [{"x": i} for i in range(50)]}).encode()
        report = analyze(data, "$.a[*].x")
        assert report.overall_ratio < 0.9

    def test_describe_contains_plan_and_probe(self):
        report = analyze(b'{"a": {"b": 1}}', "$.a.b")
        text = report.describe()
        assert "level 0" in text and "probe:" in text and "assessment:" in text

    def test_mean_jump_consistent_with_ratio(self):
        data = large_record("WM", 40_000, seed=5)
        report = analyze(data, "$.it[*].bmrpr.pr")
        assert report.n_events > 0
        skipped = report.mean_jump * report.n_events
        assert abs(skipped / report.sample_bytes - report.overall_ratio) < 1e-6

    def test_cli_analyze(self, tmp_path):
        import io

        from repro.cli import main

        path = tmp_path / "d.json"
        path.write_bytes(b'{"a": {"b": 1}, "c": [1,2,3,4,5,6,7,8]}')
        out = io.StringIO()
        assert main(["$.a.b", str(path), "--analyze"], out=out, err=io.StringIO()) == 0
        assert "assessment:" in out.getvalue()
