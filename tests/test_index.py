"""Tests for the chunked structural index (word-bitmap flavour)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex, build_chunk_index
from repro.bits.strings import INITIAL_CARRY, naive_string_mask


class TestBuildChunkIndex:
    def test_string_filtering(self):
        chunk = b'{"a{": ","}'
        ci = build_chunk_index(chunk, 0)
        # The '{' at position 3 and ',' at 8 are inside strings.
        assert list(ci.positions_list(CharClass.LBRACE)) == [0]
        assert list(ci.positions_list(CharClass.COMMA)) == []
        assert list(ci.positions_list(CharClass.COLON)) == [5]

    def test_quote_positions_are_unescaped_only(self):
        chunk = b'{"a\\"b": 1}'
        ci = build_chunk_index(chunk, 0)
        assert list(ci.positions_list(CharClass.QUOTE)) == [1, 6]

    def test_absolute_offsets(self):
        ci = build_chunk_index(b"{}", 1000)
        assert list(ci.positions_list(CharClass.LBRACE)) == [1000]
        assert list(ci.positions_list(CharClass.RBRACE)) == [1001]
        assert ci.start == 1000 and ci.end == 1002

    def test_derived_union_positions(self):
        ci = build_chunk_index(b"[{}]", 0)
        assert list(ci.positions_list(CharClass.OPEN)) == [0, 1]
        assert list(ci.positions_list(CharClass.CLOSE)) == [2, 3]
        assert list(ci.positions_list(CharClass.ANY)) == [0, 1, 2, 3]


class TestBufferIndex:
    def test_chunk_math(self):
        idx = BufferIndex(b"x" * 200, chunk_size=64, cache_chunks=None)
        assert idx.n_chunks == 4
        assert idx.chunk_of(0) == 0
        assert idx.chunk_of(63) == 0
        assert idx.chunk_of(64) == 1
        assert idx.chunk_start(3) == 192
        assert idx.get(3).length == 200 - 192

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BufferIndex(b"x", chunk_size=100)
        with pytest.raises(ValueError):
            BufferIndex(b"x", chunk_size=64, cache_chunks=1)
        with pytest.raises(IndexError):
            BufferIndex(b"x", chunk_size=64).get(5)

    def test_forward_build_chains_carries(self):
        # A string spanning three chunks must mask metachars throughout.
        data = b'{"k": "' + b"{" * 150 + b'"}'
        idx = BufferIndex(data, chunk_size=64, cache_chunks=None)
        braces = [p for cid in range(idx.n_chunks) for p in list(idx.get(cid).positions_list(CharClass.LBRACE))]
        assert braces == [0]

    def test_lru_eviction_and_rebuild(self):
        data = (b'{"a": 1}' * 100).ljust(1024)
        idx = BufferIndex(data, chunk_size=64, cache_chunks=2)
        idx.get(idx.n_chunks - 1)  # builds everything forward
        built_once = idx.chunks_built
        assert built_once == idx.n_chunks
        # Old chunks were evicted; asking again rebuilds from stored carries.
        first = idx.get(0)
        assert idx.chunks_built == built_once + 1
        assert first.carry_in == INITIAL_CARRY

    def test_unbounded_cache_never_rebuilds(self):
        data = b'[1, 2, 3]' * 50
        idx = BufferIndex(data, chunk_size=64, cache_chunks=None)
        for _ in range(3):
            for cid in range(idx.n_chunks):
                idx.get(cid)
        assert idx.chunks_built == idx.n_chunks

    @given(st.binary(max_size=300))
    def test_rebuilt_chunk_identical(self, data):
        """Eviction must be invisible: rebuilt chunks equal originals."""
        if not data:
            return
        full = BufferIndex(data, chunk_size=64, cache_chunks=None)
        lru = BufferIndex(data, chunk_size=64, cache_chunks=2)
        lru.get(lru.n_chunks - 1)
        for cid in range(full.n_chunks):
            a, b = full.get(cid), lru.get(cid)
            for cls in (CharClass.ANY, CharClass.QUOTE):
                assert list(a.positions_list(cls)) == list(b.positions_list(cls))

    @given(st.binary(max_size=256))
    def test_in_string_matches_oracle(self, data):
        idx = BufferIndex(data, chunk_size=64, cache_chunks=None)
        carry = INITIAL_CARRY
        for cid in range(idx.n_chunks):
            chunk = idx.get(cid)
            want = naive_string_mask(data[chunk.start : chunk.end], carry)
            mask = (1 << chunk.length) - 1
            assert chunk.in_string & mask == want.in_string
            carry = want.carry_out
