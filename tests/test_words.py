"""Unit and property tests for the 64-bit word primitives (Algorithm 3)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import words


class TestLowestBit:
    def test_isolates_lowest(self):
        assert words.lowest_bit(0b1011000) == 0b0001000

    def test_zero_word(self):
        assert words.lowest_bit(0) == 0

    def test_single_bit(self):
        assert words.lowest_bit(1 << 63) == 1 << 63

    @given(st.integers(min_value=1, max_value=words.WORD_MASK))
    def test_is_power_of_two_dividing_word(self, w):
        b = words.lowest_bit(w)
        assert b & (b - 1) == 0
        assert w & b == b
        assert (w & (b - 1)) == 0  # nothing below it


class TestClearLowestBit:
    def test_clears_one(self):
        assert words.clear_lowest_bit(0b1011000) == 0b1010000

    def test_empties_single_bit(self):
        assert words.clear_lowest_bit(0b100) == 0

    @given(st.integers(min_value=1, max_value=words.WORD_MASK))
    def test_popcount_decreases_by_one(self, w):
        assert words.popcount(words.clear_lowest_bit(w)) == words.popcount(w) - 1


class TestBitPositions:
    def test_lowest_bit_position(self):
        assert words.lowest_bit_position(0b1000) == 3

    def test_lowest_bit_position_zero_raises(self):
        with pytest.raises(ValueError):
            words.lowest_bit_position(0)

    def test_highest_bit_position(self):
        assert words.highest_bit_position(0b1011) == 3

    def test_highest_bit_position_zero_raises(self):
        with pytest.raises(ValueError):
            words.highest_bit_position(0)

    @given(st.integers(min_value=0, max_value=63))
    def test_roundtrip_single_bit(self, pos):
        assert words.lowest_bit_position(1 << pos) == pos
        assert words.highest_bit_position(1 << pos) == pos


class TestMasks:
    @given(st.integers(min_value=0, max_value=63))
    def test_mask_up_to_inclusive(self, pos):
        m = words.mask_up_to(pos)
        assert m == (1 << (pos + 1)) - 1

    @given(st.integers(min_value=0, max_value=63))
    def test_mask_from(self, pos):
        m = words.mask_from(pos)
        assert m & ((1 << pos) - 1) == 0
        assert m | ((1 << pos) - 1) == words.WORD_MASK


class TestIntervalBetween:
    def test_simple_interval(self):
        # bits 2..4 inclusive of start, exclusive of end bit 5
        assert words.interval_between(1 << 2, 1 << 5) == 0b11100

    def test_open_interval(self):
        iv = words.interval_between(1 << 60, 0)
        assert iv == words.WORD_MASK & ~((1 << 60) - 1)

    def test_interval_end(self):
        iv = words.interval_between(1 << 2, 1 << 5)
        assert words.interval_end(iv) == 4

    @given(st.integers(min_value=0, max_value=62), st.data())
    def test_covers_exact_range(self, start, data):
        end = data.draw(st.integers(min_value=start + 1, max_value=63))
        iv = words.interval_between(1 << start, 1 << end)
        for i in range(64):
            assert bool(iv >> i & 1) == (start <= i < end)


class TestSelectKth:
    def test_selects(self):
        w = 0b10110010
        assert words.select_kth_bit(w, 1) == 1
        assert words.select_kth_bit(w, 2) == 4
        assert words.select_kth_bit(w, 3) == 5
        assert words.select_kth_bit(w, 4) == 7

    def test_too_few_bits_raises(self):
        with pytest.raises(ValueError):
            words.select_kth_bit(0b101, 3)

    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            words.select_kth_bit(0b1, 0)

    @given(st.integers(min_value=1, max_value=words.WORD_MASK))
    def test_agrees_with_enumeration(self, w):
        positions = [i for i in range(64) if w >> i & 1]
        for k, pos in enumerate(positions, start=1):
            assert words.select_kth_bit(w, k) == pos


class TestPrefixXor:
    def test_single_bit_smears_upward(self):
        assert words.prefix_xor(0b100, bits=8) == 0b11111100

    def test_two_bits_bound_a_range(self):
        # quotes at 2 and 5: positions 2,3,4 are "inside"
        assert words.prefix_xor(0b100100, bits=8) == 0b011100

    @given(st.integers(min_value=0, max_value=words.WORD_MASK))
    def test_matches_running_parity(self, w):
        out = words.prefix_xor(w)
        parity = 0
        for i in range(64):
            parity ^= (w >> i) & 1
            assert (out >> i) & 1 == parity

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_wide_words(self, w):
        out = words.prefix_xor(w, bits=128)
        parity = 0
        for i in range(128):
            parity ^= (w >> i) & 1
            assert (out >> i) & 1 == parity


def _naive_escaped(backslashes: int, carry: int, bits: int) -> tuple[int, int]:
    """Character-at-a-time oracle for the odd-run escape rule.

    A non-backslash character is escaped iff the backslash run
    immediately before it has odd length (the carry contributes parity 1);
    backslashes inside runs are never marked — they are consumed by the
    run itself, matching simdjson's ``odd_ends`` output.
    """
    escaped = 0
    run = 1 if carry else 0
    for i in range(bits):
        if (backslashes >> i) & 1:
            run += 1
        else:
            if run % 2 == 1:
                escaped |= 1 << i
            run = 0
    return escaped, run % 2


class TestEscapedPositions:
    def test_simple_escape(self):
        # \" -> the quote (bit 1) is escaped
        escaped, carry = words.escaped_positions(0b01, 0)
        assert escaped == 0b10
        assert carry == 0

    def test_double_backslash_escapes_nothing(self):
        escaped, carry = words.escaped_positions(0b11, 0)
        assert escaped == 0b100 & 0  # nothing beyond the pair
        assert carry == 0

    def test_odd_run_at_word_end_carries(self):
        escaped, carry = words.escaped_positions(1 << 63, 0)
        assert carry == 1
        assert escaped == 0

    def test_carry_escapes_first_char(self):
        escaped, carry = words.escaped_positions(0, 1)
        assert escaped & 1
        assert carry == 0

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            words.escaped_positions(0, 0, bits=63)

    @given(st.integers(min_value=0, max_value=words.WORD_MASK), st.booleans())
    def test_matches_naive_oracle(self, bs, carry_in):
        got = words.escaped_positions(bs, int(carry_in))
        assert got == _naive_escaped(bs, int(carry_in), 64)

    @given(st.lists(st.integers(min_value=0, max_value=words.WORD_MASK), min_size=1, max_size=6))
    def test_carry_chains_across_words(self, word_list):
        carry = 0
        naive_carry = 0
        for bs in word_list:
            escaped, carry = words.escaped_positions(bs, carry)
            n_escaped, naive_carry = _naive_escaped(bs, naive_carry, 64)
            assert escaped == n_escaped
            assert carry == naive_carry

    def test_random_wide_widths(self):
        rng = random.Random(3)
        for _ in range(50):
            bits = rng.choice([2, 8, 64, 128, 256])
            bs = rng.getrandbits(bits)
            carry = rng.randrange(2)
            assert words.escaped_positions(bs, carry, bits) == _naive_escaped(bs, carry, bits)
