"""Real-thread race regressions for the process-wide shared state.

These tests are the runtime counterpart of staticcheck RS013: they
hammer each shared structure from many threads with the interpreter's
switch interval cranked down (so the GIL hands over every ~15 µs instead
of every 5 ms) and assert no update is lost and no multi-field stat
tears.  Before the instruments grew locks, the counter test lost
thousands of increments per run — ``x += 1`` is a read, an add, and a
store, and the GIL is allowed to switch between any of them.
"""

from __future__ import annotations

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.engine.prepared as prepared_mod
from repro.observe.metrics import Counter, Histogram, MetricsRegistry
from repro.resilience.guards import Limits
from repro.serve.registry import CorpusRegistry
from repro.storage.metrics import storage_metrics

N_THREADS = 8
PER_THREAD = 2_000


@pytest.fixture(autouse=True)
def _tight_gil():
    """Make interleavings dense enough to surface within one CI run."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def hammer(worker, n_threads: int = N_THREADS) -> None:
    """Run ``worker(thread_index)`` on every thread, started together."""
    barrier = threading.Barrier(n_threads)

    def run(index: int) -> None:
        barrier.wait()
        worker(index)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for future in [pool.submit(run, i) for i in range(n_threads)]:
            future.result()


class TestInstrumentRaces:
    def test_counter_add_loses_no_updates(self):
        counter = Counter("races.add")
        hammer(lambda i: [counter.add(1) for _ in range(PER_THREAD)])
        assert counter.value == N_THREADS * PER_THREAD

    def test_histogram_observe_stays_coherent(self):
        hist = Histogram("races.observe", bounds=(0.5, 1.5, 2.5))
        hammer(lambda i: [hist.observe(float(i % 4)) for _ in range(PER_THREAD)])
        total_observations = N_THREADS * PER_THREAD
        assert hist.count == total_observations
        # Torn stats would break these cross-field invariants even if
        # no single field lost an update.
        assert sum(hist.bucket_counts) == hist.count
        assert hist.min == 0.0 and hist.max == 3.0
        assert hist.total == pytest.approx(
            sum(float(i % 4) for i in range(N_THREADS)) * PER_THREAD
        )

    def test_registry_get_or_create_yields_one_instrument(self):
        # Single-shot, this race fires in only a few percent of runs
        # (pre-fix: ~2.5% of trials produced duplicate instruments, and
        # every add into the dropped duplicate vanished), so the trial
        # is repeated until the pre-fix failure probability is ~1.
        for _ in range(150):
            registry = MetricsRegistry()
            seen: list[Counter] = []
            lock = threading.Lock()

            def worker(i):
                counter = registry.counter("races.shared", route="query")
                with lock:
                    seen.append(counter)
                counter.add(10)

            hammer(worker)
            assert len(set(map(id, seen))) == 1, "get-or-create raced into duplicates"
            assert registry.value("races.shared", route="query") == N_THREADS * 10

    def test_registry_merge_from_many_threads(self):
        target = MetricsRegistry()

        def worker(i):
            local = MetricsRegistry()
            local.counter("races.merged").add(PER_THREAD)
            local.histogram("races.merged.hist", bounds=(1.0,)).observe(0.5)
            target.merge(local)

        hammer(worker)
        assert target.value("races.merged") == N_THREADS * PER_THREAD
        hist = target.histogram("races.merged.hist", bounds=(1.0,))
        assert hist.count == N_THREADS


class TestSharedRegistries:
    def test_storage_registry_from_many_threads(self):
        registry = storage_metrics()
        name = "races.storage.probe"
        before = registry.value(name)
        hammer(lambda i: [registry.counter(name).add(1) for _ in range(PER_THREAD)])
        assert registry.value(name) - before == N_THREADS * PER_THREAD

    def test_query_cache_concurrent_parse(self):
        cache = prepared_mod.QUERY_CACHE
        cache.clear()
        queries = [f"$.races[{i}].a" for i in range(16)]

        def worker(i):
            for _ in range(200):
                for query in queries:
                    path = cache.parse(query)
                    assert path.unparse()  # a real parsed object, never None

        hammer(worker)
        stats = cache.stats()
        # Exactly the distinct queries live in the cache; every lookup
        # was tallied (lost hit/miss updates would break the sum).
        assert stats["paths"] == len(queries)
        assert stats["hits"] + stats["misses"] == N_THREADS * 200 * len(queries)
        cache.clear()

    def test_corpus_warm_path_single_index(self):
        registry = CorpusRegistry()
        corpus = registry.register("doc", b'{"a": [1, 2, 3]}', format="json")
        indexes: list[object] = []
        lock = threading.Lock()

        def worker(i):
            prepared = registry.compile("$.a", engine="jsonski", limits=Limits())
            for _ in range(50):
                indexed = corpus.indexed(prepared)
                with lock:
                    indexes.append(indexed)

        hammer(worker)
        # Every thread, cold or warm, must see the same stage-1 index:
        # a duplicated build means the lock let two first-touches in.
        assert len(set(map(id, indexes))) == 1
