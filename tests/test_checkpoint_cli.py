"""CLI checkpoint flags: --checkpoint / --checkpoint-every / --resume.

Covers the in-process paths (flag validation, run-to-completion, resume,
the exit-code table) and the real-signal path: a subprocess interrupted
by SIGTERM must exit with code 6, leave a valid checkpoint behind, and
resume to byte-identical combined output.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXIT_CODES, EXIT_INTERRUPTED, exit_code_table, main

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
REPO = os.path.dirname(SRC)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture()
def jsonl_file(tmp_path):
    path = tmp_path / "docs.jsonl"
    lines = [json.dumps({"a": {"b": i}}).encode() for i in range(40)]
    lines[17] = b'{"a": '  # one malformed record
    path.write_bytes(b"\n".join(lines) + b"\n")
    return str(path)


@pytest.fixture()
def big_file(tmp_path):
    path = tmp_path / "big.json"
    rows = [{"name": f"n{i}", "v": i} for i in range(500)]
    path.write_bytes(json.dumps({"rows": rows}).encode())
    return str(path)


class TestExitCodeTable:
    def test_epilog_matches_constants(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        for code, meaning in EXIT_CODES.items():
            assert f"{code}  {meaning}" in help_text

    def test_table_covers_zero_through_six_contiguously(self):
        assert sorted(EXIT_CODES) == list(range(7))
        assert EXIT_CODES[EXIT_INTERRUPTED].startswith("interrupted")

    def test_docs_table_matches_constants(self):
        api_md = open(os.path.join(REPO, "docs", "api.md")).read()
        for code, meaning in EXIT_CODES.items():
            assert f"| {code} | {meaning} |" in api_md, (
                f"docs/api.md exit-code table is missing or stale for code {code}"
            )

    def test_exit_code_table_renders_every_code(self):
        text = exit_code_table()
        assert text.startswith("exit codes:")
        assert all(str(code) in text for code in EXIT_CODES)


class TestFlagValidation:
    def test_resume_requires_checkpoint(self, jsonl_file):
        code, _, err = run_cli(["$.a.b", jsonl_file, "--jsonl", "--resume"])
        assert code == 2 and "--checkpoint" in err

    def test_checkpoint_rejects_paths_flag(self, jsonl_file):
        code, _, err = run_cli(
            ["$.a.b", jsonl_file, "--jsonl", "--checkpoint", jsonl_file + ".ck", "--paths"]
        )
        assert code == 2

    def test_single_record_checkpoint_needs_jsonski(self, big_file, tmp_path):
        code, _, err = run_cli(
            ["$.rows[*].v", big_file, "--engine", "rds",
             "--checkpoint", str(tmp_path / "ck")]
        )
        assert code == 2 and "jsonski" in err


class TestRecordMode:
    def test_run_and_resume_after_completion(self, jsonl_file, tmp_path):
        ck = str(tmp_path / "run.ckpt")
        code, out, err = run_cli(
            ["$.a.b", jsonl_file, "--jsonl", "--checkpoint", ck, "--checkpoint-every", "5"]
        )
        assert code == 0
        assert len(out.splitlines()) == 39  # one record malformed
        assert "skipped" in err
        # Resuming a completed run does not redo or re-emit anything.
        code2, out2, err2 = run_cli(
            ["$.a.b", jsonl_file, "--jsonl", "--checkpoint", ck, "--resume", "--count"]
        )
        assert code2 == 0 and out2.strip() == "39"

    def test_fresh_run_clears_stale_checkpoint(self, jsonl_file, tmp_path):
        ck = str(tmp_path / "run.ckpt")
        run_cli(["$.a.b", jsonl_file, "--jsonl", "--checkpoint", ck])
        # Without --resume a second run starts from scratch (same output).
        code, out, _ = run_cli(["$.a.b", jsonl_file, "--jsonl", "--checkpoint", ck])
        assert code == 0 and len(out.splitlines()) == 39


class TestSingleRecordMode:
    def test_large_record_checkpointed_run(self, big_file, tmp_path):
        ck = str(tmp_path / "big.ckpt")
        code, out, _ = run_cli(
            ["$.rows[*].name", big_file, "--checkpoint", ck,
             "--checkpoint-every", "4096", "--count"]
        )
        assert code == 0 and out.strip() == "500"

    def test_resume_after_completion_reprints(self, big_file, tmp_path):
        ck = str(tmp_path / "big.ckpt")
        run_cli(["$.rows[*].v", big_file, "--checkpoint", ck, "--count"])
        code, out, _ = run_cli(
            ["$.rows[*].v", big_file, "--checkpoint", ck, "--resume", "--count"]
        )
        assert code == 0 and out.strip() == "500"

    def test_resume_with_different_query_rejected(self, big_file, tmp_path):
        ck = str(tmp_path / "big.ckpt")
        run_cli(["$.rows[*].v", big_file, "--checkpoint", ck, "--count"])
        code, _, err = run_cli(
            ["$.rows[*].name", big_file, "--checkpoint", ck, "--resume", "--count"]
        )
        assert code == 2 and "query" in err


class TestSignalInterrupt:
    """Real SIGTERM against a subprocess: exit 6, then resume to equality."""

    def _write_stream(self, tmp_path, n=30_000):
        path = tmp_path / "many.jsonl"
        with open(path, "wb") as handle:
            for i in range(n):
                handle.write(json.dumps({"a": {"b": i}}).encode() + b"\n")
        return str(path)

    def _spawn(self, argv, stdout):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=stdout, stderr=subprocess.PIPE, env=env,
        )

    def test_sigterm_exits_6_and_resume_is_byte_identical(self, tmp_path):
        stream_path = self._write_stream(tmp_path)
        ck = str(tmp_path / "run.ckpt")
        ref_path = tmp_path / "ref.out"
        out_path = tmp_path / "part.out"

        with open(ref_path, "wb") as ref_out:
            proc = self._spawn(
                ["$.a.b", stream_path, "--jsonl", "--checkpoint", ck + ".ref"], ref_out
            )
            assert proc.wait(timeout=120) == 0

        with open(out_path, "wb") as part_out:
            proc = self._spawn(
                ["$.a.b", stream_path, "--jsonl", "--checkpoint", ck,
                 "--checkpoint-every", "500"],
                part_out,
            )
            # Let it make some progress, then interrupt.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            stderr = proc.stderr.read().decode()
        if code == 0:
            pytest.skip("run finished before the signal landed (slow machine?)")
        assert code == EXIT_INTERRUPTED, stderr
        assert "resume" in stderr

        with open(out_path, "ab") as part_out:
            proc = self._spawn(
                ["$.a.b", stream_path, "--jsonl", "--checkpoint", ck, "--resume"],
                part_out,
            )
            assert proc.wait(timeout=120) == 0

        assert out_path.read_bytes() == ref_path.read_bytes()
