"""JSONSki engine behaviour tests (Algorithm 2)."""

from __future__ import annotations

import json

import pytest

from repro.engine import JsonSki
from repro.errors import JsonSyntaxError
from repro.reference import evaluate_bytes


class TestBasicMatching:
    def test_figure1_query(self, tweet_record):
        assert JsonSki("$.place.name").run(tweet_record).values() == ["Manhattan"]

    def test_match_offsets_and_text(self):
        data = b'{"place": {"name": "Manhattan"}}'
        match = JsonSki("$.place.name").run(data)[0]
        assert match.text == b'"Manhattan"'
        assert data[match.start : match.end] == match.text

    def test_container_valued_match_text_is_raw(self):
        data = b'{"a": { "b" : [ 1 , 2 ] }}'
        match = JsonSki("$.a").run(data)[0]
        assert match.text == b'{ "b" : [ 1 , 2 ] }'

    def test_primitive_match_trims_whitespace(self):
        data = b'{"a": 42   , "b": 1}'
        assert JsonSki("$.a").run(data)[0].text == b"42"

    def test_root_array(self):
        data = b'[{"x": 1}, {"x": 2}]'
        assert JsonSki("$[*].x").run(data).values() == [1, 2]

    def test_no_match(self):
        assert len(JsonSki("$.zzz").run(b'{"a": 1}')) == 0

    def test_primitive_root_never_matches(self):
        assert len(JsonSki("$.a").run(b"42")) == 0

    def test_multiple_runs_reuse_engine(self):
        engine = JsonSki("$.a")
        assert engine.run(b'{"a": 1}').values() == [1]
        assert engine.run(b'{"a": 2}').values() == [2]


class TestEdgeCases:
    def test_empty_object_and_array(self):
        assert len(JsonSki("$.a.b").run(b'{"a": {}}')) == 0
        assert len(JsonSki("$.a[0]").run(b'{"a": []}')) == 0

    def test_heavy_whitespace(self):
        data = b'{\n  "a" :\t{\r\n "b" : [ 1 ,\n 2 ] } }'
        assert JsonSki("$.a.b[1]").run(data).values() == [2]

    def test_escapes_in_names_and_values(self):
        data = rb'{"we\"ird": {"k\\ey": "va\"l{ue"}}'
        assert JsonSki(r"$['we\"ird']['k\\ey']").run(data).values() == ['va"l{ue']

    def test_metachars_inside_strings(self):
        data = b'{"a": "}{][,:", "b": 7}'
        assert JsonSki("$.b").run(data).values() == [7]

    def test_duplicate_like_prefix_names(self):
        data = b'{"nam": 1, "namex": 2, "name": 3}'
        assert JsonSki("$.name").run(data).values() == [3]

    def test_deep_nesting(self):
        depth = 60
        data = (b'{"a":' * depth) + b"1" + (b"}" * depth)
        query = "$" + ".a" * depth
        assert JsonSki(query).run(data).values() == [1]

    def test_unicode_content(self):
        data = json.dumps({"名前": "東京", "x": ["é", "ü"]}, ensure_ascii=False).encode()
        assert JsonSki("$['名前']").run(data).values() == ["東京"]
        assert JsonSki("$.x[1]").run(data).values() == ["ü"]

    def test_numbers_in_all_notations(self):
        data = b'{"a": [-1, 0.5, 1e9, -2E-3, 123456789012345678]}'
        assert JsonSki("$.a[*]").run(data).values() == [-1, 0.5, 1e9, -2e-3, 123456789012345678]

    def test_record_with_trailing_newline(self):
        assert JsonSki("$.a").run(b'{"a": 1}\n').values() == [1]


class TestIndexConstraints:
    def test_slice_and_tail_skip(self):
        data = b"[0, 1, 2, 3, 4, 5]"
        assert JsonSki("$[2:4]").run(data).values() == [2, 3]

    def test_single_index(self):
        assert JsonSki("$[3]").run(b"[0, 1, 2, 3, 4]").values() == [3]

    def test_out_of_range(self):
        assert len(JsonSki("$[9]").run(b"[0, 1]")) == 0

    def test_range_with_structured_elements(self):
        data = b'[{"i": 0}, {"i": 1}, {"i": 2}, {"i": 3}]'
        assert JsonSki("$[1:3].i").run(data).values() == [1, 2]

    def test_heterogeneous_skipping_keeps_counter(self):
        data = b'[[9], "s", {"i": "hit"}, {"i": "also"}, 4]'
        assert JsonSki("$[2:4].i").run(data).values() == ["hit", "also"]


class TestModesAndChunks:
    @pytest.mark.parametrize("mode", ["vector", "word"])
    @pytest.mark.parametrize("chunk_size", [64, 128, 1 << 16])
    def test_configurations_agree(self, mode, chunk_size, tweet_record):
        engine = JsonSki("$.place.bounding_box.pos[1]", mode=mode, chunk_size=chunk_size)
        assert engine.run(tweet_record).values() == [[-74.026675, 40.877483]]

    def test_bounded_cache_on_long_input(self):
        items = b",".join(b'{"v": %d}' % i for i in range(500))
        data = b'{"it": [' + items + b"]}"
        engine = JsonSki("$.it[*].v", chunk_size=64, cache_chunks=2)
        assert engine.run(data).values() == list(range(500))


class TestStats:
    def test_stats_disabled_by_default(self):
        engine = JsonSki("$.a")
        engine.run(b'{"a": 1}')
        assert engine.last_stats is None

    def test_groups_attributed(self):
        data = b'{"skipme": {"big": [1,2,3]}, "a": {"x": 1}, "tail1": 1, "tail2": 2}'
        engine = JsonSki("$.a", collect_stats=True)
        engine.run(data)
        stats = engine.last_stats
        assert stats.chars["G2"] > 0  # skipme's value
        assert stats.chars["G3"] > 0  # the matched output
        assert stats.chars["G4"] > 0  # tail after the match
        assert stats.total_length == len(data)
        assert 0 < stats.overall_ratio <= 1

    def test_g1_and_g5(self):
        data = b'{"p": 1, "q": 2, "obj": {"a": [0, 1, 2, 3, 4, 5]}}'
        engine = JsonSki("$.obj.a[3:5]", collect_stats=True)
        engine.run(data)
        assert engine.last_stats.chars["G1"] > 0
        assert engine.last_stats.chars["G5"] > 0

    def test_ratios_sum_to_overall(self):
        engine = JsonSki("$.obj.a[3:5]", collect_stats=True)
        engine.run(b'{"p": 1, "obj": {"a": [0,1,2,3,4,5]}}')
        row = engine.last_stats.as_row()
        assert abs(sum(row[g] for g in "G1 G2 G3 G4 G5".split()) - row["Overall"]) < 1e-12


class TestDescendantExtension:
    def test_basic(self):
        data = b'{"a": {"b": 1}, "b": 2, "c": [{"b": 3}]}'
        assert JsonSki("$..b").run(data).values() == [1, 2, 3]

    def test_nested_matches_pre_order(self):
        data = b'{"b": {"b": 1}}'
        assert JsonSki("$..b").run(data).values() == [{"b": 1}, 1]

    def test_mixed_with_children(self):
        data = b'{"r": {"x": {"t": 1}, "t": {"q": 2}}}'
        assert JsonSki("$.r..t").run(data).values() == evaluate_bytes("$.r..t", data)


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(JsonSyntaxError):
            JsonSki("$.a").run(b"")
        with pytest.raises(JsonSyntaxError):
            JsonSki("$.a").run(b"   \n ")

    def test_unclosed_object(self):
        with pytest.raises(JsonSyntaxError):
            JsonSki("$.zz").run(b'{"a": {"b": 1}')

    def test_garbage_delimiter_on_examined_path(self):
        # A wildcard query disables G4 skipping, so the engine actually
        # reaches the bogus ';' delimiter.
        with pytest.raises(JsonSyntaxError):
            JsonSki("$.*.b").run(b'{"a": {"b": 1}; "c": {"b": 2}}')

    def test_fastforwarded_regions_not_validated(self):
        # Paper Section 3.3: skipped segments only get pairing checks, so
        # nonsense inside a skipped value goes unnoticed.  This documents
        # (and pins) that behaviour.
        data = b'{"skip": {"totally": not json !!}, "a": 1}'
        assert JsonSki("$.a").run(data).values() == [1]
