"""SAX-style event stream tests."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synth import random_json
from repro.engine.events import Event, depth_histogram, discover_paths, iter_events, key_frequencies
from repro.errors import JsonSyntaxError
from repro.jsonpath.parser import parse_path
from repro.reference import evaluate_bytes


class TestEventStream:
    def test_kinds_in_order(self):
        kinds = [e.kind for e in iter_events(b'{"a": [1, {"b": 2}], "c": 3}')]
        assert kinds == [
            "start_object", "key", "start_array", "primitive",
            "start_object", "key", "primitive", "end_object",
            "end_array", "key", "primitive", "end_object",
        ]

    def test_offsets_slice_exactly(self):
        data = b'{"key": "value", "n": 42}'
        events = {(e.kind, e.value): e for e in iter_events(data)}
        key_event = events[("key", "key")]
        assert data[key_event.start : key_event.end] == b'"key"'
        primitives = [e for e in iter_events(data) if e.kind == "primitive"]
        assert data[primitives[0].start : primitives[0].end] == b'"value"'
        assert data[primitives[1].start : primitives[1].end] == b"42"

    def test_depths(self):
        events = list(iter_events(b'{"a": {"b": [1]}}'))
        by = {(e.kind, e.start): e.depth for e in events}
        assert by[("start_object", 0)] == 0
        assert by[("start_array", 12)] == 2
        assert by[("primitive", 13)] == 3

    def test_escaped_key_decoded(self):
        events = [e for e in iter_events(rb'{"a\"b": 1}') if e.kind == "key"]
        assert events[0].value == 'a"b'

    def test_malformed_raises(self):
        for bad in (b"", b"{", b'{"a" 1}', b'{"a": 1} x'):
            with pytest.raises(JsonSyntaxError):
                list(iter_events(bad))

    def test_primitive_root(self):
        events = list(iter_events(b"  42 "))
        assert events == [Event("primitive", 2, 4, depth=0)]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_balanced_and_reconstructible(self, seed):
        rng = random.Random(seed)
        data = json.dumps(random_json(rng, 4)).encode()
        depth = 0
        n_values = 0
        for event in iter_events(data):
            if event.kind in ("start_object", "start_array"):
                assert event.depth == depth
                depth += 1
                n_values += 1
            elif event.kind in ("end_object", "end_array"):
                depth -= 1
                assert depth >= 0
            elif event.kind == "primitive":
                n_values += 1
                # every primitive slice is itself parseable
                json.loads(data[event.start : event.end])
        assert depth == 0
        assert n_values >= 1


class TestConsumers:
    DOC = b'{"a": {"b": 1, "c": [2, 3]}, "b": 4}'

    def test_depth_histogram(self):
        assert depth_histogram(self.DOC) == {0: 1, 1: 2, 2: 2, 3: 2}

    def test_key_frequencies(self):
        assert key_frequencies(self.DOC) == {"a": 1, "b": 2, "c": 1}

    def test_discover_paths(self):
        paths = discover_paths(self.DOC)
        assert paths == ["$.a", "$.a.b", "$.a.c", "$.a.c[*]", "$.b"]

    def test_discovered_paths_are_runnable_queries(self):
        doc = json.dumps({"x": [{"k v": 1}], "y": {"z": [True]}}).encode()
        for path in discover_paths(doc):
            parse_path(path)  # must be valid syntax
            assert evaluate_bytes(path, doc), path  # and must match something

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_discovery_roundtrip_property(self, seed):
        rng = random.Random(seed)
        doc = json.dumps(random_json(rng, 3)).encode()
        for path in discover_paths(doc, max_paths=50):
            parse_path(path)
            assert evaluate_bytes(path, doc) != [], (path, doc)

    def test_max_paths_cap(self):
        doc = json.dumps({f"k{i}": i for i in range(50)}).encode()
        assert len(discover_paths(doc, max_paths=10)) == 10
