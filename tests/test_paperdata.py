"""Sanity checks over the transcribed paper constants."""

from __future__ import annotations

from repro import paperdata
from repro.harness import experiments as exp


class TestTranscription:
    def test_twelve_queries_everywhere(self):
        assert len(paperdata.PAPER_TABLE5_MATCHES) == 12
        assert len(paperdata.PAPER_TABLE6) == 12
        assert set(paperdata.PAPER_TABLE5_MATCHES) == set(paperdata.PAPER_TABLE6)

    def test_table6_overall_above_95_percent(self):
        # The paper's claim: "all above 95%".
        for qid, row in paperdata.PAPER_TABLE6.items():
            assert row[5] > 0.95, qid

    def test_groups_do_not_exceed_overall(self):
        for qid, row in paperdata.PAPER_TABLE6.items():
            groups_sum = sum(v for v in row[:5] if v is not None)
            assert groups_sum <= row[5] + 0.02, qid  # transcription tolerance

    def test_nspl1_exact_44(self):
        assert paperdata.PAPER_TABLE5_MATCHES["NSPL1"] == 44

    def test_dominant_groups(self):
        assert paperdata.dominant_groups("NSPL1") == ("G4",)
        assert paperdata.dominant_groups("WP2") == ("G5",)
        assert paperdata.dominant_groups("TT1") == ("G1", "G2", "G4")

    def test_query_ids_match_dataset_registry(self):
        ours = {q.qid for _, q in exp.all_queries()}
        assert ours == set(paperdata.PAPER_TABLE6)

    def test_table4_covers_all_datasets(self):
        from repro.data.datasets import DATASETS

        assert set(paperdata.PAPER_TABLE4) == set(DATASETS)


class TestComparisons:
    SIZE = 40_000

    def test_table6_compare_rows(self):
        _, headers, rows = exp.exp_table6_compare(self.SIZE)
        assert len(rows) == 12
        assert headers[-1] == "agree"
        # At this tiny size ratios are a bit noisier, but the dominant
        # groups should still overlap the paper's on nearly every query.
        agreed = sum(1 for row in rows if row[-1] == "yes")
        assert agreed >= 10

    def test_fig10_compare_rows(self):
        _, _, rows = exp.exp_fig10_compare(self.SIZE)
        assert {row[0] for row in rows} == {"JPStream", "simdjson", "Pison"}
        for row in rows:
            assert row[1].endswith("x") and row[2].endswith("x")
