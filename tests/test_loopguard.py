"""Unit tests for the runtime loop sanitizer (repro.serve.loopguard).

The guard is the dynamic half of RS012: these tests wedge a real event
loop with ``time.sleep`` and assert the watchdog both times the stall
and samples the loop thread's stack mid-stall, then assert a healthy
loop stays silent (the property serve_chaos enforces end to end).
"""

from __future__ import annotations

import asyncio
import re
import time

from repro.serve.loopguard import LoopGuard


def _run_guarded(body_coro_factory, **kwargs) -> LoopGuard:
    async def main() -> LoopGuard:
        guard = LoopGuard(**kwargs)
        guard.install(asyncio.get_running_loop())
        try:
            await body_coro_factory()
        finally:
            guard.stop()
        return guard

    return asyncio.run(main())


def test_healthy_loop_records_nothing():
    async def body():
        for _ in range(10):
            await asyncio.sleep(0.01)

    guard = _run_guarded(body, threshold=0.05, interval=0.005)
    assert guard.blocked() == []
    assert guard.summary() == "loopguard: 0 blocking events >= 50ms (max 0.0ms)"


def test_blocking_callback_detected_and_stack_sampled():
    async def body():
        await asyncio.sleep(0.02)
        time.sleep(0.25)  # wedge the loop thread, as a blocking call would
        await asyncio.sleep(0.02)

    guard = _run_guarded(body, threshold=0.05, interval=0.005)
    events = guard.blocked()
    assert events, "a 250ms stall above a 50ms threshold must be recorded"
    assert max(event.duration for event in events) >= 0.05
    # The watchdog samples the loop thread while it is still stuck, so
    # the report names the blocking frame, not just the delay.
    stacks = "".join(event.stack for event in events)
    assert "time.sleep(0.25)" in stacks


def test_summary_line_is_parseable():
    """serve_chaos greps this exact shape out of the server's stdout."""

    async def body():
        time.sleep(0.12)
        # Yield so the loop runs the pending probe before stop() — a
        # probe that only completes during shutdown is not a stall.
        await asyncio.sleep(0.02)

    guard = _run_guarded(body, threshold=0.05, interval=0.005)
    match = re.fullmatch(
        r"loopguard: (\d+) blocking events >= 50ms \(max (\d+\.\d)ms\)",
        guard.summary(),
    )
    assert match is not None
    assert int(match.group(1)) == len(guard.blocked()) > 0


def test_double_install_rejected():
    async def body():
        pass

    guard = _run_guarded(body, threshold=0.05)

    async def reinstall():
        try:
            guard.install(asyncio.get_running_loop())
        except RuntimeError:
            return True
        return False

    # A stopped guard may be reinstalled; an active one may not.
    async def main():
        fresh = LoopGuard()
        fresh.install(asyncio.get_running_loop())
        try:
            fresh.install(asyncio.get_running_loop())
        except RuntimeError:
            rejected = True
        else:
            rejected = False
        fresh.stop()
        return rejected

    assert asyncio.run(main())
