"""Cross-check utility tests."""

from __future__ import annotations

import io

import pytest

import repro
from repro.cli import main
from repro.crosscheck import CrossCheckFailure, cross_check, cross_check_records


class TestCrossCheck:
    def test_agreement(self, tweet_record):
        result = cross_check(tweet_record, "$.place.name")
        assert result.n_matches == 1
        assert "jsonski" in result.agreed and "stdlib" in result.agreed
        assert not result.skipped

    def test_descendant_skips_pison(self, tweet_record):
        result = cross_check(tweet_record, "$..id")
        assert "pison" in result.skipped
        assert "jsonski" in result.agreed

    def test_describe(self, tweet_record):
        text = cross_check(tweet_record, "$.user.id").describe()
        assert "engines agree" in text and "JSONSki" in text

    def test_failure_carries_facts(self):
        class Broken:
            def run(self, data):
                from repro.engine.output import MatchList

                return MatchList()

        import repro.crosscheck as cc

        original = cc.make_engine
        cc.make_engine = lambda name, path: Broken()
        try:
            with pytest.raises(CrossCheckFailure) as info:
                cross_check(b'{"a": 1}', "$.a", engines=("jsonski",))
            assert info.value.engine == "jsonski"
            assert info.value.expected == ["1"]
        finally:
            cc.make_engine = original

    def test_records_mode(self):
        payload = b'{"a": 1}\n{"a": 2}\n'
        results = cross_check_records(payload, "$.a")
        assert [r.n_matches for r in results] == [1, 1]

    def test_cli_flag(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_bytes(b'{"a": [5, 6]}')
        out = io.StringIO()
        assert main(["$.a[*]", str(path), "--cross-check"], out=out, err=io.StringIO()) == 0
        assert "engines agree" in out.getvalue()

    def test_cli_flag_jsonl(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": 1}\n{"a": 2}\n')
        out = io.StringIO()
        assert main(["$.a", str(path), "--jsonl", "--cross-check"], out=out, err=io.StringIO()) == 0
        assert "2 records" in out.getvalue()
