"""Tests for the extension surface: unions, explain, stdlib engine,
record-boundary detection, debug rendering."""

from __future__ import annotations

import json
import random

import pytest

import repro
from repro.bits import debug
from repro.data.synth import random_json
from repro.jsonpath.ast import MultiIndex, MultiName
from repro.query.explain import explain
from repro.reference import evaluate_bytes
from repro.stream.records import RecordStream


class TestUnionSelectors:
    def test_parse_and_normalize(self):
        path = repro.parse_path("$[3,1,1]")
        assert path.steps == (MultiIndex((1, 3)),)
        path = repro.parse_path("$['b','a']")
        assert path.steps == (MultiName(("a", "b")),)

    def test_document_order_matches(self):
        doc = b'{"c": 1, "a": 2, "b": 3}'
        assert repro.JsonSki("$['b','c']").run(doc).values() == [1, 3]

    def test_index_union_with_g5_envelope(self):
        qa = repro.compile_query("$[2,5]")
        assert qa.element_range(qa.start_state) == (2, 6)
        doc = b"[0, 1, 2, 3, 4, 5, 6]"
        assert repro.JsonSki("$[2,5]").run(doc).values() == [2, 5]

    def test_union_in_deep_query(self):
        doc = b'{"pd": [{"a": 1, "b": 2, "c": 3}, {"b": 4}]}'
        assert repro.JsonSki("$.pd[*]['a','c']").run(doc).values() == [1, 3]

    @pytest.mark.parametrize("engine_name", ["jsonski", "jpstream", "rapidjson", "simdjson", "pison", "stdlib"])
    def test_all_engines(self, engine_name):
        doc = b'{"x": [10, 20, 30], "y": {"p": 1, "q": 2}}'
        assert repro.ENGINES[engine_name]("$.x[0,2]").run(doc).values() == [10, 30]
        assert repro.ENGINES[engine_name]("$.y['p','q']").run(doc).values() == [1, 2]


class TestExplain:
    def test_plan_levels(self):
        plan = explain("$.pd[*].cp[1:3].id")
        assert len(plan.levels) == 5
        assert plan.levels[0].expected_value == "array"
        assert plan.levels[0].g4_object_skip
        assert plan.levels[3].g5_window == (1, 3)
        assert plan.levels[4].expected_value == "unknown"

    def test_descendant_disables_inference_below(self):
        plan = explain("$.a..b.c")
        assert plan.has_descendant
        assert plan.levels[0].expected_value == "unknown"  # next step is '..'
        assert not plan.levels[1].g4_object_skip
        assert plan.levels[2].expected_value == "unknown"

    def test_describe_mentions_groups(self):
        text = explain("$.a[2:4].b").describe()
        assert "G1" in text and "G4" in text and "G5" in text

    def test_cli_explain(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["$.a[1:2]", "--explain"], out=out, err=io.StringIO()) == 0
        assert "G5" in out.getvalue()


class TestStdlibEngine:
    def test_values_match_oracle(self):
        rng = random.Random(4)
        doc = json.dumps(random_json(rng, 4)).encode()
        engine = repro.StdlibJson("$.a[*]")
        assert engine.run(doc).values() == evaluate_bytes("$.a[*]", doc)

    def test_rejects_malformed_with_library_error(self):
        with pytest.raises(repro.JsonSyntaxError):
            repro.StdlibJson("$.a").run(b'{"a": nope}')

    def test_match_text_is_canonical_json(self):
        match = repro.StdlibJson("$.a").run(b'{"a": { "b" : 1 }}')[0]
        assert json.loads(match.text) == {"b": 1}


class TestFromConcatenated:
    def test_back_to_back_records(self):
        payload = b'{"a": 1} {"a": 2}\n\n[3, 4]{"a": 5}'
        stream = RecordStream.from_concatenated(payload)
        assert len(stream) == 4
        assert repro.JsonSki("$.a").run_records(stream).values() == [1, 2, 5]

    def test_nested_closings_do_not_split(self):
        payload = b'{"a": {"b": [1, 2]}}{"c": 3}'
        stream = RecordStream.from_concatenated(payload)
        assert len(stream) == 2

    def test_strings_with_braces(self):
        payload = b'{"s": "}{"} {"t": "]["}'
        assert len(RecordStream.from_concatenated(payload)) == 2

    def test_garbage_between_records_rejected(self):
        with pytest.raises(repro.JsonSyntaxError):
            RecordStream.from_concatenated(b'{"a": 1} junk {"a": 2}')

    def test_unclosed_record_rejected(self):
        with pytest.raises(repro.JsonSyntaxError):
            RecordStream.from_concatenated(b'{"a": 1} {"b": ')

    def test_empty_payload(self):
        assert len(RecordStream.from_concatenated(b"  \n ")) == 0


class TestDebugRendering:
    DOC = b'{"a{": ",", "b": [1]}'

    def test_render_classes_filters_strings(self):
        text = debug.render_classes(self.DOC)
        lines = text.splitlines()
        lbrace_row = next(l for l in lines if l.endswith("LBRACE"))
        assert lbrace_row[0] == "^"
        assert "^" not in lbrace_row[1:10]  # the '{' inside "a{" is masked

    def test_render_string_mask(self):
        text = debug.render_string_mask(self.DOC)
        mask_row = text.splitlines()[-1]
        assert mask_row[1] == "#"  # opening quote of "a{"

    def test_render_interval(self):
        text = debug.render_interval(b"abc:def", 0, 3)
        assert "[==" in text

    def test_render_trace_and_coverage(self):
        data = b'{"skip": [1, 2, 3], "a": 9}'
        matches, events = repro.JsonSki("$.a").trace_run(data)
        rendered = debug.render_trace(data, events)
        assert "G2" in rendered
        summary = debug.coverage_summary(data, events)
        assert "fast-forwarded" in summary
