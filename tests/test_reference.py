"""Reference evaluator semantics tests (it anchors everything else)."""

from __future__ import annotations

from repro.reference import evaluate, evaluate_bytes, evaluate_with_paths


class TestChildAndWildcard:
    def test_child(self):
        assert evaluate("$.a.b", {"a": {"b": 7}}) == [7]

    def test_missing_child(self):
        assert evaluate("$.a.b", {"a": {}}) == []

    def test_child_on_non_object(self):
        assert evaluate("$.a.b", {"a": [1, 2]}) == []

    def test_wildcard_child_order(self):
        assert evaluate("$.*", {"b": 1, "a": 2}) == [1, 2]  # document order


class TestIndexing:
    def test_index(self):
        assert evaluate("$[1]", [10, 20, 30]) == [20]

    def test_index_out_of_range(self):
        assert evaluate("$[5]", [1]) == []

    def test_slice(self):
        assert evaluate("$[1:3]", [0, 1, 2, 3]) == [1, 2]

    def test_slice_clamped(self):
        assert evaluate("$[2:99]", [0, 1, 2, 3]) == [2, 3]

    def test_open_slice(self):
        assert evaluate("$[2:]", [0, 1, 2, 3]) == [2, 3]

    def test_index_on_object(self):
        assert evaluate("$[0]", {"0": "x"}) == []


class TestDescendant:
    def test_all_depths(self):
        doc = {"b": 1, "a": {"b": 2, "c": [{"b": 3}]}}
        assert evaluate("$..b", doc) == [1, 2, 3]

    def test_pre_order_nested(self):
        doc = {"b": {"b": "inner"}}
        assert evaluate("$..b", doc) == [{"b": "inner"}, "inner"]

    def test_descendant_then_child(self):
        doc = {"x": {"t": {"v": 1}}, "t": {"v": 2}}
        assert evaluate("$..t.v", doc) == [1, 2]


class TestPaths:
    def test_normalized_paths(self):
        doc = {"a": [{"b": 1}, {"b": 2}]}
        got = evaluate_with_paths("$.a[*].b", doc)
        assert got == [(("a", 0, "b"), 1), (("a", 1, "b"), 2)]


class TestBytesEntry:
    def test_bytes_and_str(self):
        assert evaluate_bytes("$.a", b'{"a": 1}') == [1]
        assert evaluate_bytes("$.a", '{"a": "é"}') == ["é"]
