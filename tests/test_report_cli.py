"""Report module entry points (text, markdown, --compare-paper)."""

from __future__ import annotations

import sys

from repro.harness import report


class TestGenerators:
    SIZE = 25_000

    def test_text_report_has_all_sections(self):
        out = report.generate(self.SIZE, workers=4, fast=True)
        for fragment in ("Table 4", "Table 5", "Figure 10", "Figure 11",
                         "Figure 12", "Figure 13", "Figure 14", "Table 6",
                         "Ablation A1", "Ablation A2", "Ablation A3"):
            assert fragment in out, fragment

    def test_compare_sections(self):
        sections = report._compare_sections(self.SIZE)
        titles = [title for title, _, _ in sections]
        assert any("paper vs measured" in t for t in titles)
        assert any("headline" in t for t in titles)


class TestMain:
    def test_main_compare_paper(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["report", "--compare-paper", "--size", "25000"])
        report.main()
        out = capsys.readouterr().out
        assert "paper overall" in out and "measured" in out

    def test_main_markdown(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["report", "--markdown", "--fast", "--size", "25000", "--workers", "4"]
        )
        report.main()
        out = capsys.readouterr().out
        assert out.startswith("# Measured results")
