"""Tests for structural intervals (Definition 4.1, Algorithm 3)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.intervals import IntervalBuilder, StructuralInterval
from repro.bits.strings import naive_string_mask

_DENSE = st.lists(st.sampled_from(list(b'a" {}[]:,')), max_size=300).map(bytes)


def _builder(data: bytes, chunk_size: int = 64) -> IntervalBuilder:
    return IntervalBuilder(BufferIndex(data, chunk_size=chunk_size, cache_chunks=None))


def _oracle_next(data: bytes, cls: CharClass, pos: int) -> int | None:
    mask = naive_string_mask(data)
    for i in range(pos, len(data)):
        if data[i] in cls.chars and not (mask.in_string >> i & 1):
            return i
    return None


class TestStructuralInterval:
    def test_contains(self):
        iv = StructuralInterval(CharClass.COLON, 3, 8)
        assert 3 in iv and 7 in iv
        assert 8 not in iv and 2 not in iv

    def test_open_interval_contains_everything_after(self):
        iv = StructuralInterval(CharClass.COLON, 3, None)
        assert iv.is_open
        assert 1000 in iv

    def test_length(self):
        assert StructuralInterval(CharClass.COLON, 3, 8).length_to(100) == 5
        assert StructuralInterval(CharClass.COLON, 3, None).length_to(10) == 7


class TestBuild:
    def test_figure1_style(self):
        data = b'{ "user": { "id": 6253282 } }'
        ib = _builder(data)
        iv = ib.build(0, CharClass.COLON)
        assert iv.start == 0
        assert iv.end == data.index(b":")

    def test_pos_itself_can_delimit(self):
        data = b":abc:"
        iv = _builder(data).build(0, CharClass.COLON)
        assert iv.end == 0

    def test_no_occurrence_gives_open_interval(self):
        iv = _builder(b"abcdef").build(2, CharClass.COLON)
        assert iv.is_open

    def test_pseudo_metachars_excluded(self):
        data = b'"a:b" :'
        iv = _builder(data).build(0, CharClass.COLON)
        assert iv.end == 6

    def test_spans_word_boundaries(self):
        data = b"a" * 100 + b":"
        iv = _builder(data).build(0, CharClass.COLON)
        assert iv.end == 100

    @given(_DENSE, st.sampled_from([CharClass.COLON, CharClass.COMMA, CharClass.LBRACE]))
    def test_matches_oracle(self, data, cls):
        ib = _builder(data)
        for pos in range(len(data) + 1):
            iv = ib.build(pos, cls)
            assert iv.start == pos
            assert iv.end == _oracle_next(data, cls, pos)


class TestNext:
    def test_enumerates_successive_intervals(self):
        data = b"a,bb,ccc,"
        ib = _builder(data)
        ends = [ib.next(CharClass.COMMA).end for _ in range(3)]
        assert ends == [1, 4, 8]

    def test_reset(self):
        data = b"a,b,"
        ib = _builder(data)
        assert ib.next(CharClass.COMMA).end == 1
        ib.reset(CharClass.COMMA)
        assert ib.next(CharClass.COMMA).end == 1

    def test_independent_cursors_per_class(self):
        data = b"a,b:c,d:"
        ib = _builder(data)
        assert ib.next(CharClass.COMMA).end == 1
        assert ib.next(CharClass.COLON).end == 3
        assert ib.next(CharClass.COMMA).end == 5
        assert ib.next(CharClass.COLON).end == 7


class TestWordBitmaps:
    @given(_DENSE)
    def test_bitmap_union_covers_interval(self, data):
        """The per-word bitmaps must set exactly the interval's positions
        (Figure 8's multi-word spill)."""
        if not data:
            return
        ib = _builder(data)
        iv = ib.build(0, CharClass.COMMA)
        covered = set()
        for word_base, bitmap in ib.word_bitmaps(iv):
            for bit in range(64):
                if bitmap >> bit & 1:
                    covered.add(word_base + bit)
        end = iv.end if iv.end is not None else len(data)
        assert covered == set(range(0, end))
