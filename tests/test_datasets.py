"""Dataset generator tests (Table 4 / Table 5 substrate)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.data.datasets import DATASETS, dataset, large_record, record_stream
from repro.data.stats import structural_stats
from repro.reference import evaluate_bytes

SIZE = 60_000


@pytest.fixture(scope="module")
def larges():
    return {name: large_record(name, SIZE, seed=11) for name in DATASETS}


@pytest.fixture(scope="module")
def streams():
    return {name: record_stream(name, SIZE, seed=11) for name in DATASETS}


class TestValidity:
    def test_large_records_are_valid_json(self, larges):
        for name, data in larges.items():
            json.loads(data)

    def test_small_records_are_valid_json(self, streams):
        for name, stream in streams.items():
            assert len(stream) > 1, name
            for record in stream:
                json.loads(record)

    def test_sizes_near_target(self, larges):
        for name, data in larges.items():
            assert SIZE <= len(data) <= SIZE * 1.5, (name, len(data))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert large_record("TT", 20_000, seed=3) == large_record("TT", 20_000, seed=3)

    def test_different_seed_differs(self):
        assert large_record("TT", 20_000, seed=3) != large_record("TT", 20_000, seed=4)


class TestQueries:
    def test_every_query_matches_oracle(self, larges):
        for name, spec in DATASETS.items():
            for q in spec.queries:
                expected = evaluate_bytes(q.large, larges[name])
                got = repro.JsonSki(q.large).run(larges[name]).values()
                assert got == expected, q.qid

    def test_main_queries_find_matches(self, larges):
        # The rare-attribute queries (BB2/GMD2/WM1/WP1/WP2) may be empty at
        # tiny sizes; the structural queries must always hit.
        for qid, name, query in [
            ("TT1", "TT", "$[*].en.urls[*].url"),
            ("TT2", "TT", "$[*].text"),
            ("BB1", "BB", "$.pd[*].cp[1:3].id"),
            ("GMD1", "GMD", "$[*].rt[*].lg[*].st[*].dt.tx"),
            ("NSPL2", "NSPL", "$.dt[*][*][2:4]"),
            ("WM2", "WM", "$.it[*].nm"),
        ]:
            assert len(repro.JsonSki(query).run(larges[name])) > 0, qid

    def test_nspl1_exact_match_count(self, larges):
        # Table 5: exactly 44 column names, found early in the stream.
        assert len(repro.JsonSki("$.mt.vw.co[*].nm").run(larges["NSPL"])) == 44

    def test_small_queries_consistent_with_large(self, larges, streams):
        """Where both formats exist, total match counts agree (the same
        units underlie both)."""
        for name, spec in DATASETS.items():
            for q in spec.queries:
                if q.small is None:
                    continue
                engine = repro.JsonSki(q.small)
                small_total = len(engine.run_records(streams[name]))
                # Large inputs wrap the same number of units only when the
                # unit lists match; sizes match here, so compare counts.
                large_total = len(repro.JsonSki(q.large).run(larges[name]))
                assert small_total == large_total, q.qid


class TestStructuralCharacter:
    """The Table 4 *shape* each generator must reproduce."""

    def test_wm_nearly_array_free(self, larges):
        stats = structural_stats(larges["WM"])
        assert stats.n_objects > 20 * max(stats.n_arrays, 1)

    def test_nspl_primitive_matrix(self, larges):
        stats = structural_stats(larges["NSPL"])
        assert stats.n_arrays > 5 * stats.n_objects
        assert stats.n_primitives > 10 * stats.n_attributes

    def test_gmd_object_heavy(self, larges):
        stats = structural_stats(larges["GMD"])
        assert stats.n_objects > 5 * stats.n_arrays
        assert stats.depth >= 7

    def test_wp_deep_objects(self, larges):
        stats = structural_stats(larges["WP"])
        assert stats.n_objects > 3 * stats.n_arrays
        assert stats.depth >= 6

    def test_tt_mixed(self, larges):
        stats = structural_stats(larges["TT"])
        assert stats.depth >= 5
        assert 0.3 < stats.n_arrays / stats.n_objects < 3


class TestRegistry:
    def test_lookup(self):
        assert dataset("BB").root_key == "pd"
        with pytest.raises(KeyError):
            dataset("NOPE")

    def test_twelve_queries_total(self):
        assert sum(len(s.queries) for s in DATASETS.values()) == 12

    def test_paper_exclusions(self):
        # NSPL1 and WP2 are not applicable to small records (Section 5.2).
        by_id = {q.qid: q for s in DATASETS.values() for q in s.queries}
        assert by_id["NSPL1"].small is None
        assert by_id["WP2"].small is None
        assert sum(1 for q in by_id.values() if q.small is not None) == 10
