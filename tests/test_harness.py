"""Harness tests: tables, memory measurement, experiment functions."""

from __future__ import annotations

import pytest

from repro.harness.memory import measure_engine_peak, measure_peak
from repro.harness.runner import METHOD_LABELS, make_engine, time_run
from repro.harness.tables import format_bytes, format_ratio, render_series, render_table
from repro.harness import experiments as exp

SIZE = 40_000


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bbb"], [[1, 2.5], ["xx", 0.00001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("x", [1, 2], {"m": [0.1, 0.2]})
        assert "0.1" in out and "m" in out

    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_format_ratio_paper_convention(self):
        assert format_ratio(0.0) == "0.00%"
        assert format_ratio(0.00005) == "<0.01%"
        assert format_ratio(0.9944) == "99.44%"


class TestMemory:
    def test_measure_peak_sees_allocation(self):
        def alloc():
            return bytearray(4 * 1024 * 1024)

        result, peak = measure_peak(alloc)
        assert len(result) == 4 * 1024 * 1024
        assert peak >= 4 * 1024 * 1024

    def test_engine_peak_streaming_below_preprocessing(self):
        from repro.data.datasets import large_record

        data = large_record("BB", 80_000, seed=2)
        _, streaming = measure_engine_peak(make_engine("jpstream", "$.pd[*].cp[1:3].id"), data)
        _, dom = measure_engine_peak(make_engine("rapidjson", "$.pd[*].cp[1:3].id"), data)
        assert dom > 3 * streaming  # the parse tree dwarfs the dual stack


class TestRunner:
    def test_all_methods_constructible(self):
        for method in METHOD_LABELS:
            engine = make_engine(method, "$.a")
            assert engine.run(b'{"a": 1}').values() == [1]

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_engine("mystery", "$.a")

    def test_time_run(self):
        seconds, matches = time_run(make_engine("jsonski", "$.a"), b'{"a": 1}', repeat=2)
        assert seconds >= 0 and matches.values() == [1]


class TestExperiments:
    """Smoke-run every experiment at a tiny size; shapes asserted."""

    def test_table4(self):
        title, headers, rows = exp.exp_table4(SIZE)
        assert len(rows) == 6
        assert headers[0] == "Data"

    def test_table5(self):
        _, _, rows = exp.exp_table5(SIZE)
        assert len(rows) == 12
        by_id = {r[0]: r[2] for r in rows}
        assert by_id["NSPL1"] == 44

    def test_fig10_counts_agree(self):
        _, headers, rows = exp.exp_fig10(SIZE, workers=4)
        assert len(rows) == 12
        assert len(headers) == 8  # query + 5 serial + 2 parallel

    def test_fig11(self):
        _, _, rows = exp.exp_fig11(SIZE)
        assert len(rows) == 10  # NSPL1/WP2 excluded

    def test_fig12(self):
        _, _, rows = exp.exp_fig12(SIZE, workers=4)
        assert len(rows) == 10

    def test_fig13_memory_orders(self):
        _, headers, rows = exp.exp_fig13(SIZE)
        assert len(rows) == 6

    def test_fig14(self):
        _, _, rows = exp.exp_fig14(sizes=(20_000, 40_000), simdjson_cap=30_000)
        assert rows[0][3] != "cap"  # simdjson under cap at first size
        assert rows[1][3] == "cap"

    def test_table6_ratios_high(self):
        _, _, rows = exp.exp_table6(SIZE)
        for row in rows:
            overall = row[-1]
            assert overall.endswith("%")
            assert float(overall.rstrip("%")) > 80, row

    def test_ablations(self):
        _, _, rows = exp.exp_ablation_fastforward(SIZE)
        assert len(rows) == 12
        _, _, rows = exp.exp_ablation_scanner(20_000)
        assert len(rows) == 12
        _, _, rows = exp.exp_ablation_chunksize(SIZE, chunk_sizes=(4096, 65536))
        assert len(rows) == 2
