"""Deeper coverage of the filtered (query-splitting) engine."""

from __future__ import annotations

import json

import pytest

import repro
from repro.engine.filtered import SlicePredicate
from repro.jsonpath.parser import parse_path
from repro.reference import evaluate_bytes

DOC = b'{"pd": [{"p": 5, "n": "a"}, {"p": 50, "n": "b"}, {"p": 500}]}'


class TestComposition:
    def test_delegation_is_transparent(self):
        engine = repro.JsonSki("$.pd[?(@.p > 10)].n")
        assert engine._delegate is not None
        assert engine.automaton is None
        assert engine.run(DOC).values() == ["b"]

    def test_filter_first_step(self):
        doc = b'[{"x": 1}, {"x": 5}, 3]'
        assert repro.JsonSki("$[?(@.x > 2)]").run(doc).values() == [{"x": 5}]

    def test_filter_last_step(self):
        got = repro.JsonSki("$.pd[?(@.n)]").run(DOC).values()
        assert got == [{"p": 5, "n": "a"}, {"p": 50, "n": "b"}]

    def test_two_filters_same_level_sequence(self):
        # A filter directly after a filter: the second applies to the
        # *elements of the kept elements* (which must then be arrays).
        doc = b'[[1, 9], [2], "x"]'
        got = repro.JsonSki("$[?(@[0])][?(@ > 1)]").run(doc).values()
        assert got == evaluate_bytes("$[?(@[0])][?(@ > 1)]", doc) == [9, 2]

    def test_collect_stats_reports_outer_pass(self):
        engine = repro.JsonSki("$.pd[?(@.p > 10)].n", collect_stats=True)
        engine.run(DOC)
        assert engine.last_stats is not None
        assert engine.last_stats.total_length == len(DOC)

    def test_run_records_and_count(self):
        stream = repro.RecordStream.from_records([DOC, b'{"pd": [{"p": 99, "n": "z"}]}'])
        engine = repro.JsonSki("$.pd[?(@.p > 10)].n")
        assert engine.run_records(stream).values() == ["b", "z"]
        assert engine.count(DOC) == 1

    def test_word_mode_filtered(self):
        engine = repro.JsonSki("$.pd[?(@.p > 10)].n", mode="word", chunk_size=64)
        assert engine.run(DOC).values() == ["b"]

    def test_inner_offsets_remap_through_nesting(self):
        doc = b'{"a": [ {"b": [ {"v": 7, "k": "hit"} ]} ]}'
        matches = repro.JsonSki("$.a[?(@.b)].b[?(@.v)].k").run(doc)
        assert len(matches) == 1
        assert doc[matches[0].start : matches[0].end] == b'"hit"'


class TestPredicateEngineReuse:
    def test_engines_cached_per_relpath(self):
        expr = parse_path("$[?(@.a > 1 && @.a < 9 && @.b)]").steps[0].expr
        predicate = SlicePredicate(expr)
        # @.a appears twice but compiles once.
        assert len(predicate._engines) == 2

    def test_malformed_slice_is_false_not_crash(self):
        expr = parse_path("$[?(@ == 1)]").steps[0].expr
        predicate = SlicePredicate(expr)
        assert not predicate.matches(b"not json")


class TestFilterEdgeValues:
    @pytest.mark.parametrize("doc,query,expected", [
        (b"[]", "$[?(@.x)]", []),
        (b"[null, false, 0]", "$[?(@ == null)]", [None]),
        (b"[null, false, 0]", "$[?(@ == false)]", [False]),
        (b"[null, false, 0]", "$[?(@ == 0)]", [0]),
        (b'[{"s": "b"}]', "$[?(@.s >= 'a')]", [{"s": "b"}]),
        (b'[{"s": "b"}]', "$[?(@.s >= 'c')]", []),
        (b'[[0], [1]]', "$[?(@[0] == 1)]", [[1]]),
    ])
    def test_case(self, doc, query, expected):
        assert repro.JsonSki(query).run(doc).values() == expected
        assert evaluate_bytes(query, doc) == expected

    def test_deeply_mixed_with_other_extensions(self):
        doc = json.dumps({
            "groups": [
                {"name": "g0", "members": [{"age": 10}, {"age": 40}]},
                {"name": "g1", "members": [{"age": 50}]},
            ]
        }).encode()
        q = "$.groups[0,1].members[?(@.age >= 40)].age"
        assert repro.JsonSki(q).run(doc).values() == evaluate_bytes(q, doc) == [40, 50]


class TestPredicateLimitsThreading:
    # A predicate @-path that descends 12 levels inside each candidate;
    # the depth guard must apply to the predicate's sub-engine scan, not
    # only to the outer wildcard pass.
    DEEP_QUERY = "$.items[?(@.v" + ".a" * 12 + ")].name"
    DEEP_DOC = (
        '{"items": [{"v": %s, "name": "x"}]}' % ("{\"a\":" * 12 + "1" + "}" * 12)
    ).encode()

    def test_unlimited_predicate_descends(self):
        assert repro.JsonSki(self.DEEP_QUERY).run(self.DEEP_DOC).values() == ["x"]

    def test_limits_reach_predicate_sub_engines(self):
        from repro.errors import DepthLimitError
        from repro.resilience import Limits

        engine = repro.JsonSki(self.DEEP_QUERY, limits=Limits(max_depth=6))
        with pytest.raises(DepthLimitError):
            engine.run(self.DEEP_DOC)

    def test_predicate_stores_limits(self):
        from repro.resilience import Limits

        limits = Limits(max_depth=6)
        engine = repro.JsonSki(self.DEEP_QUERY, limits=limits)
        assert engine._delegate.predicate.limits is limits
        for sub in engine._delegate.predicate._engines.values():
            assert sub.limits is limits
