"""Every example script must run end to end (small sizes via argv)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", []),
    ("twitter_stream.py", ["--bytes", "60000"]),
    ("catalog_analytics.py", ["--bytes", "60000"]),
    ("fastforward_anatomy.py", []),
    ("parallel_records.py", ["--bytes", "60000"]),
    ("multi_query.py", ["--bytes", "60000"]),
    ("jsonl_pipeline.py", ["--bytes", "60000"]),
    ("schema_discovery.py", ["--bytes", "60000"]),
    ("compare_engines.py", ["--bytes", "60000"]),
]


@pytest.mark.parametrize("script,argv", _CASES, ids=[c[0] for c in _CASES])
def test_example_runs(script, argv, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [script, *argv])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_finds_manhattan(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    assert "Manhattan" in capsys.readouterr().out
