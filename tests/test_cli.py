"""CLI tests (``python -m repro``)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


@pytest.fixture()
def record_file(tmp_path):
    path = tmp_path / "doc.json"
    path.write_bytes(b'{"place": {"name": "Manhattan"}, "tags": ["a", "b"], "n": 3}')
    return str(path)


@pytest.fixture()
def jsonl_file(tmp_path):
    path = tmp_path / "docs.jsonl"
    path.write_bytes(b'{"a": 1}\n{"b": 2}\n{"a": 3}\n')
    return str(path)


def run_cli(argv, stdin: bytes | None = None, monkeypatch=None):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestBasics:
    def test_match_printed(self, record_file):
        code, out, _ = run_cli(["$.place.name", record_file])
        assert code == 0
        assert out.strip() == "Manhattan"

    def test_no_match_exit_1(self, record_file):
        code, out, _ = run_cli(["$.nope", record_file])
        assert code == 1
        assert out == ""

    def test_raw_output(self, record_file):
        code, out, _ = run_cli(["$.place.name", record_file, "--raw"])
        assert out.strip() == '"Manhattan"'

    def test_count(self, record_file):
        code, out, _ = run_cli(["$.tags[*]", record_file, "--count"])
        assert code == 0 and out.strip() == "2"

    def test_first(self, record_file):
        code, out, _ = run_cli(["$.tags[*]", record_file, "--first"])
        assert code == 0 and out.strip() == "a"

    def test_missing_file(self):
        code, _, err = run_cli(["$.a", "/does/not/exist.json"])
        assert code == 2 and "cannot read" in err

    def test_bad_query(self, record_file):
        code, _, err = run_cli(["$.a[", record_file])
        assert code == 2 and "error:" in err

    def test_malformed_input(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b'{"a": ')
        code, _, err = run_cli(["$.a.b", str(path)])
        assert code == 4


class TestModes:
    def test_jsonl(self, jsonl_file):
        code, out, _ = run_cli(["$.a", jsonl_file, "--jsonl"])
        assert code == 0
        assert out.split() == ["1", "3"]

    def test_engines_agree(self, record_file):
        results = {}
        for engine in ("jsonski", "jpstream", "rapidjson", "simdjson", "pison"):
            code, out, _ = run_cli(["$.tags[1]", record_file, "--engine", engine])
            results[engine] = (code, out)
        assert len(set(results.values())) == 1

    def test_stats_to_stderr(self, record_file):
        code, out, err = run_cli(["$.n", record_file, "--stats"])
        assert code == 0
        assert "fast-forwarded" in err
        assert "fast-forwarded" not in out

    def test_stats_requires_jsonski(self, record_file):
        code, _, err = run_cli(["$.n", record_file, "--stats", "--engine", "jpstream"])
        assert code == 2

    def test_paths(self, record_file):
        code, out, _ = run_cli(["$.tags[*]", record_file, "--paths"])
        lines = out.strip().splitlines()
        assert lines[0].startswith("$['tags'][0]\t")
        assert lines[1].startswith("$['tags'][1]\t")
