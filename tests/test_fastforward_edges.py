"""Edge-case coverage for the fast-forward fast paths and boundaries.

The go_over_pri memchr fast paths and the name-recovery backward scan
have subtle correctness arguments (documented in the code); each claim
gets a test here, including the fallback triggers.
"""

from __future__ import annotations

import pytest

from repro.engine.fastforward import FastForwarder
from repro.errors import StreamExhaustedError
from repro.stream.buffer import StreamBuffer


def ff_for(data: bytes, chunk_size: int = 64) -> FastForwarder:
    return FastForwarder(StreamBuffer(data, chunk_size=chunk_size))


class TestGoOverPriFastPaths:
    def test_number_delimited_by_comma(self):
        data = b'{"a": 125, "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == 9

    def test_number_last_in_object(self):
        data = b'{"a": 125}'
        assert ff_for(data).go_over_pri(6, True) == 9

    def test_number_then_comma_inside_later_string(self):
        # The text comma nearest to the number IS the delimiter even
        # though another comma appears inside a following string.
        data = b'{"a": 1, "s": "x,y"}'
        assert ff_for(data).go_over_pri(6, True) == 7

    def test_number_closer_before_text_comma(self):
        # Inner object ends before any comma: the '}' must win the race.
        data = b'{"o": {"a": 1}, "b": 2}'
        assert ff_for(data).go_over_pri(12, True) == 13

    def test_string_fast_path(self):
        data = b'{"a": "plain", "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == 13

    def test_string_with_ws_before_delimiter(self):
        data = b'{"a": "x"   , "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == 12

    def test_string_with_escaped_quote_falls_back(self):
        data = rb'{"a": "x\"y", "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == 12

    def test_string_with_double_backslash_before_quote(self):
        # Closing quote preceded by a backslash that is itself escaped:
        # the memchr guard must defer to the bitmap, which knows better.
        data = rb'{"a": "x\\", "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == data.index(b",")

    def test_string_containing_comma_and_closer(self):
        data = b'{"a": ",}],[", "b": 1}'
        assert ff_for(data).go_over_pri(6, True) == 13

    def test_element_variants(self):
        data = b'[1, "a,b", [2], 3]'
        ff = ff_for(data)
        assert ff.go_over_pri(1, False) == 2
        assert ff.go_over_pri(4, False) == 9

    def test_true_false_null(self):
        data = b"[true, false, null]"
        ff = ff_for(data)
        assert ff.go_over_pri(1, False) == 5
        assert ff.go_over_pri(7, False) == 12
        assert ff.go_over_pri(14, False) == 18

    def test_exhaustion_on_truncation(self):
        with pytest.raises(StreamExhaustedError):
            ff_for(b"[125").go_over_pri(1, False)
        with pytest.raises(StreamExhaustedError):
            ff_for(b'["unterminated').go_over_pri(1, False)


class TestNameRecovery:
    def test_name_right_before_value(self):
        data = b'{"k":{"x":1}}'
        ended, name_start, name_raw, vpos = ff_for(data).go_to_obj_attr(1, "object")
        assert (name_start, name_raw) == (1, b"k")

    def test_name_with_heavy_whitespace(self):
        data = b'{ "key"   :   {"x": 1} }'
        ended, name_start, name_raw, _ = ff_for(data).go_to_obj_attr(2, "object")
        assert name_raw == b"key"

    def test_name_after_skipped_string_values(self):
        data = b'{"s1": "v{1", "s2": "v}2", "obj": {"x": 1}}'
        ended, _, name_raw, _ = ff_for(data).go_to_obj_attr(1, "object")
        assert name_raw == b"obj"

    def test_empty_name(self):
        data = b'{"": {"x": 1}}'
        ended, _, name_raw, _ = ff_for(data).go_to_obj_attr(1, "object")
        assert name_raw == b""


class TestPairingAcrossChunks:
    def test_object_spanning_many_chunks(self):
        body = b",".join(b'"k%d": {"v": %d}' % (i, i) for i in range(64))
        data = b"{" + body + b"} tail"
        for chunk in (64, 128):
            assert ff_for(data, chunk_size=chunk).go_over_obj(0) == len(data) - 5

    def test_string_straddling_chunk_boundary(self):
        # A string whose body crosses the boundary carries the in-string
        # state; the brace inside it must not confuse pairing.
        data = b'{"pad": "' + b"x" * 60 + b'{" , "a": 1}'
        assert ff_for(data, chunk_size=64).go_over_obj(0) == len(data)

    def test_backslash_run_straddling_boundary(self):
        data = b'{"pad": "' + b"y" * 53 + b"\\\\" + b'", "a": {"b": 2}} z'
        ff = ff_for(data, chunk_size=64)
        assert ff.go_over_obj(0) == len(data) - 2


class TestGoToAryElemEdges:
    def test_all_primitives_then_end(self):
        data = b"[1, 2, 3]"
        ended, end_pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert ended and end_pos == len(data) and commas == 2

    def test_empty_array(self):
        data = b"[] tail"
        ended, end_pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert ended and end_pos == 2 and commas == 0

    def test_first_element_matches(self):
        data = b'[{"x": 1}]'
        ended, pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert not ended and pos == 1 and commas == 0

    def test_deeply_mixed(self):
        data = b'[1, [2, [3]], "s", {"a": 1}]'
        ended, pos, commas = ff_for(data).go_to_ary_elem(1, "object")
        assert not ended and data[pos : pos + 1] == b"{" and commas == 3
