"""Per-baseline behaviour tests (beyond the shared differential suite)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.jpstream import JPStream
from repro.baselines.pison_like import LeveledIndex, PisonLike
from repro.baselines.rapidjson_like import RapidJsonLike, parse_dom
from repro.baselines.simdjson_like import SimdJsonLike, structural_positions
from repro.baselines.simdjson_like import parse_dom as simd_parse_dom
from repro.baselines.tokenizer import Tokenizer
from repro.baselines.tree import ArrayNode, ObjectNode, PrimitiveNode, count_nodes
from repro.errors import JsonSyntaxError, RecordTooLargeError, StreamExhaustedError, UnsupportedQueryError
from repro.stream.records import RecordStream


class TestTokenizer:
    def test_strings_with_escapes(self):
        tok = Tokenizer(rb'"a\"b\\" rest')
        assert tok.read_string() == rb'a\"b\\'
        assert tok.pos == 8

    def test_unterminated_string(self):
        with pytest.raises(StreamExhaustedError):
            Tokenizer(b'"abc').read_string()

    def test_primitive_kinds(self):
        for text, want in [(b"123,", b"123"), (b"true]", b"true"), (b"null}", b"null"), (b"-1.5e3 ", b"-1.5e3")]:
            assert Tokenizer(text).read_primitive() == want

    def test_string_primitive(self):
        assert Tokenizer(b'"x,y", 1').read_primitive() == b'"x,y"'

    def test_value_kind(self):
        assert Tokenizer(b"{").value_kind() == "object"
        assert Tokenizer(b"[").value_kind() == "array"
        assert Tokenizer(b"1").value_kind() == "primitive"
        with pytest.raises(StreamExhaustedError):
            Tokenizer(b"").value_kind()

    def test_consume_comma_or(self):
        tok = Tokenizer(b" , next")
        assert tok.consume_comma_or(0x7D) is True
        tok = Tokenizer(b" }")
        assert tok.consume_comma_or(0x7D) is False
        with pytest.raises(JsonSyntaxError):
            Tokenizer(b" ;").consume_comma_or(0x7D)


class TestRapidJsonLikeDom:
    def test_dom_shape_and_spans(self):
        data = b'{"a": [1, {"b": 2}], "c": "s"}'
        root = parse_dom(data)
        assert isinstance(root, ObjectNode)
        assert root.start == 0 and root.end == len(data)
        (name_a, arr), (name_c, prim) = root.members
        assert name_a == "a" and isinstance(arr, ArrayNode)
        assert data[arr.start : arr.end] == b'[1, {"b": 2}]'
        assert isinstance(arr.elements[0], PrimitiveNode)
        assert name_c == "c" and data[prim.start : prim.end] == b'"s"'

    def test_count_nodes(self):
        root = parse_dom(b'{"a": [1, 2], "b": {}}')
        assert count_nodes(root) == 5

    def test_malformed_raises(self):
        for bad in (b'{"a" 1}', b"[1 2]", b'{"a": }', b"{,}"):
            with pytest.raises((JsonSyntaxError, StreamExhaustedError)):
                parse_dom(bad)


class TestSimdJsonLike:
    def test_structural_positions_filtered(self):
        data = b'{"a{": ",", "b": [1]}'
        got = structural_positions(data).tolist()
        want = [i for i, c in enumerate(data) if c in b"{}[]:," and not (3 <= i <= 3 or 8 <= i <= 8)]
        assert got == want

    def test_tape_dom_equals_char_dom(self):
        data = json.dumps({"a": [1, {"b": [True, None, "x,y"]}], "c": 2.5}).encode()
        assert simd_parse_dom(data) == parse_dom(data)

    def test_record_cap(self):
        engine = SimdJsonLike("$.a", max_record_bytes=8)
        with pytest.raises(RecordTooLargeError):
            engine.run(b'{"a": 123456}')

    def test_small_chunks(self):
        data = json.dumps({"k": ["v" * 50, {"x": 1}] * 10}).encode()
        engine = SimdJsonLike("$.k[3].x", chunk_size=64)
        assert engine.run(data).values() == [1]


class TestJPStream:
    def test_empty_containers(self):
        assert JPStream("$[*]").run(b"[]").values() == []
        assert JPStream("$.a").run(b'{"a": {}}').values() == [{}]

    def test_container_match_span(self):
        data = b'[{"a": 1}, {"b": 2}]'
        matches = JPStream("$[1]").run(data)
        assert matches[0].text == b'{"b": 2}'

    def test_deep_iterative_no_recursion_limit(self):
        # The explicit dual stack must survive nesting far beyond Python's
        # recursion limit (with the depth guard disabled; the default
        # guard turns the same input into a DepthLimitError).
        import pytest

        from repro.errors import DepthLimitError
        from repro.resilience import Limits

        depth = 5000
        data = (b'{"a":' * depth) + b"1" + (b"}" * depth)
        assert len(JPStream("$.x", limits=Limits.unlimited()).run(data)) == 0
        with pytest.raises(DepthLimitError):
            JPStream("$.x").run(data)


class TestPisonLike:
    def test_leveled_index_contents(self):
        data = b'{"a": {"x": 1, "y": [1, 2]}, "b": 2}'
        idx = LeveledIndex(data, max_levels=3)
        assert idx.root_span == (0, len(data))
        assert idx.colons[0].tolist() == [4, 32]
        assert idx.colons[1].tolist() == [10, 18]
        assert idx.commas[0].tolist() == [27]
        assert idx.commas[1].tolist() == [13]
        assert idx.commas[2].tolist() == [22]

    def test_descendant_unsupported(self):
        with pytest.raises(UnsupportedQueryError):
            PisonLike("$..a")

    def test_unbalanced_input(self):
        with pytest.raises(JsonSyntaxError):
            PisonLike("$.a").run(b'{"a": 1')
        with pytest.raises(JsonSyntaxError):
            PisonLike("$.a").run(b'{"a": 1}}')

    def test_primitive_root_yields_nothing(self):
        assert PisonLike("$.a").run(b"42").values() == []

    def test_run_records(self):
        stream = RecordStream.from_records([b'{"a": 1}', b"17", b'{"a": 3}'])
        assert PisonLike("$.a").run_records(stream).values() == [1, 3]
