"""Structural statistics tests (Table 4 columns) against a tree oracle."""

from __future__ import annotations

import json
import random
from typing import Any

from hypothesis import given
from hypothesis import strategies as st

from repro.data.stats import structural_stats
from repro.data.synth import random_json


def _oracle(value: Any) -> tuple[int, int, int, int, int]:
    """(objects, arrays, attributes, primitives, depth) via tree walk."""
    if isinstance(value, dict):
        o, a, at, p, d = 1, 0, len(value), 0, 0
        for child in value.values():
            co, ca, cat, cp, cd = _oracle(child)
            o, a, at, p, d = o + co, a + ca, at + cat, p + cp, max(d, cd)
        return o, a, at, p, d + 1
    if isinstance(value, list):
        o, a, at, p, d = 0, 1, 0, 0, 0
        for child in value:
            co, ca, cat, cp, cd = _oracle(child)
            o, a, at, p, d = o + co, a + ca, at + cat, p + cp, max(d, cd)
        return o, a, at, p, d + 1
    return 0, 0, 0, 1, 0


class TestKnownInputs:
    def test_figure1(self, tweet_record):
        stats = structural_stats(tweet_record)
        assert stats.n_objects == 4
        assert stats.n_arrays == 5  # coordinates, pos, 3 pairs
        assert stats.n_attributes == 8
        assert stats.depth == 5

    def test_empty_containers(self):
        stats = structural_stats(b'{"a": {}, "b": []}')
        assert stats.n_objects == 2
        assert stats.n_arrays == 1
        assert stats.n_primitives == 0

    def test_single_element_array(self):
        stats = structural_stats(b'["lonely"]')
        assert stats.n_primitives == 1

    def test_primitive_root(self):
        stats = structural_stats(b"42")
        assert stats.n_primitives == 1
        assert stats.depth == 0

    def test_as_row_keys(self):
        row = structural_stats(b"{}").as_row()
        assert set(row) == {"#objects", "#arrays", "#attr", "#prim", "depth", "bytes"}


class TestAgainstOracle:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_documents(self, seed):
        rng = random.Random(seed)
        value = random_json(rng, max_depth=4)
        data = json.dumps(value, indent=rng.choice([None, 1])).encode()
        stats = structural_stats(data)
        o, a, at, p, d = _oracle(value)
        assert stats.n_objects == o
        assert stats.n_arrays == a
        assert stats.n_attributes == at
        assert stats.n_primitives == p
        assert stats.depth == d
