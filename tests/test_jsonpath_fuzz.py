"""Parser fuzzing: arbitrary text must parse or raise JsonPathSyntaxError."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synth import random_path
from repro.errors import JsonPathSyntaxError
from repro.jsonpath.parser import parse_path


class TestNeverCrashes:
    @given(st.text(max_size=40))
    @settings(max_examples=80)
    def test_arbitrary_text(self, text):
        try:
            path = parse_path(text)
        except JsonPathSyntaxError:
            return
        # Anything accepted must round-trip.
        assert parse_path(path.unparse()) == path

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60)
    def test_mutated_valid_paths(self, seed):
        rng = random.Random(seed)
        text = random_path(rng)
        if rng.random() < 0.7:
            i = rng.randrange(len(text))
            text = text[:i] + rng.choice("$.[]()*:,'x0 ") + text[i + 1 :]
        try:
            path = parse_path(text)
        except JsonPathSyntaxError:
            return
        assert parse_path(path.unparse()) == path

    @given(st.text(alphabet="$.[]*:,'\"0123456789ab\\", max_size=30))
    @settings(max_examples=80)
    def test_metachar_soup(self, text):
        try:
            path = parse_path(text)
        except JsonPathSyntaxError:
            return
        assert path.unparse()
