"""compat shim, MatchList.to_jsonl, and generator seed stability."""

from __future__ import annotations

import json

import pytest

import repro
from repro.compat import parse
from repro.data.datasets import large_record
from repro.engine.stats import GROUPS


class TestCompatShim:
    DOC = {"a": [{"b": 1}, {"b": 2}], "weird key": 3}

    def test_find(self):
        data = [d.value for d in parse("$.a[*].b").find(self.DOC)]
        assert data == [1, 2]

    def test_full_path(self):
        paths = [d.full_path for d in parse("$.a[*].b").find(self.DOC)]
        assert paths == ["$.a[0].b", "$.a[1].b"]

    def test_full_path_quotes_weird_keys(self):
        (datum,) = parse("$['weird key']").find(self.DOC)
        assert datum.full_path == "$['weird key']"

    def test_values_and_str(self):
        compiled = parse("$.a[0].b")
        assert compiled.values(self.DOC) == [1]
        assert str(compiled) == "$.a[0].b"

    def test_filters_work_on_values(self):
        assert parse("$.a[?(@.b > 1)].b").values(self.DOC) == [2]

    def test_agrees_with_streaming(self):
        doc_bytes = json.dumps(self.DOC).encode()
        assert parse("$.a[*].b").values(self.DOC) == repro.JsonSki("$.a[*].b").run(doc_bytes).values()


class TestToJsonl:
    def test_roundtrip(self):
        matches = repro.JsonSki("$.a[*]").run(b'{"a": [1, {"b": 2}, "x"]}')
        out = matches.to_jsonl()
        lines = out.decode().splitlines()
        assert [json.loads(line) for line in lines] == [1, {"b": 2}, "x"]
        assert out.endswith(b"\n")

    def test_empty(self):
        assert repro.JsonSki("$.z").run(b"{}").to_jsonl() == b""

    def test_pipe_composition(self):
        # The to_jsonl output feeds straight back in as a record stream.
        out = repro.JsonSki("$.pd[*]").run(b'{"pd": [{"nm": "a"}, {"nm": "b"}]}').to_jsonl()
        stream = repro.RecordStream.from_jsonl(out)
        assert repro.JsonSki("$.nm").run_records(stream).values() == ["a", "b"]


class TestSeedStability:
    """Table 6's shape must not depend on the generator seed."""

    @pytest.mark.parametrize("name,query,expected_dominant", [
        ("NSPL", "$.mt.vw.co[*].nm", "G4"),
        ("WM", "$.it[*].bmrpr.pr", "G1"),
        ("GMD", "$[*].atm", "G2"),
    ])
    def test_dominant_group_stable_across_seeds(self, name, query, expected_dominant):
        for seed in (1, 7, 99):
            data = large_record(name, 60_000, seed=seed)
            engine = repro.JsonSki(query, collect_stats=True)
            engine.run(data)
            ratios = {g: engine.last_stats.ratio(g) for g in GROUPS}
            dominant = max(ratios, key=ratios.get)
            assert dominant == expected_dominant, (seed, ratios)
            assert engine.last_stats.overall_ratio > 0.9, seed
