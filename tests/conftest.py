"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for the whole suite: enough examples to matter,
# bounded so `pytest tests/` stays minutes not hours on one core.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

#: Engines expected to agree with the reference evaluator on any input.
ALL_ENGINES = ("jsonski", "jsonski-word", "rds", "jpstream", "rapidjson", "simdjson", "pison")


@pytest.fixture(scope="session")
def tweet_record() -> bytes:
    """The paper's Figure 1 record (slightly extended)."""
    return json.dumps(
        {
            "coordinates": [40.74118764, -73.9998279],
            "user": {"id": 6253282},
            "place": {
                "name": "Manhattan",
                "bounding_box": {
                    "type": "Polygon",
                    "pos": [[-74.026675, 40.683935], [-74.026675, 40.877483], [-73.910408, 40.877483]],
                },
            },
        }
    ).encode()


def run_engine(name: str, query: str, data: bytes):
    """Instantiate a registered engine and run one record."""
    import repro

    return repro.ENGINES[name](query).run(data)
