"""Scanner boundary coverage beyond the oracle property tests."""

from __future__ import annotations

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.posindex import PositionBufferIndex
from repro.bits.scanner import NOT_FOUND, VectorScanner, WordScanner
from repro.errors import format_error_context


def scanners(data: bytes, chunk_size: int = 64):
    return (
        WordScanner(BufferIndex(data, chunk_size=chunk_size, cache_chunks=None)),
        VectorScanner(PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=None)),
    )


class TestExactBoundaries:
    def test_metachar_at_chunk_edges(self):
        # Braces at positions 63, 64, 127, 128 with 64-byte chunks.
        data = bytearray(b"a" * 200)
        for pos in (0, 63, 64, 127, 128, 199):
            data[pos] = ord("{")
        data = bytes(data)
        for scanner in scanners(data):
            assert scanner.find_next(CharClass.LBRACE, 0) == 0
            assert scanner.find_next(CharClass.LBRACE, 1) == 63
            assert scanner.find_next(CharClass.LBRACE, 64) == 64
            assert scanner.find_next(CharClass.LBRACE, 65) == 127
            assert scanner.find_next(CharClass.LBRACE, 129) == 199
            assert scanner.find_prev(CharClass.LBRACE, 126) == 64
            assert scanner.find_prev(CharClass.LBRACE, 63) == 63
            assert scanner.count_range(CharClass.LBRACE, 0, 200) == 6
            assert scanner.count_range(CharClass.LBRACE, 63, 129) == 4
            assert scanner.kth_in_range(CharClass.LBRACE, 1, 4) == 128

    def test_query_at_exact_end(self):
        data = b"a" * 63 + b"{"
        for scanner in scanners(data):
            assert scanner.find_next(CharClass.LBRACE, 63) == 63
            assert scanner.find_next(CharClass.LBRACE, 64) == NOT_FOUND
            assert scanner.find_prev(CharClass.LBRACE, 1000) == 63

    def test_empty_input(self):
        for scanner in scanners(b""):
            assert scanner.find_next(CharClass.LBRACE, 0) == NOT_FOUND
            assert scanner.find_prev(CharClass.LBRACE, 0) == NOT_FOUND
            assert scanner.count_range(CharClass.LBRACE, 0, 10) == 0


class TestPairCloseDeep:
    def test_num_open_greater_than_one(self):
        #       01234567
        data = b"{{}}{}}}"
        for scanner in scanners(data):
            # From pos 2 with two opens outstanding: closers at 2 and 3.
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 2, 2) == 3
            # From pos 4: the '{' at 4 raises the debt; three closers needed.
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 4, 2) == 7
            # Unbalanceable debt reports NOT_FOUND.
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 4, 4) == NOT_FOUND

    def test_num_open_across_chunks(self):
        deep = b"{" * 40 + b"x" * 60 + b"}" * 40
        for scanner in scanners(deep):
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 40, 40) == len(deep) - 1
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 40, 1) == 100

    def test_interleaved_opens_per_interval(self):
        # Algorithm 4's interval accounting: each interval holds some
        # closers but never enough until the end.
        data = b"{" + b'{"a":1},' * 20 + b"}"
        for scanner in scanners(data):
            assert scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, 1, 1) == len(data) - 1


class TestWordScannerInternals:
    def test_masked_first_word(self):
        data = b"{{{" + b"a" * 61
        scanner, _ = scanners(data)
        assert scanner.find_next(CharClass.LBRACE, 2) == 2
        assert scanner.count_range(CharClass.LBRACE, 1, 3) == 2

    def test_kth_spanning_words(self):
        data = (b"{" + b"a" * 31) * 8  # one '{' per 32 bytes
        scanner, _ = scanners(data)
        for k in range(1, 9):
            assert scanner.kth_in_range(CharClass.LBRACE, 0, k) == (k - 1) * 32


class TestErrorContext:
    def test_caret_points_at_position(self):
        text = format_error_context(b'{"a": 1; "b": 2}', 7)
        lines = text.splitlines()
        assert lines[0][7] == ";"
        assert lines[1].index("^") == 7

    def test_window_and_ellipses(self):
        data = b"x" * 100 + b"!" + b"y" * 100
        text = format_error_context(data, 100, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("...") and lines[0].endswith("...")
        assert lines[0][lines[1].index("^")] == "!"

    def test_nonprintable_sanitized(self):
        text = format_error_context(b"\x00\x01{bad", 2)
        assert text.splitlines()[0].startswith("..")

    def test_position_past_end_clamped(self):
        text = format_error_context(b"ab", 99)
        assert "^" in text
