"""Property-based vector-vs-word equivalence (tier-1, ``fuzz_smoke``).

The vectorized two-stage hot path (leveled G1/G5 seeks as searchsorted
lookups — see ``docs/two-stage.md``) must be observationally equivalent
to the paper-faithful word-at-a-time mode on well-formed input: same
matches, same per-group :class:`~repro.engine.stats.FastForwardStats`,
same checkpoint/resume trajectory.  On *malformed* input both modes
tolerate skip-region damage (the paper's Section 3.3: skipped regions
are not validated), and the leveled lookups may diverge from the word
walk — that is a documented validation gap, classified and bounded here
rather than hidden.

The corpus is the differential fuzzer's seeded mutation corpus
(:func:`repro.resilience.corpus`), so every failure replays locally from
its seed.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.engine.stats import GROUPS
from repro.errors import ReproError
from repro.resilience import corpus

BASE_RECORDS = [
    json.dumps({"a": {"b": 1, "k": [1, 2]}, "x": "s"}).encode(),
    json.dumps([{"x": 1}, {"x": "two", "k": None}]).encode(),
    json.dumps({"a": [0, 1, 2, 3, 4], "k": {"k": True}}).encode(),
    json.dumps({"a": [{"b": {"c": 1}}, {"b": 2}, 3, {"b": [4]}]}).encode(),
]

QUERIES = ("$.a", "$.a.b", "$[*].x", "$.a[1:3]", "$..k", "$.a[*].b")

N_MUTATIONS = 120


def _is_valid_json(data: bytes) -> bool:
    try:
        json.loads(data)
    except Exception:
        return False
    return True


def _outcome(query: str, data: bytes, mode: str):
    """One run's full observable outcome: matches + stats, or the error."""
    engine = repro.JsonSki(query, mode=mode, collect_stats=True)
    try:
        matches = engine.run(data)
    except ReproError as exc:
        return ("error", type(exc).__name__)
    except ValueError:
        # tolerated skip-region damage surfacing as an undecodable match
        return ("error", "ValueError")
    stats = engine.last_stats
    spans = [(m.start, m.end) for m in matches]
    chars = {g: stats.chars[g] for g in GROUPS}
    return ("ok", spans, chars, stats.total_length)


@pytest.mark.fuzz_smoke
def test_vector_word_equivalence_on_base_records():
    """On well-formed input the two modes must agree exactly —
    matches, per-group stats, and total length."""
    for query in QUERIES:
        for data in BASE_RECORDS:
            word = _outcome(query, data, "word")
            vector = _outcome(query, data, "vector")
            assert vector == word, (
                f"vector/word divergence on valid input: query={query!r} "
                f"data={data!r}\n  word={word}\n  vector={vector}"
            )


@pytest.mark.fuzz_smoke
def test_vector_word_equivalence_over_fuzz_corpus():
    """Across the mutation corpus: exact equivalence on every mutation
    that is still valid JSON; bounded, classified divergence otherwise."""
    mutations = corpus(BASE_RECORDS, N_MUTATIONS, seed=11)
    gaps = []
    cases = 0
    for mutation in mutations:
        valid = _is_valid_json(mutation.data)
        for query in QUERIES:
            cases += 1
            word = _outcome(query, mutation.data, "word")
            vector = _outcome(query, mutation.data, "vector")
            if vector == word:
                continue
            if word[0] == "error" and vector[0] == "error":
                # Both diagnosed the damage; the exact class may differ
                # by mode (they traverse different bytes before hitting
                # it).  Both raising ReproError is the contract.
                continue
            assert not valid, (
                f"vector/word divergence on VALID JSON: query={query!r} "
                f"seed={mutation.seed} kind={mutation.kind}\n"
                f"  data={mutation.data!r}\n  word={word}\n  vector={vector}"
            )
            gaps.append((mutation.kind, mutation.seed, query, word[0], vector[0]))
    # The Section-3.3 validation gap exists but must stay a small
    # minority of malformed cases, not the norm.
    assert len(gaps) < cases * 0.10, (
        f"{len(gaps)}/{cases} divergent cases — validation gap exploded:\n"
        + "\n".join(map(str, gaps[:20]))
    )


@pytest.mark.fuzz_smoke
def test_checkpoint_resume_equivalence_vector_vs_word():
    """Suspend/serialize/resume at tight byte budgets in both modes; the
    final matches must agree with each other and with the straight run
    (carry bits + array cursors round-trip through the dict form)."""
    from repro.checkpoint import SuspendableRun

    for query in ("$.a", "$[*].x", "$.a[1:3]", "$.a.b"):
        for data in BASE_RECORDS:
            per_mode = {}
            for mode in ("vector", "word"):
                run = SuspendableRun.begin(query, data, mode=mode, chunk_size=64)
                while not run.step(max_bytes=7):
                    state = run.suspend().to_dict()
                    state = json.loads(json.dumps(state))  # full serialization
                    run = SuspendableRun.resume(data, state)
                per_mode[mode] = [(m.start, m.end) for m in run.matches()]
            straight = [(m.start, m.end) for m in repro.JsonSki(query).run(data)]
            assert per_mode["vector"] == per_mode["word"] == straight, (
                f"checkpoint equivalence broke: query={query!r} data={data!r} "
                f"vector={per_mode['vector']} word={per_mode['word']} "
                f"straight={straight}"
            )
