"""Debug-rendering module coverage (the teaching layer)."""

from __future__ import annotations

import repro
from repro.bits import debug
from repro.bits.classify import CharClass


class TestRuler:
    def test_repeats_digits(self):
        assert debug.ruler(b"x" * 12) == "012345678901"

    def test_empty(self):
        assert debug.ruler(b"") == ""


class TestRenderBitmap:
    def test_marks(self):
        line = debug.render_bitmap(b"abcdef", [1, 4])
        assert line == " ^  ^ "

    def test_out_of_range_ignored(self):
        assert debug.render_bitmap(b"ab", [5, -1, 0]) == "^ "


class TestRenderClasses:
    def test_all_structural_rows(self):
        out = debug.render_classes(b'{"a": [1]}')
        for cls in ("LBRACE", "RBRACE", "LBRACKET", "RBRACKET", "COLON", "COMMA"):
            assert cls in out

    def test_subset(self):
        out = debug.render_classes(b"{}", classes=(CharClass.LBRACE,))
        assert "LBRACE" in out and "COLON" not in out

    def test_nonprintable_sanitized(self):
        out = debug.render_classes(b'{"\x01": 1}')
        assert "\x01" not in out


class TestRenderInterval:
    def test_open_interval(self):
        out = debug.render_interval(b"abcdef", 2, None, label="open")
        assert "open" in out
        assert "[===" in out.replace("=]", "==")

    def test_zero_length(self):
        out = debug.render_interval(b"abc", 1, 1)
        assert ")" in out


class TestTraceRendering:
    def test_groups_rendered_with_digits(self):
        data = b'{"skip": [1,2,3,4,5], "a": 1, "t": 2}'
        _, events = repro.JsonSki("$.a").trace_run(data)
        out = debug.render_trace(data, events)
        assert "G2 [" in out
        # the G2 row fills its span with '2's
        g2_line = next(line for line in out.splitlines() if "G2 [" in line)
        span_part = g2_line.split("G2 [")[0]
        assert "2" in span_part

    def test_coverage_summary_format(self):
        data = b'{"skip": [1,2,3], "a": 1}'
        _, events = repro.JsonSki("$.a").trace_run(data)
        text = debug.coverage_summary(data, events)
        assert text.startswith("fast-forwarded ") and "%" in text

    def test_empty_events(self):
        assert "0/" in debug.coverage_summary(b"abc", [])
