"""Stateful property tests (hypothesis rule-based machines).

The chunked index is the one component with interesting *state* (carry
chains, LRU eviction, rebuilds); these machines drive it through
arbitrary access orders and assert every answer stays equal to a
freshly-built unbounded index.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.bits.classify import CharClass
from repro.bits.posindex import PositionBufferIndex
from repro.bits.scanner import VectorScanner

_ALPHABET = b'ab"\\ {}[]:,'


class LruIndexMachine(RuleBasedStateMachine):
    """Random access against a 2-chunk LRU must equal unbounded access."""

    @initialize(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def setup(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 600)
        self.data = bytes(rng.choice(_ALPHABET) for _ in range(n))
        self.lru = PositionBufferIndex(self.data, chunk_size=64, cache_chunks=2)
        self.full = PositionBufferIndex(self.data, chunk_size=64, cache_chunks=None)
        self.scanner = VectorScanner(self.lru)
        self.reference = VectorScanner(self.full)

    @rule(chunk_frac=st.floats(min_value=0, max_value=1))
    def access_chunk(self, chunk_frac):
        cid = min(int(chunk_frac * self.lru.n_chunks), self.lru.n_chunks - 1)
        a = self.lru.get(cid)
        b = self.full.get(cid)
        assert a.carry_out == b.carry_out
        assert list(a.positions_list(CharClass.ANY)) == list(b.positions_list(CharClass.ANY))

    @rule(pos_frac=st.floats(min_value=0, max_value=1),
          cls=st.sampled_from([CharClass.LBRACE, CharClass.COMMA, CharClass.QUOTE]))
    def query_find_next(self, pos_frac, cls):
        pos = int(pos_frac * max(len(self.data), 1))
        assert self.scanner.find_next(cls, pos) == self.reference.find_next(cls, pos)

    @rule(pos_frac=st.floats(min_value=0, max_value=1))
    def query_pair_close(self, pos_frac):
        pos = int(pos_frac * max(len(self.data), 1))
        got = self.scanner.pair_close(CharClass.LBRACE, CharClass.RBRACE, pos, 1)
        want = self.reference.pair_close(CharClass.LBRACE, CharClass.RBRACE, pos, 1)
        assert got == want

    @invariant()
    def cache_bounded(self):
        if hasattr(self, "lru"):
            assert len(self.lru._cache) <= 2


TestLruIndexMachine = LruIndexMachine.TestCase
TestLruIndexMachine.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
