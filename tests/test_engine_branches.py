"""Engine branch coverage: container-irrelevance, typed arrays, deep G1."""

from __future__ import annotations

import repro
from repro.reference import evaluate_bytes


class TestContainerIrrelevance:
    """`can_match_in_*` false → the whole container is one G2 skip."""

    def test_object_when_query_wants_array(self):
        # Root is an object but the query starts with an index.
        data = b'{"huge": {"nested": [1, 2, 3]}, "more": 1}'
        engine = repro.JsonSki("$[0].x", collect_stats=True)
        assert engine.run(data).values() == []
        assert engine.last_stats.chars["G2"] > len(data) * 0.8

    def test_array_when_query_wants_object(self):
        data = b'[ {"a": 1}, {"a": 2}, [3, 4] ]'
        engine = repro.JsonSki("$.a", collect_stats=True)
        assert engine.run(data).values() == []
        assert engine.last_stats.chars["G2"] > len(data) * 0.8

    def test_nested_irrelevant_container(self):
        # `unknown` expected type forces recursion; the mismatch is only
        # discovered inside.
        data = b'{"a": {"b": [9]}}'
        assert repro.JsonSki("$.a[0]").run(data).values() == []
        assert repro.JsonSki("$.a.b[0]").run(data).values() == [9]


class TestTypedArraySweeps:
    def test_want_array_elements(self):
        # G1 with want='array' inside an array of mixed types.
        data = b'[1, {"x": 0}, [10, 11], "s", [20]]'
        assert repro.JsonSki("$[*][0]").run(data).values() == [10, 20]

    def test_array_of_arrays_with_range(self):
        data = b"[[0,1,2],[3,4,5],[6,7,8]]"
        q = "$[1:3][2]"
        assert repro.JsonSki(q).run(data).values() == evaluate_bytes(q, data) == [5, 8]

    def test_typed_skip_preserves_counter_across_mixed(self):
        # Elements of the wrong type interleave with matching ones; the
        # G1 comma counting must keep indices exact for the inner range.
        data = b'[7, [0], "x", [1], null, [2], [3]]'
        q = "$[*][0]"
        assert repro.JsonSki(q).run(data).values() == [0, 1, 2, 3]
        q2 = "$[3][0]"
        assert repro.JsonSki(q2).run(data).values() == [1]


class TestDeepG1Chains:
    def test_alternating_object_array_levels(self):
        data = b'''{"z1": 1, "l1": [ {"z2": [9], "l2": {"z3": "s", "l3": [ {"hit": 42} ]}} ], "z4": {}}'''
        engine = repro.JsonSki("$.l1[*].l2.l3[*].hit", collect_stats=True)
        assert engine.run(data).values() == [42]
        stats = engine.last_stats
        assert stats.chars["G1"] > 0 and stats.chars["G4"] > 0

    def test_g1_lands_on_correct_name_among_decoys(self):
        # Several object-valued attributes; only the right NAME matches.
        data = b'{"p": 1, "wrong": {"hit": 1}, "target": {"hit": 2}, "late": {"hit": 3}}'
        assert repro.JsonSki("$.target.hit").run(data).values() == [2]

    def test_g1_then_object_end(self):
        data = b'{"a": [1], "b": [2]}'
        # want array, but name 'c' never matches -> scans both, ends clean.
        assert repro.JsonSki("$.c[0]").run(data).values() == []


class TestWildcardObjectIteration:
    def test_wildcard_skips_nothing_but_stays_exact(self):
        data = b'{"a": {"v": 1}, "b": 2, "c": {"v": 3}, "d": [4]}'
        q = "$.*.v"
        assert repro.JsonSki(q).run(data).values() == evaluate_bytes(q, data) == [1, 3]

    def test_wildcard_child_then_index(self):
        data = b'{"a": [1, 2], "b": "no", "c": [3]}'
        q = "$.*[1]"
        assert repro.JsonSki(q).run(data).values() == [2]


class TestStatusTransitionsInArrays:
    def test_accept_and_matched_inside_array(self):
        # Descendant: the array element is both a match and a container
        # of further matches.
        data = b'[{"k": {"k": 1}}, 2]'
        q = "$..k"
        assert repro.JsonSki(q).run(data).values() == evaluate_bytes(q, data)

    def test_dead_elements_skip_by_type(self):
        data = b"[[1], [2], [3]]"
        engine = repro.JsonSki("$[1][0]", collect_stats=True)
        assert engine.run(data).values() == [2]
        assert engine.last_stats.chars["G5"] > 0
