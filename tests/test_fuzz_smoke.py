"""Tier-1 fuzz smoke: the differential sweep and pool fault injection.

Marked ``fuzz_smoke`` but *not* deselected: this is the budgeted CI
incarnation of the resilience contract.  The long-running form lives in
``benchmarks/fuzz_soak.py``.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.observe import MetricsRegistry
from repro.parallel import run_records_pool_resilient
from repro.resilience import CRASH_SENTINEL, differential_fuzz
from repro.stream.records import RecordStream

BASE_RECORDS = [
    json.dumps({"a": {"b": 1, "k": [1, 2]}, "x": "s"}).encode(),
    json.dumps([{"x": 1}, {"x": "two", "k": None}]).encode(),
    json.dumps({"a": [0, 1, 2, 3, 4], "k": {"k": True}}).encode(),
]

N_MUTATIONS = 200


@pytest.mark.fuzz_smoke
def test_differential_fuzz_every_engine():
    registry = MetricsRegistry()
    report = differential_fuzz(
        BASE_RECORDS,
        N_MUTATIONS,
        seed=1,
        metrics=registry,
        deadline_per_case=30.0,
    )
    assert report.ok, report.describe()
    # every registered engine actually participated
    assert report.cases > N_MUTATIONS * (len(repro.ENGINES) // 2)
    assert registry.value("fuzz.cases") == report.cases
    # the corpus is hostile enough that *something* got diagnosed
    assert report.counts["engine_error"] > 0


@pytest.mark.fuzz_smoke
def test_fuzz_outcomes_deterministic():
    r1 = differential_fuzz(BASE_RECORDS, 25, seed=7, engines=("jsonski",), deadline_per_case=None)
    r2 = differential_fuzz(BASE_RECORDS, 25, seed=7, engines=("jsonski",), deadline_per_case=None)
    assert r1.counts == r2.counts


@pytest.mark.fuzz_smoke
def test_pool_survives_crash_and_poison():
    good = [json.dumps({"a": i}).encode() for i in range(6)]
    poison = b'{"a": '  # malformed: quarantined inside the worker
    records = good[:3] + [CRASH_SENTINEL, poison] + good[3:]
    stream = RecordStream.from_records(records)
    registry = MetricsRegistry()
    result = run_records_pool_resilient(
        "$.a",
        stream,
        n_workers=2,
        batch_size=3,
        max_retries=1,
        backoff=0.01,
        metrics=registry,
        inject_faults=True,
    )
    # partial results: every good record produced its value
    values = {i: v for i, v in enumerate(result.values) if v is not None}
    assert [values[i] for i in (0, 1, 2, 5, 6, 7)] == [[0], [1], [2], [3], [4], [5]]
    # both fault classes quarantined and reported
    kinds = {f.kind for f in result.failures}
    assert "crash" in kinds and "error" in kinds
    assert result.worker_crashes >= 1 and result.batch_retries >= 1
    # and both events visible through --metrics counters
    assert registry.value("pool.worker_crashes") >= 1
    assert registry.value("pool.poison_records") == 1
    assert registry.value("pool.crashed_records") == 1
    assert registry.value("pool.records_ok") == 6
    assert "quarantined" in result.describe()


@pytest.mark.fuzz_smoke
def test_pool_resilient_clean_run_matches_plain_pool():
    records = [json.dumps({"a": i}).encode() for i in range(10)]
    stream = RecordStream.from_records(records)
    result = run_records_pool_resilient("$.a", stream, n_workers=1, batch_size=4)
    assert result.ok and result.values == [[i] for i in range(10)]


@pytest.mark.fuzz_smoke
def test_kill_resume_contract_on_hostile_corpus(tmp_path):
    """The checkpoint contract on a mutated (partly malformed) stream:
    interrupt anywhere, resume, byte-identical output and identical
    failure reports.  The soak-scale form is
    ``benchmarks/fuzz_soak.py --kill-resume``."""
    from repro.checkpoint import kill_resume_differential
    from repro.resilience import corpus

    mutations = corpus(BASE_RECORDS, 30, seed=5)
    stream = RecordStream.from_records([m.data for m in mutations])
    for interrupt_at in (0, 7, 16, len(stream) + 1):
        report = kill_resume_differential(
            "$.a.b", stream, interrupt_at=interrupt_at,
            workdir=tmp_path, checkpoint_every=4,
        )
        assert report.ok, report.describe()
