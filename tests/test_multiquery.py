"""Multi-query engine tests: one streaming pass, several JSONPaths."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synth import random_json, random_path
from repro.engine import JsonSki, JsonSkiMulti
from repro.query.multi import MultiQueryAutomaton
from repro.reference import evaluate_bytes


class TestBasics:
    def test_per_query_results(self):
        engine = JsonSkiMulti(["$.a", "$.b[0]"])
        a, b = engine.run(b'{"a": 1, "b": [2, 3]}')
        assert a.values() == [1]
        assert b.values() == [2]

    def test_same_value_matches_several_queries(self):
        engine = JsonSkiMulti(["$.a.b", "$.*.b"])
        first, second = engine.run(b'{"a": {"b": 7}, "c": {"b": 8}}')
        assert first.values() == [7]
        assert second.values() == [7, 8]

    def test_requires_a_query(self):
        with pytest.raises(ValueError):
            JsonSkiMulti([])

    def test_run_records(self):
        from repro.stream.records import RecordStream

        stream = RecordStream.from_records([b'{"a": 1}', b'{"b": 2}', b'{"a": 3, "b": 4}'])
        a, b = JsonSkiMulti(["$.a", "$.b"]).run_records(stream)
        assert a.values() == [1, 3]
        assert b.values() == [2, 4]

    def test_descendant_query_in_mix(self):
        engine = JsonSkiMulti(["$..c", "$.a"])
        c, a = engine.run(b'{"a": {"c": 1}, "c": 2}')
        assert c.values() == [1, 2]
        assert a.values() == [{"c": 1}]


class TestGuidanceConjunction:
    def test_g4_shared_name_still_skips(self):
        qa = MultiQueryAutomaton(["$.a.x", "$.a.y"])
        assert qa.object_skippable(qa.start_state)  # both wait for 'a'

    def test_g4_divergent_names_disable_skip(self):
        qa = MultiQueryAutomaton(["$.a.x", "$.b.y"])
        assert not qa.object_skippable(qa.start_state)

    def test_expected_type_conflict_is_unknown(self):
        qa = MultiQueryAutomaton(["$.a.x", "$.a[0]"])
        s = qa.on_key(qa.start_state, "a")
        assert qa.expected_type(s) == "unknown"

    def test_expected_type_agreement_survives(self):
        qa = MultiQueryAutomaton(["$.a.x", "$.a.y"])
        assert qa.expected_type(qa.start_state) == "object"

    def test_element_range_envelope(self):
        qa = MultiQueryAutomaton(["$[2:4]", "$[7]"])
        assert qa.element_range(qa.start_state) == (2, 8)

    def test_accepting_ids(self):
        qa = MultiQueryAutomaton(["$.a", "$.b", "$.a.c"])
        s = qa.on_key(qa.start_state, "a")
        assert qa.accepting(s) == (0,)
        s2 = qa.on_key(s, "c")
        assert qa.accepting(s2) == (2,)


class TestDifferential:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40)
    def test_equals_individual_runs(self, seed):
        rng = random.Random(seed)
        doc = json.dumps(random_json(rng, 4), indent=rng.choice([None, 1])).encode()
        queries = [random_path(rng) for _ in range(rng.randrange(1, 4))]
        results = JsonSkiMulti(queries).run(doc)
        for query, got in zip(queries, results):
            assert got.values() == evaluate_bytes(query, doc), (query, queries)

    def test_twelve_paper_queries_single_pass(self):
        """All twelve Table 5 queries over one synthetic record base."""
        from repro.data.datasets import large_record

        data = large_record("TT", 30_000, seed=21)
        queries = ["$[*].en.urls[*].url", "$[*].text", "$[*].user.id", "$[3:5].lang"]
        results = JsonSkiMulti(queries).run(data)
        for query, got in zip(queries, results):
            assert got.values() == JsonSki(query).run(data).values(), query
