"""JSONPath parser tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.synth import random_path
from repro.errors import JsonPathSyntaxError
from repro.jsonpath import (
    Child,
    Descendant,
    Index,
    Slice,
    WildcardChild,
    WildcardIndex,
    parse_path,
)


class TestParsing:
    def test_paper_queries_parse(self):
        # Every Table 5 query structure must round-trip.
        for text in (
            "$[*].en.urls[*].url",
            "$[*].text",
            "$.pd[*].cp[1:3].id",
            "$.pd[*].vc[*].cha",
            "$[*].rt[*].lg[*].st[*].dt.tx",
            "$[*].atm",
            "$.mt.vw.co[*].nm",
            "$.dt[*][*][2:4]",
            "$.it[*].bmrpr.pr",
            "$.it[*].nm",
            "$[*].cl.P150[*].ms.pty",
            "$[10:21].cl.P150[*].ms.pty",
        ):
            assert parse_path(text).unparse() == text

    def test_child(self):
        path = parse_path("$.place.name")
        assert path.steps == (Child("place"), Child("name"))

    def test_bracket_name(self):
        assert parse_path("$['place name']").steps == (Child("place name"),)
        assert parse_path('$["a.b"]').steps == (Child("a.b"),)

    def test_bracket_name_with_escapes(self):
        assert parse_path(r"$['it\'s']").steps == (Child("it's"),)
        assert parse_path(r"$['back\\slash']").steps == (Child("back\\slash"),)

    def test_index_and_slice(self):
        assert parse_path("$[5]").steps == (Index(5),)
        assert parse_path("$[2:4]").steps == (Slice(2, 4),)
        assert parse_path("$[2:]").steps == (Slice(2, None),)
        assert parse_path("$[:3]").steps == (Slice(0, 3),)

    def test_wildcards(self):
        assert parse_path("$[*]").steps == (WildcardIndex(),)
        assert parse_path("$.*").steps == (WildcardChild(),)

    def test_descendant(self):
        assert parse_path("$..name").steps == (Descendant("name"),)
        path = parse_path("$.a..b[0]")
        assert path.steps == (Child("a"), Descendant("b"), Index(0))

    def test_names_with_digits_and_dashes(self):
        assert parse_path("$.P150").steps == (Child("P150"),)
        assert parse_path("$.a-b_c").steps == (Child("a-b_c"),)

    def test_whitespace_tolerated_around(self):
        assert parse_path("  $.a  ").unparse() == "$.a"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "place.name",  # missing $
            "$",  # no steps
            "$.",  # missing name
            "$[",  # unterminated bracket
            "$[abc]",  # unquoted name in bracket
            "$['x]",  # unterminated string
            "$[1:1]",  # empty range
            "$[3:2]",  # inverted range
            "$[-1]",  # negative index unsupported
            "$..",  # missing descendant name
            "$ .a",  # stray space inside
            "$.a!b",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(JsonPathSyntaxError):
            parse_path(bad)

    def test_error_carries_position(self):
        with pytest.raises(JsonPathSyntaxError) as info:
            parse_path("$.a[%]")
        assert info.value.expression == "$.a[%]"
        assert info.value.position == 4

    def test_incomplete_filter_position(self):
        with pytest.raises(JsonPathSyntaxError) as info:
            parse_path("$.a[?]")
        assert info.value.position == 5  # '?' opens a filter, '(' expected


class TestTypeInference:
    def test_value_kinds(self):
        path = parse_path("$.place.name")
        assert path.value_kind(0) == "object"  # place must hold .name
        assert path.value_kind(1) == "unknown"  # last level

    def test_array_kind(self):
        path = parse_path("$.places[2:4].name")
        assert path.value_kind(0) == "array"
        assert path.value_kind(1) == "object"

    def test_descendant_blocks_inference(self):
        path = parse_path("$.a..b")
        assert path.value_kind(0) == "unknown"
        assert path.has_descendant


class TestRoundTrip:
    @given(st.randoms(use_true_random=False))
    def test_random_paths_roundtrip(self, rng):
        text = random_path(rng)
        path = parse_path(text)
        assert parse_path(path.unparse()) == path

    def test_non_identifier_name_unparse(self):
        path = parse_path("$['a b']")
        assert path.unparse() == "$['a b']"
        assert parse_path(path.unparse()) == path
