"""The prepare/index/run two-stage API (``repro.compile`` / ``repro.index``)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.engine.prepared import IndexedBuffer, PreparedQuery
from repro.stream.buffer import StreamBuffer, as_stream_buffer

DATA = json.dumps(
    {"pd": [{"id": 1, "sp": "a"}, {"id": 2, "sp": "b"}, {"x": 0}], "mt": {"id": 9}}
).encode()


class TestCompileReturnsPrepared:
    def test_compile_wraps_engine(self):
        prepared = repro.compile("$.pd[*].id")
        assert isinstance(prepared, PreparedQuery)
        assert prepared.info is repro.ENGINES["jsonski"]
        assert prepared.run(DATA).values() == [1, 2]

    def test_full_engine_surface_delegates(self):
        prepared = repro.compile("$.pd[*].id", collect_stats=True)
        assert prepared.run(DATA).values() == [1, 2]
        assert prepared.last_stats is not None
        assert prepared.last_stats.total_length == len(DATA)
        assert prepared.first(DATA).value() == 1
        assert prepared.exists(DATA)
        assert prepared.mode == "vector"  # __getattr__ passthrough

    def test_run_with_paths_and_trace(self):
        prepared = repro.compile("$.mt.id")
        pairs = prepared.run_with_paths(DATA)
        assert [(p, m.value()) for p, m in pairs] == [(("mt", "id"), 9)]
        matches, events = prepared.trace_run(DATA)
        assert matches.values() == [9]
        assert events  # at least one fast-forward was logged

    def test_unknown_engine_and_bogus_kwarg(self):
        with pytest.raises(KeyError):
            repro.compile("$.a", engine="nope")
        with pytest.raises(TypeError):
            repro.compile("$.a", bogus=True)


class TestIndexedBuffer:
    def test_module_level_index(self):
        indexed = repro.index(DATA)
        assert isinstance(indexed, IndexedBuffer)
        assert indexed.mode == "vector"
        assert len(indexed) == len(DATA)
        assert indexed.data == DATA

    def test_index_reused_across_queries(self):
        indexed = repro.index(DATA).warm()
        built_after_warm = indexed.buffer.index.chunks_built
        ids = repro.compile("$.pd[*].id").run(indexed)
        sps = repro.compile("$.pd[*].sp").run(indexed)
        assert ids.values() == [1, 2]
        assert sps.values() == ["a", "b"]
        # stage 1 was not redone: no further chunk builds after warm()
        assert indexed.buffer.index.chunks_built == built_after_warm

    def test_prepared_index_inherits_engine_mode(self):
        word = repro.compile("$.pd[*].id", engine="jsonski-word")
        indexed = word.index(DATA)
        assert indexed.mode == "word"
        assert word.run(indexed).values() == [1, 2]

    def test_all_views_accept_indexed(self):
        prepared = repro.compile("$.pd[*].id")
        indexed = repro.index(DATA)
        assert prepared.run(indexed).values() == [1, 2]
        assert prepared.first(indexed).value() == 1
        assert prepared.exists(indexed)
        assert [m.value() for _, m in prepared.run_with_paths(indexed)] == [1, 2]

    def test_legacy_engine_accepts_indexed(self):
        # the one-shot surface and the two-stage surface share coercion
        engine = repro.JsonSki("$.pd[*].id")
        assert engine.run(repro.index(DATA)).values() == [1, 2]

    def test_multi_engine_accepts_indexed(self):
        indexed = repro.index(DATA)
        ids, sps = repro.JsonSkiMulti(["$.pd[*].id", "$.pd[*].sp"]).run(indexed)
        assert ids.values() == [1, 2]
        assert sps.values() == ["a", "b"]


class TestAsStreamBuffer:
    def test_coercions(self):
        buf = StreamBuffer(DATA)
        assert as_stream_buffer(buf) is buf
        indexed = IndexedBuffer(DATA)
        assert as_stream_buffer(indexed) is indexed.buffer
        fresh = as_stream_buffer(DATA, mode="word")
        assert fresh.mode == "word" and fresh.data == DATA

    def test_str_input(self):
        assert as_stream_buffer('{"a": 1}').data == b'{"a": 1}'


class TestTwoStageFlag:
    def test_registry_flags(self):
        assert repro.ENGINES["jsonski"].two_stage
        assert repro.ENGINES["jsonski-word"].two_stage
        assert not repro.ENGINES["pison"].two_stage
        assert not repro.ENGINES["stdlib"].two_stage

    def test_observed_prepared_run(self):
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()
        prepared = repro.compile("$.pd[*].id", metrics=registry)
        prepared.run(repro.index(DATA))
        assert registry.value("engine.runs") == 1
        assert registry.value("engine.matches") == 2
