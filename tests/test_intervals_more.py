"""Additional structural-interval behaviours (cursors, spills, edges)."""

from __future__ import annotations

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.intervals import IntervalBuilder, StructuralInterval


def builder(data: bytes, chunk_size: int = 64) -> IntervalBuilder:
    return IntervalBuilder(BufferIndex(data, chunk_size=chunk_size, cache_chunks=None))


class TestCursorSemantics:
    def test_next_crosses_chunk_boundaries(self):
        data = (b"x" * 70 + b",") * 3
        ib = builder(data)
        ends = [ib.next(CharClass.COMMA).end for _ in range(3)]
        assert ends == [70, 141, 212]

    def test_next_exhausts_to_open_interval(self):
        ib = builder(b"a,b")
        assert ib.next(CharClass.COMMA).end == 1
        tail = ib.next(CharClass.COMMA)
        assert tail.is_open
        # A further call keeps returning open intervals at the stream end.
        assert ib.next(CharClass.COMMA).is_open

    def test_reset_all(self):
        ib = builder(b",,")
        ib.next(CharClass.COMMA)
        ib.next(CharClass.COLON)
        ib.reset()
        assert ib.next(CharClass.COMMA).end == 0


class TestBuildEdges:
    def test_build_past_end(self):
        ib = builder(b"ab")
        interval = ib.build(10, CharClass.COMMA)
        assert interval.is_open and interval.start == 10

    def test_zero_length_interval(self):
        ib = builder(b",x")
        interval = ib.build(0, CharClass.COMMA)
        assert (interval.start, interval.end) == (0, 0)
        assert interval.length_to(2) == 0

    def test_interval_containment_edges(self):
        interval = StructuralInterval(CharClass.COMMA, 5, 5)
        assert 5 not in interval  # zero-length contains nothing

    def test_string_filtered(self):
        data = b'"a,b",'
        interval = builder(data).build(0, CharClass.COMMA)
        assert interval.end == 5


class TestWordBitmapSpills:
    def test_three_word_spill(self):
        data = b"a" * 150 + b"," + b"a" * 9
        ib = builder(data, chunk_size=256)
        interval = ib.build(10, CharClass.COMMA)
        pieces = list(ib.word_bitmaps(interval))
        assert len(pieces) == 3  # words 0, 64, 128
        assert pieces[0][0] == 0 and pieces[-1][0] == 128
        covered = sum(bitmap.bit_count() for _, bitmap in pieces)
        assert covered == 150 - 10

    def test_open_interval_bitmaps_reach_stream_end(self):
        data = b"a" * 100
        ib = builder(data, chunk_size=128)
        interval = ib.build(90, CharClass.COMMA)
        pieces = list(ib.word_bitmaps(interval))
        covered = sum(bitmap.bit_count() for _, bitmap in pieces)
        assert covered == 10

    def test_empty_interval_yields_nothing(self):
        ib = builder(b",")
        interval = ib.build(0, CharClass.COMMA)
        assert list(ib.word_bitmaps(interval)) == []
