"""Resilience layer: mutators, guards, recovery, lenient boundaries."""

from __future__ import annotations

import json
import time

import pytest

import repro
from repro.errors import (
    DeadlineExceededError,
    DepthLimitError,
    JsonSyntaxError,
    RecordTooLargeError,
    ReproError,
    ResourceLimitError,
    StreamExhaustedError,
    format_error_context,
)
from repro.resilience import (
    DEFAULT_MAX_DEPTH,
    Deadline,
    Limits,
    MUTATORS,
    corpus,
    mutate,
    run_with_recovery,
)
from repro.stream.records import RecordStream

RECORD = json.dumps(
    {"a": {"b": [1, 2, 3]}, "tags": ["x", "y"], "n": 7, "s": "héllo ✓"}
).encode()

ALL_ENGINES = tuple(repro.ENGINES)


class TestMutators:
    def test_deterministic(self):
        for kind in MUTATORS:
            a = mutate(RECORD, seed=42, kind=kind)
            b = mutate(RECORD, seed=42, kind=kind)
            assert a.data == b.data and a.detail == b.detail

    def test_seed_selects_kind(self):
        kinds = {mutate(RECORD, seed=s).kind for s in range(64)}
        assert kinds == set(MUTATORS)  # every fault class reachable

    def test_corpus_reproducible(self):
        c1 = corpus([RECORD], 32, seed=5)
        c2 = corpus([RECORD], 32, seed=5)
        assert [m.data for m in c1] == [m.data for m in c2]
        assert len(c1) == 32

    def test_truncate_shrinks(self):
        m = mutate(RECORD, seed=3, kind="truncate")
        assert len(m.data) < len(RECORD)
        assert RECORD.startswith(m.data)

    def test_nesting_bomb_is_deep(self):
        m = mutate(RECORD, seed=9, kind="nesting_bomb")
        depth = max(m.data.count(b"["), m.data.count(b"{"))
        assert depth >= 400


class TestDepthGuard:
    BOMB = b'{"a":' * (DEFAULT_MAX_DEPTH + 50) + b"1" + b"}" * (DEFAULT_MAX_DEPTH + 50)

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_default_guard_blocks_bomb_or_skips_safely(self, name):
        # Contract: never a bare RecursionError.  Engines whose recursion
        # is query-bounded (JSONSki skips deep regions iteratively) may
        # legitimately succeed; everyone else raises DepthLimitError.
        engine = repro.ENGINES[name]("$..k" if repro.ENGINES[name].supports_descendant else "$.a")
        try:
            engine.run(self.BOMB)
        except DepthLimitError:
            pass

    @pytest.mark.parametrize(
        "name", [n for n in ALL_ENGINES if n not in ("jsonski", "jsonski-word")]
    )
    def test_depth_limit_error_on_deep_input(self, name):
        engine = repro.ENGINES[name]("$.a", limits=Limits(max_depth=8))
        deep = b'{"a":' * 20 + b"1" + b"}" * 20
        with pytest.raises(DepthLimitError) as excinfo:
            engine.run(deep)
        assert isinstance(excinfo.value, ResourceLimitError)

    def test_jsonski_descendant_depth_guard(self):
        engine = repro.ENGINES["jsonski"]("$..k", limits=Limits(max_depth=8))
        deep = b'{"a":' * 20 + b"1" + b"}" * 20
        with pytest.raises(DepthLimitError):
            engine.run(deep)

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_legal_depth_unaffected(self, name):
        engine = repro.ENGINES[name]("$.a.b")
        assert engine.run(b'{"a": {"b": 5}}').values() == [5]


class TestSizeGuard:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_record_too_large(self, name):
        engine = repro.ENGINES[name]("$.a", limits=Limits(max_record_bytes=8))
        with pytest.raises(RecordTooLargeError):
            engine.run(b'{"a": 1234567890}')

    def test_size_under_limit_ok(self):
        engine = repro.ENGINES["jsonski"]("$.a", limits=Limits(max_record_bytes=1000))
        assert engine.run(b'{"a": 1}').values() == [1]


class TestDeadline:
    def test_deadline_expires(self):
        d = Deadline.after(-1.0)
        assert d.expired() and d.remaining() < 0
        with pytest.raises(DeadlineExceededError):
            d.check(5)

    @pytest.mark.parametrize("name", ("jsonski", "rds", "jpstream"))
    def test_streaming_engines_abandon(self, name):
        big = json.dumps({"b": list(range(50_000))}).encode()
        engine = repro.ENGINES[name](
            "$.a", limits=Limits(deadline=Deadline(time.monotonic() - 1))
        )
        with pytest.raises(DeadlineExceededError):
            engine.run(big)

    def test_generous_deadline_is_invisible(self):
        engine = repro.ENGINES["jsonski"]("$.a", limits=Limits().with_deadline(60.0))
        assert engine.run(b'{"a": 1}').values() == [1]


class TestCaretAlignment:
    def test_ascii(self):
        ctx = format_error_context(b'{"a": !}', 6)
        text, caret = ctx.splitlines()
        assert text[caret.index("^")] == "!"

    def test_multibyte_utf8_before_error(self):
        # é is two bytes; the caret must not drift left.
        data = '{"é": "ü", "x": !}'.encode()
        position = data.index(b"!")
        text, caret = format_error_context(data, position).splitlines()
        assert text[caret.index("^")] == "!"

    def test_invalid_bytes_render_one_column_each(self):
        data = b'{"a": \xff\xfe!}'
        position = data.index(b"!")
        text, caret = format_error_context(data, position).splitlines()
        assert text[caret.index("^")] == "!"

    def test_window_prefix(self):
        data = b"x" * 100 + b"\xc3\xa9" * 10 + b"!" + b"y" * 100
        position = data.index(b"!")
        text, caret = format_error_context(data, position).splitlines()
        assert text[caret.index("^")] == "!"


class TestRecovery:
    def test_skips_malformed_and_reports(self):
        stream = RecordStream.from_records(
            [b'{"a": 1}', b'{"a": ', b'{"a": 3}']
        )
        engine = repro.ENGINES["jsonski"]("$.a")
        result = run_with_recovery(engine, stream)
        assert result.values[0] == [1] and result.values[2] == [3]
        assert result.values[1] is None
        assert not result.ok and result.records_ok == 2
        assert result.failures[0].index == 1
        assert result.all_values() == [1, 3]
        assert "1" in result.describe()

    def test_metrics_counters(self):
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()
        stream = RecordStream.from_records([b'{"a": 1}', b"{oops", b'{"a": 2}'])
        run_with_recovery(repro.ENGINES["rds"]("$.a"), stream, metrics=registry)
        assert registry.value("stream.records_ok") == 2
        snapshot = registry.as_dict()
        assert any(
            c["name"] == "stream.records_skipped" and c["value"] == 1
            for c in snapshot["counters"]
        )

    def test_deadline_aborts_run(self):
        stream = RecordStream.from_records([b'{"a": 1}'] * 5)
        engine = repro.ENGINES["jsonski"](
            "$.a", limits=Limits(deadline=Deadline(time.monotonic() - 1))
        )
        result = run_with_recovery(engine, stream)
        assert result.records_ok == 0
        assert any(f.error == "DeadlineExceededError" for f in result.failures)

    def test_max_failures_stops_early(self):
        stream = RecordStream.from_records([b"{bad"] * 10)
        engine = repro.ENGINES["jsonski"]("$.a")
        result = run_with_recovery(engine, stream, max_failures=3)
        assert len(result.failures) == 3


class TestLenientBoundaries:
    def test_strict_trailing_partial_is_exhaustion(self):
        with pytest.raises(StreamExhaustedError):
            RecordStream.from_concatenated(b'{"a": 1} {"b": ')

    def test_strict_garbage_still_syntax_error(self):
        with pytest.raises(JsonSyntaxError):
            RecordStream.from_concatenated(b'{"a": 1} junk {"b": 2}')

    def test_lenient_resyncs_at_next_opener(self):
        stream, skipped = RecordStream.from_concatenated_lenient(
            b'{"a": 1} junk {"b": 2}]{"c": 3}'
        )
        assert [bytes(r) for r in stream] == [b'{"a": 1}', b'{"b": 2}', b'{"c": 3}']
        reasons = [reason for _, reason in skipped]
        assert "non-whitespace between records" in reasons
        assert "unbalanced closing bracket" in reasons

    def test_lenient_trailing_partial_reported(self):
        stream, skipped = RecordStream.from_concatenated_lenient(b'{"a": 1}{"b": ')
        assert len(stream) == 1
        assert skipped == [(8, "unclosed trailing record")]

    def test_lenient_clean_payload_no_skips(self):
        stream, skipped = RecordStream.from_concatenated_lenient(b'{"a": 1} {"b": 2}')
        assert len(stream) == 2 and skipped == []


class TestFailurePositionMapping:
    """Lenient resync + recovery: positions map to the *original* payload.

    After ``from_concatenated_lenient`` discards garbage stretches, record
    ``i`` of the resynced stream generally does not start at payload byte
    ``i``-anything: the skipped regions are still part of the payload.  A
    ``RecordFailure.position`` is relative to the failing record, so the
    original-payload byte is ``stream.offsets[index][0] + position`` — and
    the skip report's offsets are original-payload offsets already.
    """

    PAYLOAD = b'{"a": {"b": 1}} @@garbage@@ {"a": {"b" 5}} ] {"a": {"b": 3}}'

    def test_failure_position_maps_to_original_payload(self):
        stream, skipped = RecordStream.from_concatenated_lenient(self.PAYLOAD)
        assert len(stream) == 3
        result = run_with_recovery(repro.JsonSki("$.a.b"), stream)
        assert result.all_values() == [1, 3]
        [failure] = result.failures
        assert failure.index == 1 and failure.position is not None

        start, end = stream.offsets[failure.index]
        absolute = int(start) + failure.position
        # The absolute offset lands inside the failing record and on the
        # same byte the record-relative position names.
        assert start <= absolute < end
        bad_record = stream.record(failure.index)
        assert self.PAYLOAD[absolute : absolute + 1] == bad_record[failure.position : failure.position + 1]
        # The mapping genuinely required the offset array: the record does
        # not start at byte 0, so record-relative != payload-absolute.
        assert start > 0 and absolute != failure.position

    def test_skip_report_offsets_are_payload_offsets(self):
        _, skipped = RecordStream.from_concatenated_lenient(self.PAYLOAD)
        by_reason = {reason: pos for pos, reason in skipped}
        garbage_at = by_reason["non-whitespace between records"]
        assert self.PAYLOAD[garbage_at:].lstrip().startswith(b"@@garbage@@")
        stray_at = by_reason["unbalanced closing bracket"]
        assert self.PAYLOAD[stray_at : stray_at + 1] == b"]"

    def test_records_slice_original_payload(self):
        stream, _ = RecordStream.from_concatenated_lenient(self.PAYLOAD)
        for i in range(len(stream)):
            start, end = stream.offsets[i]
            assert stream.record(i) == self.PAYLOAD[int(start) : int(end)]


class TestUniformLimitsKwarg:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_compile_accepts_limits(self, name):
        info = repro.ENGINES[name]
        query = "$.a" if not info.supports_descendant else "$.a"
        engine = repro.compile(query, engine=name, limits=Limits.unlimited())
        assert engine.run(b'{"a": 1}').values() == [1]

    def test_multi_engine_accepts_limits(self):
        engine = repro.JsonSkiMulti(["$.a", "$.b"], limits=Limits(max_record_bytes=4))
        with pytest.raises(RecordTooLargeError):
            engine.run(b'{"a": 1, "b": 2}')
