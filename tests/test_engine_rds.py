"""Recursive-descent streaming (Algorithm 1, no fast-forward) tests."""

from __future__ import annotations

import pytest

from repro.engine import JsonSki, RecursiveDescentStreamer
from repro.errors import JsonSyntaxError
from repro.stream.records import RecordStream


class TestMatching:
    def test_figure1(self, tweet_record):
        engine = RecursiveDescentStreamer("$.place.name")
        assert engine.run(tweet_record).values() == ["Manhattan"]

    def test_agrees_with_jsonski(self, tweet_record):
        for query in ("$.place.name", "$.coordinates[1]", "$.place.bounding_box.pos[*]", "$..id"):
            assert (
                RecursiveDescentStreamer(query).run(tweet_record).values()
                == JsonSki(query).run(tweet_record).values()
            ), query

    def test_examines_everything_strictly(self):
        # Unlike JSONSki, Algorithm 1 parses skipped regions in detail, so
        # malformed content anywhere is rejected.
        with pytest.raises(JsonSyntaxError):
            RecursiveDescentStreamer("$.a").run(b'{"skip": {"x" 1}, "a": 2}')

    def test_run_records(self):
        stream = RecordStream.from_records([b'{"a": 1}', b'{"a": 2}', b'{"b": 3}'])
        assert RecursiveDescentStreamer("$.a").run_records(stream).values() == [1, 2]

    def test_str_input(self):
        assert RecursiveDescentStreamer("$.a").run('{"a": "é"}').values() == ["é"]
