"""MappedFile and the real process pool; plus doctest integration."""

from __future__ import annotations

import doctest

import pytest

import repro
from repro.data.datasets import record_stream
from repro.parallel import run_records_pool
from repro.stream.filestream import MappedFile


class TestMappedFile:
    def test_engines_run_over_mmap(self, tmp_path, tweet_record):
        path = tmp_path / "r.json"
        path.write_bytes(tweet_record)
        with MappedFile(path) as data:
            assert repro.JsonSki("$.place.name").run(data).values() == ["Manhattan"]
            assert repro.JsonSki("$.user.id", mode="word").run(data).values() == [6253282]

    def test_matches_valid_inside_block(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_bytes(b'{"a": "value"}')
        with MappedFile(path) as data:
            match = repro.JsonSki("$.a").run(data)[0]
            assert match.text == b'"value"'

    def test_mapping_closed_after_block(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_bytes(b'{"a": 1}')
        manager = MappedFile(path)
        with manager as data:
            pass
        with pytest.raises(ValueError):
            data[0]  # mmap closed

    def test_empty_file_yields_empty_buffer(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        with MappedFile(path) as data:
            assert data == b""
            assert len(data) == 0

    def test_empty_file_exit_is_clean(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        manager = MappedFile(path)
        with manager:
            pass
        assert manager._handle is None and manager._map is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            with MappedFile(tmp_path / "nope.json"):
                pass


class TestRealPool:
    @pytest.fixture(scope="class")
    def stream(self):
        return record_stream("TT", 25_000, seed=6)

    def test_single_worker_reference(self, stream):
        values = run_records_pool("$.text", stream, 1)
        assert len(values) == len(stream)
        assert all(len(v) == 1 for v in values)

    def test_pool_equals_serial(self, stream):
        serial = run_records_pool("$.text", stream, 1)
        pooled = run_records_pool("$.text", stream, 2, batch_size=4)
        assert pooled == serial

    def test_order_preserved_across_batches(self, stream):
        pooled = run_records_pool("$.user.id", stream, 2, batch_size=3)
        engine = repro.JsonSki("$.user.id")
        expected = [engine.run(stream.record(i)).values() for i in range(len(stream))]
        assert pooled == expected


class TestIterJsonl:
    def test_lazy_iteration(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": 1}\n  \n{"a": 2}\n')
        from repro.stream.filestream import iter_jsonl

        records = list(iter_jsonl(path))
        assert records == [b'{"a": 1}', b'{"a": 2}']

    def test_engine_iter_matches(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": [1, 2]}\n{"b": 9}\n{"a": [3]}\n')
        got = [(i, m.value()) for i, m in repro.JsonSki("$.a[*]").iter_matches_jsonl(str(path))]
        assert got == [(0, 1), (0, 2), (2, 3)]

    def test_works_for_baselines_too(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": 1}\n{"a": 2}\n')
        got = [m.value() for _, m in repro.JPStream("$.a").iter_matches_jsonl(str(path))]
        assert got == [1, 2]

    def test_matches_survive_iteration(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_bytes(b'{"a": "x"}\n{"a": "y"}\n')
        matches = [m for _, m in repro.JsonSki("$.a").iter_matches_jsonl(str(path))]
        assert [m.text for m in matches] == [b'"x"', b'"y"']


class TestDocstrings:
    """Executable examples in docstrings must stay true."""

    @pytest.mark.parametrize("module_name", [
        "repro.engine.jsonski",
        "repro.engine.multi",
        "repro.engine.events",
        "repro.extract",
        "repro.analysis",
        "repro.jsonpath.parser",
        "repro.query.explain",
    ])
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
        assert failures == 0
