"""Process-level lifecycle tests: SIGTERM drain and kill -9 resume.

These boot the real ``python -m repro serve`` subprocess and assert the
shutdown contract end to end:

- SIGTERM during a streamed NDJSON response lets the in-flight stream
  finish (``done`` terminator), answers new queries 503 ``draining``,
  and exits 0;
- SIGTERM with a tiny grace window interrupts the stream at a batch
  boundary with an ``interrupted`` terminator naming the resume index —
  still exits 0;
- kill -9 mid-way through a checkpointed pool dispatch leaves a
  checkpoint generation on disk from which a fresh server completes the
  query (``resume: true``).
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

pytestmark = pytest.mark.serve_smoke

SRC = Path(__file__).resolve().parent.parent / "src"


def boot(tmp_path: Path, corpus: bytes, *extra: str):
    """Start ``python -m repro serve`` and return (proc, port)."""
    corpus_path = tmp_path / "corpus.jsonl"
    corpus_path.write_bytes(corpus)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--corpus", f"t={corpus_path}", *extra,
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"server died at boot (rc={proc.poll()})")
        if line.startswith("serving on "):
            return proc, int(line.rsplit(":", 1)[1])
    raise AssertionError("server never reported its port")


def start_streaming_query(port: int, body: dict) -> socket.socket:
    """Send a /query and return the raw socket mid-response."""
    payload = json.dumps(body).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.sendall(
        b"POST /query HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n"
        + f"content-length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    return sock


def read_rest(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        data = sock.recv(65536)
        if not data:
            return b"".join(chunks)
        chunks.append(data)


def parse_ndjson_tail(raw: bytes) -> list[dict]:
    """Undo chunked framing loosely and parse the NDJSON lines.

    ``raw`` starts mid-stream (the first recv already consumed the
    headers and possibly a partial line), so unparseable fragments are
    skipped — the assertions only care about the trailing terminator.
    """
    lines = []
    for piece in raw.split(b"\r\n"):
        piece = piece.strip()
        if piece.startswith(b"{"):
            try:
                lines.append(json.loads(piece))
            except ValueError:
                pass  # partial first line cut by the initial recv
    return lines


def probe(port: int, method: str, path: str, body: dict | None = None):
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


BIG_CORPUS = b'{"a": 1, "pad": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}\n' * 20000


class TestSigtermDrain:
    def test_inflight_stream_finishes_and_new_queries_get_503(self, tmp_path):
        proc, port = boot(
            tmp_path, BIG_CORPUS, "--drain-grace", "60",
            "--batch-size", "64", "--max-budget", "120",
            "--default-budget", "120",
        )
        try:
            sock = start_streaming_query(port, {"corpus": "t", "query": "$.a"})
            # Read a little, then stop: the server fills the socket
            # buffers and blocks mid-stream — guaranteed in flight.
            sock.recv(4096)
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.5)
            # New queries are rejected with an explicit 503 while the
            # listener drains (not a connection refused).
            status, body = probe(port, "POST", "/query",
                                 {"corpus": "t", "query": "$.a"})
            assert status == 503
            assert json.loads(body)["error"] == "draining"
            status, _ = probe(port, "GET", "/readyz")
            assert status == 503
            # The in-flight stream runs to completion under the grace.
            raw = read_rest(sock)
            sock.close()
            lines = parse_ndjson_tail(raw)
            assert lines[-1].get("done") is True
            assert lines[-1]["records"] == 20000
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_tiny_grace_interrupts_at_batch_boundary(self, tmp_path):
        proc, port = boot(
            tmp_path, BIG_CORPUS, "--drain-grace", "0.2",
            "--batch-size", "64", "--max-budget", "120",
            "--default-budget", "120",
        )
        try:
            sock = start_streaming_query(port, {"corpus": "t", "query": "$.a"})
            sock.recv(4096)
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.5)  # let the grace window lapse
            raw = read_rest(sock)
            sock.close()
            lines = parse_ndjson_tail(raw)
            terminator = lines[-1]
            # Interrupted mid-way with a resume cursor — never truncated.
            assert terminator.get("interrupted") is True
            assert isinstance(terminator["next_index"], int)
            assert 0 < terminator["next_index"] <= 20000
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestKillNineResume:
    def test_checkpointed_query_survives_kill_nine(self, tmp_path):
        corpus = b'{"a": 1}\n' * 1500
        ck_dir = tmp_path / "ckpt"
        args = (
            "--checkpoint-dir", str(ck_dir), "--batch-size", "64",
            "--max-budget", "300", "--default-budget", "300",
        )
        proc, port = boot(tmp_path, corpus, *args)
        killed_early = False
        try:
            sock = start_streaming_query(
                port,
                {"corpus": "t", "query": "$.a", "workers": 1,
                 "checkpoint": "job1"},
            )
            # Wait for the first checkpoint generation, then kill -9.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if ck_dir.exists() and any(ck_dir.iterdir()):
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("no checkpoint ever written")
            proc.kill()
            assert proc.wait(timeout=30) == -signal.SIGKILL
            killed_early = True
            try:
                read_rest(sock)  # connection dies with the server
            except OSError:
                pass
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert killed_early
        # A fresh server over the same corpus + checkpoint dir resumes
        # the interrupted query to completion.
        proc, port = boot(tmp_path, corpus, *args)
        try:
            status, body = probe(
                port, "POST", "/query",
                {"corpus": "t", "query": "$.a", "workers": 1,
                 "checkpoint": "job1", "resume": True},
            )
            assert status == 200
            lines = [json.loads(line) for line in body.splitlines() if line]
            assert lines[-1].get("done") is True
            assert lines[-1]["records"] == 1500
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
