"""Differential fuzzing: every engine vs. the reference evaluator.

One fuzz case is ``(engine, query, mutated input)``.  The contract the
harness enforces — the resilience layer's core claim — is that every
registered engine, on *any* input, does exactly one of:

- **agree**: run successfully and match the reference evaluator;
- **engine_error**: raise a :class:`~repro.errors.ReproError` subclass
  (diagnosed malformation or resource guard);
- **blindspot**: succeed where the reference rejects the input — the
  paper's Section 3.3 skip-region validation gap, which fast-forwarding
  engines document rather than close (also covers duplicate-key records,
  where streaming and DOM semantics legitimately differ);

and never:

- **divergence**: both sides succeed on valid input but disagree (an
  engine bug); or
- **crash**: leak a bare builtin exception (``RecursionError``,
  ``IndexError``, numpy errors, ...) — the failure mode resource guards
  exist to eliminate.

:func:`differential_fuzz` sweeps a seeded mutation corpus over every
engine and returns a :class:`FuzzReport`; ``report.ok`` is the assertion
CI makes (see ``tests/test_fuzz_smoke.py`` and
``benchmarks/fuzz_soak.py`` for the long-running form).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError, UnsupportedQueryError
from repro.resilience.faults import Mutation, corpus
from repro.resilience.guards import Limits

#: Outcome tags, from best to worst.
OUTCOMES = ("agree", "engine_error", "blindspot", "divergence", "crash")


@dataclass(frozen=True)
class FuzzCase:
    """One classified case (kept only for the interesting outcomes)."""

    engine: str
    query: str
    mutation: Mutation
    outcome: str
    detail: str = ""


@dataclass
class FuzzReport:
    """Aggregate of one differential sweep."""

    counts: dict[str, int] = field(default_factory=lambda: {k: 0 for k in OUTCOMES})
    failures: list[FuzzCase] = field(default_factory=list)
    cases: int = 0

    @property
    def ok(self) -> bool:
        """No crashes, no divergences."""
        return self.counts["crash"] == 0 and self.counts["divergence"] == 0

    def record(self, case: FuzzCase) -> None:
        self.cases += 1
        self.counts[case.outcome] += 1
        if case.outcome in ("divergence", "crash"):
            self.failures.append(case)

    def describe(self) -> str:
        parts = ", ".join(f"{k}={self.counts[k]}" for k in OUTCOMES)
        lines = [f"{self.cases} cases: {parts}"]
        for case in self.failures[:20]:
            lines.append(
                f"  {case.outcome.upper()}: engine={case.engine} query={case.query!r} "
                f"mutation=({case.mutation.kind}, seed={case.mutation.seed}) {case.detail}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def _reference_outcome(query: str, data: bytes):
    """``("ok", values, dup_keys)`` or ``("reject", reason)``.

    Uses :func:`json.loads` + the tree evaluator, with duplicate-key
    detection (streaming engines emit every occurrence; a DOM keeps one —
    a legitimate semantic difference, not an engine bug).
    """
    from repro.reference import evaluate

    dup = False

    def pairs_hook(items):
        nonlocal dup
        keys = [k for k, _ in items]
        if len(set(keys)) != len(keys):
            dup = True
        return dict(items)

    try:
        value = json.loads(data.decode("utf-8"), object_pairs_hook=pairs_hook)
        return ("ok", evaluate(query, value), dup)
    except RecursionError:
        return ("reject", "reference recursion limit")
    except (ValueError, UnicodeDecodeError) as exc:
        return ("reject", str(exc))


def _classify(engine_name: str, query: str, mutation: Mutation, limits: Limits) -> FuzzCase:
    import repro

    info = repro.ENGINES[engine_name]
    try:
        engine = info(query, limits=limits)
        values = engine.run(mutation.data).values()
    except ReproError as exc:
        return FuzzCase(engine_name, query, mutation, "engine_error", type(exc).__name__)
    except ValueError:
        # run() succeeded but a matched slice is not decodable JSON: the
        # match text itself came out of an unvalidated skip region.
        return FuzzCase(engine_name, query, mutation, "blindspot", "undecodable match text")
    except Exception as exc:  # noqa: BLE001 - the whole point of the harness
        return FuzzCase(
            engine_name, query, mutation, "crash",
            f"{type(exc).__name__}: {exc}",
        )
    ref = _reference_outcome(query, mutation.data)
    if ref[0] == "reject":
        return FuzzCase(engine_name, query, mutation, "blindspot", f"reference: {ref[1]}")
    expected, dup_keys = ref[1], ref[2]
    if values == expected:
        return FuzzCase(engine_name, query, mutation, "agree")
    if dup_keys:
        return FuzzCase(engine_name, query, mutation, "blindspot", "duplicate keys")
    return FuzzCase(
        engine_name, query, mutation, "divergence",
        f"engine={values!r} reference={expected!r}",
    )


#: Queries exercised per engine when the caller gives none: one per
#: automaton shape (concrete path, wildcard, index range, descendant).
DEFAULT_QUERIES = ("$.a", "$.a.b", "$[*].x", "$.a[1:3]", "$..k")


def differential_fuzz(
    base_records: list[bytes],
    n_mutations: int,
    seed: int = 0,
    engines: tuple[str, ...] | None = None,
    queries: tuple[str, ...] = DEFAULT_QUERIES,
    limits: Limits | None = None,
    deadline_per_case: float | None = 10.0,
    metrics=None,
) -> FuzzReport:
    """Run the seeded differential sweep and classify every case.

    Each engine sees all ``n_mutations`` mutated inputs, cycling through
    ``queries`` (skipping query features an engine does not support).
    Every case runs under ``limits`` plus a fresh per-case cooperative
    deadline, so the sweep terminates even on an engine hang regression.

    ``metrics``, when a :class:`~repro.observe.MetricsRegistry`, receives
    ``fuzz.cases`` and per-outcome ``fuzz.outcome{outcome=...}`` counters.
    """
    import repro
    from repro.jsonpath.parser import parse_path

    engine_names = tuple(engines) if engines is not None else tuple(repro.ENGINES)
    base = limits if limits is not None else Limits()
    mutations = corpus(base_records, n_mutations, seed=seed)
    report = FuzzReport()
    for engine_name in engine_names:
        info = repro.ENGINES[engine_name]
        for i, mutation in enumerate(mutations):
            query = queries[i % len(queries)]
            try:
                info.check_query(parse_path(query))
            except UnsupportedQueryError:
                continue
            case_limits = (
                base.with_deadline(deadline_per_case)
                if deadline_per_case is not None else base
            )
            report.record(_classify(engine_name, query, mutation, case_limits))
    if metrics is not None:
        metrics.counter("fuzz.cases").add(report.cases)
        for outcome, count in report.counts.items():
            if count:
                metrics.counter("fuzz.outcome", outcome=outcome).add(count)
    return report
