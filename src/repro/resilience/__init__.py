"""``repro.resilience``: surviving hostile input and failing workers.

The paper's fast-forwarding validates skipped regions only at the
brace/bracket level (Section 3.3); this subsystem is the production
answer to what that leaves open:

- :mod:`~repro.resilience.guards` — ``Limits`` (``max_depth``,
  ``max_record_bytes``, cooperative ``Deadline``), accepted uniformly by
  every engine's ``limits=`` keyword;
- :mod:`~repro.resilience.faults` — the seeded corpus mutator
  (truncation, bit rot, structural damage, invalid UTF-8, quote
  corruption, nesting bombs) and process-fault sentinels;
- :mod:`~repro.resilience.fuzz` — the differential fuzz harness
  asserting every engine either agrees with the reference, raises a
  :class:`~repro.errors.ReproError`, or hits the documented skip-region
  blind spot — never crashes, never hangs;
- :mod:`~repro.resilience.recovery` — record-stream resynchronization:
  skip a malformed record, resume at the next boundary, report it.

Fault-tolerant parallel execution (worker replacement, retry with
backoff, poison-record quarantine) is the pool's side of the same
contract: :func:`repro.parallel.run_records_pool_resilient`.
"""

from repro.resilience.faults import (
    CRASH_SENTINEL,
    HANG_SENTINEL,
    MUTATORS,
    Mutation,
    corpus,
    mutate,
)
from repro.resilience.fuzz import (
    DEFAULT_QUERIES,
    FuzzCase,
    FuzzReport,
    differential_fuzz,
)
from repro.resilience.guards import (
    DEFAULT_LIMITS,
    DEFAULT_MAX_DEPTH,
    Deadline,
    Limits,
    depth_error_from_recursion,
    effective_limits,
)
from repro.resilience.recovery import (
    RecordFailure,
    RecoveryResult,
    run_with_recovery,
)

__all__ = [
    "CRASH_SENTINEL",
    "DEFAULT_LIMITS",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_QUERIES",
    "Deadline",
    "FuzzCase",
    "FuzzReport",
    "HANG_SENTINEL",
    "Limits",
    "MUTATORS",
    "Mutation",
    "RecordFailure",
    "RecoveryResult",
    "corpus",
    "depth_error_from_recursion",
    "differential_fuzz",
    "effective_limits",
    "mutate",
    "run_with_recovery",
]
