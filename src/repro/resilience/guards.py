"""Resource guards: depth, size, and deadline limits for every engine.

The paper's fast-forwarding validates skipped regions only at the
brace/bracket level (Section 3.3), so a hostile input cannot be rejected
up front the way an exhaustive validator would — instead, the engines
bound the *damage* any input can do:

- ``max_depth`` stops nesting bombs before the interpreter's recursion
  limit turns them into a bare :class:`RecursionError`;
- ``max_record_bytes`` rejects oversized single records up front
  (simdjson's documented 4 GB cap generalized to every engine);
- ``deadline`` is a cooperative wall-clock budget checked at container
  boundaries, so a pathological record abandons cleanly with
  :class:`~repro.errors.DeadlineExceededError` instead of hanging a
  worker.

All engines accept ``limits=`` uniformly; ``None`` means
:data:`DEFAULT_LIMITS` (depth guard on, everything else off), and
:meth:`Limits.unlimited` disables guarding entirely for trusted input.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import DeadlineExceededError, DepthLimitError, RecordTooLargeError

#: Default nesting guard.  Chosen so that even the engines that spend
#: several interpreter frames per JSON level (recursive descent is 2-3
#: frames deep per container) stay clear of CPython's default
#: 1000-frame recursion limit, while legal data never comes close
#: (the paper's six datasets max out below depth 10).
DEFAULT_MAX_DEPTH = 256


class Deadline:
    """A cooperative wall-clock budget.

    Engines call :meth:`check` at container boundaries; the call is one
    monotonic-clock read and a compare.  A ``Deadline`` is *absolute*
    (anchored when created), so one instance threads an end-to-end budget
    through compile, scan, and pool retries alike.

    ``clock`` defaults to :func:`time.monotonic`; the query service and
    its tests inject a fake so queue-wait and budget arithmetic can be
    asserted without real sleeping.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float, clock: Callable[[], float] = time.monotonic) -> None:
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(cls, seconds: float, clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """Deadline ``seconds`` from now (on ``clock``)."""
        return cls(clock() + seconds, clock)

    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self.clock()

    def check(self, position: int = -1) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.clock() >= self.expires_at:
            raise DeadlineExceededError("deadline exceeded while streaming", position)


@dataclass(frozen=True)
class Limits:
    """Guard configuration shared by every engine (``limits=`` kwarg).

    ``None`` for any field disables that guard.  The default instance
    guards depth only — the one failure mode that otherwise escapes as a
    non-library exception.
    """

    max_depth: int | None = DEFAULT_MAX_DEPTH
    max_record_bytes: int | None = None
    deadline: Deadline | None = None

    @classmethod
    def unlimited(cls) -> "Limits":
        """No guards at all (trusted input, benchmarking)."""
        return cls(max_depth=None, max_record_bytes=None, deadline=None)

    def with_deadline(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Limits":
        """Copy with a fresh deadline ``seconds`` from now (on ``clock``)."""
        return replace(self, deadline=Deadline.after(seconds, clock))

    def remaining(self) -> float | None:
        """Seconds left on the deadline, or ``None`` when no deadline is
        configured.  The query service uses this to convert an absolute
        per-request budget into the fresh relative budget a dispatched
        (or retried/resumed) run should receive — work must never
        inherit an already-expired absolute deadline."""
        return None if self.deadline is None else self.deadline.remaining()

    # -- enforcement helpers (shared by the engines) -------------------

    def check_record_size(self, size: int) -> None:
        """Raise :class:`RecordTooLargeError` for an oversized record."""
        if self.max_record_bytes is not None and size > self.max_record_bytes:
            raise RecordTooLargeError(
                f"record of {size} bytes exceeds the "
                f"{self.max_record_bytes}-byte single-record limit"
            )

    def check_depth(self, depth: int, position: int = -1) -> None:
        """Raise :class:`DepthLimitError` when ``depth`` crosses the guard."""
        if self.max_depth is not None and depth > self.max_depth:
            raise DepthLimitError(
                f"nesting depth {depth} exceeds max_depth={self.max_depth}",
                position, depth,
            )

    def enter(self, depth: int, position: int = -1) -> None:
        """One container boundary: depth guard + cooperative deadline."""
        if self.max_depth is not None and depth > self.max_depth:
            raise DepthLimitError(
                f"nesting depth {depth} exceeds max_depth={self.max_depth}",
                position, depth,
            )
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            raise DeadlineExceededError("deadline exceeded while streaming", position)


#: The shared default: depth guard on, size and deadline off.
DEFAULT_LIMITS = Limits()


def effective_limits(limits: Limits | None) -> Limits:
    """Resolve an engine's ``limits=`` argument (``None`` → defaults)."""
    return DEFAULT_LIMITS if limits is None else limits


def depth_error_from_recursion(exc: RecursionError, engine: str) -> DepthLimitError:
    """Convert an interpreter recursion blow-up into the library error.

    Backstop only: with a finite ``max_depth`` the counter fires first;
    this keeps the never-leak-a-bare-``RecursionError`` contract even
    under ``Limits.unlimited()`` or C-level parsers with their own stack.
    """
    error = DepthLimitError(
        f"engine {engine!r} exceeded the interpreter recursion limit "
        "(unbounded nesting; configure Limits.max_depth to fail earlier)"
    )
    error.__cause__ = exc
    return error
