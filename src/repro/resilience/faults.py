"""Seeded fault injection: corpus mutation and worker-fault sentinels.

The mutator turns well-formed records into the hostile inputs a
production feed actually produces — truncation mid-record, bit rot,
structural-character damage, invalid UTF-8, corrupted string quoting,
and adversarial nesting bombs.  Every mutation is driven by a caller's
``random.Random`` so a failing case reproduces from its seed alone.

The sentinels at the bottom are for *process-level* fault injection:
:func:`repro.parallel.real_pool.run_records_pool_resilient` can be asked
(``inject_faults=True``, tests only) to crash or stall a worker when it
meets one, exercising the pool's replacement and quarantine paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_STRUCTURAL = b'{}[]:,"'
_OPENERS = b"{["
_SWAPS = {
    0x7B: 0x5B, 0x5B: 0x7B,  # { <-> [
    0x7D: 0x5D, 0x5D: 0x7D,  # } <-> ]
    0x3A: 0x2C, 0x2C: 0x3A,  # : <-> ,
}


@dataclass(frozen=True)
class Mutation:
    """One mutated input: the bytes plus provenance for reproduction."""

    data: bytes
    kind: str
    seed: int
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mutation(kind={self.kind!r}, seed={self.seed}, {len(self.data)} bytes, {self.detail})"


def _structural_positions(data: bytes) -> list[int]:
    """Positions of structural metacharacters (string-blind, by design:
    corrupting a quoted metachar is a legitimate fault too)."""
    return [i for i, byte in enumerate(data) if byte in _STRUCTURAL]


def _truncate(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    cut = rng.randrange(0, max(len(data), 1))
    return data[:cut], f"cut at byte {cut}"


def _byte_flip(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    if not data:
        return data, "empty input"
    pos = rng.randrange(len(data))
    mutated = bytearray(data)
    mutated[pos] ^= 1 << rng.randrange(8)
    return bytes(mutated), f"bit flip at byte {pos}"


def _drop_structural(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    positions = _structural_positions(data)
    if not positions:
        return data, "no structural bytes"
    pos = rng.choice(positions)
    return data[:pos] + data[pos + 1 :], f"dropped {chr(data[pos])!r} at byte {pos}"


def _duplicate_structural(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    positions = _structural_positions(data)
    if not positions:
        return data, "no structural bytes"
    pos = rng.choice(positions)
    return data[:pos] + data[pos : pos + 1] + data[pos:], f"duplicated {chr(data[pos])!r} at byte {pos}"


def _swap_structural(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    """Replace a structural char with its unbalancing counterpart."""
    positions = [i for i in _structural_positions(data) if data[i] in _SWAPS]
    if not positions:
        return data, "no swappable bytes"
    pos = rng.choice(positions)
    mutated = bytearray(data)
    mutated[pos] = _SWAPS[data[pos]]
    return bytes(mutated), f"swapped {chr(data[pos])!r} at byte {pos}"


def _invalid_utf8(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    pos = rng.randrange(0, len(data) + 1)
    junk = bytes(rng.choice((0xC0, 0xFF, 0xFE, 0x80, 0xF8)) for _ in range(rng.randrange(1, 4)))
    return data[:pos] + junk + data[pos:], f"{len(junk)} invalid bytes at {pos}"


def _quote_corrupt(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    quotes = [i for i, byte in enumerate(data) if byte == 0x22]
    if not quotes:
        return data, "no quotes"
    pos = rng.choice(quotes)
    if rng.random() < 0.5:
        return data[:pos] + data[pos + 1 :], f"removed quote at byte {pos}"
    insert_at = rng.randrange(len(data) + 1)
    return data[:insert_at] + b'"' + data[insert_at:], f"inserted quote at byte {insert_at}"


def _nesting_bomb(data: bytes, rng: random.Random) -> tuple[bytes, str]:
    depth = rng.randrange(400, 4000)
    opener = rng.choice((b"[", b'{"a":'))
    if opener == b"[":
        bomb = b"[" * depth + (b"]" * depth if rng.random() < 0.5 else b"")
    else:
        bomb = b'{"a":' * depth + b"1" + b"}" * (depth if rng.random() < 0.5 else 0)
    if data and rng.random() < 0.5:
        pos = rng.randrange(len(data))
        return data[:pos] + bomb + data[pos:], f"depth-{depth} bomb spliced at {pos}"
    return bomb, f"standalone depth-{depth} bomb"


#: kind name -> mutator; each returns ``(mutated_bytes, detail)``.
MUTATORS = {
    "truncate": _truncate,
    "byte_flip": _byte_flip,
    "drop_structural": _drop_structural,
    "duplicate_structural": _duplicate_structural,
    "swap_structural": _swap_structural,
    "invalid_utf8": _invalid_utf8,
    "quote_corrupt": _quote_corrupt,
    "nesting_bomb": _nesting_bomb,
}


def mutate(data: bytes, seed: int, kind: str | None = None) -> Mutation:
    """Apply one seeded mutation to ``data``.

    ``kind`` selects a specific mutator (a :data:`MUTATORS` key);
    ``None`` picks one from the seed, so a corpus sweep over seeds
    exercises every fault class.
    """
    rng = random.Random(seed)
    if kind is None:
        kind = rng.choice(sorted(MUTATORS))
    mutated, detail = MUTATORS[kind](data, rng)
    return Mutation(data=mutated, kind=kind, seed=seed, detail=detail)


def corpus(base_records: list[bytes], n: int, seed: int = 0) -> list[Mutation]:
    """``n`` seeded mutations cycling over ``base_records``.

    Deterministic: the same ``(base_records, n, seed)`` triple always
    yields byte-identical mutations, so a fuzz failure reported by CI
    replays locally.
    """
    out = []
    for i in range(n):
        base = base_records[i % len(base_records)]
        out.append(mutate(base, seed=seed * 1_000_003 + i))
    return out


# ---------------------------------------------------------------------------
# Process-level fault sentinels (pool fault injection; tests only).

#: A worker that meets this record under ``inject_faults=True`` calls
#: ``os._exit`` — a hard crash no ``except`` can see, like a segfault or
#: an OOM kill.
CRASH_SENTINEL = b'{"__repro_fault__": "crash"}'

#: A worker that meets this record under ``inject_faults=True`` sleeps
#: far past any reasonable batch timeout (lost/hung worker).
HANG_SENTINEL = b'{"__repro_fault__": "hang"}'

#: How long the hang sentinel stalls a worker (seconds).
HANG_SECONDS = 3600.0
