"""Graceful degradation over record streams: skip, resync, report.

A multi-gigabyte feed with one truncated record should not lose the
other billion.  :func:`run_with_recovery` evaluates a query over a
:class:`~repro.stream.records.RecordStream` record by record; a record
that raises a :class:`~repro.errors.ReproError` is skipped and the run
*resynchronizes at the next record boundary* (the stream's offset array
— the reason the paper stores small-record input as payload + offsets
makes recovery structurally trivial).  The result carries the partial
matches plus a structured failure report instead of one raw traceback.

Payload-level resynchronization (when the boundaries themselves are
damaged) lives in
:meth:`repro.stream.records.RecordStream.from_concatenated_lenient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError, ResourceLimitError


@dataclass(frozen=True)
class RecordFailure:
    """One skipped record: where it was and why it failed.

    ``kind`` is ``"error"`` (malformed / guard-tripped input), or — from
    the resilient pool — ``"crash"`` / ``"timeout"`` for records
    quarantined because they repeatedly took a worker down with them.
    """

    index: int
    kind: str
    error: str
    message: str
    position: int | None = None

    @classmethod
    def from_exception(cls, index: int, exc: ReproError) -> "RecordFailure":
        return cls(
            index=index,
            kind="error",
            error=type(exc).__name__,
            message=str(exc),
            position=getattr(exc, "position", None),
        )


@dataclass
class RecoveryResult:
    """Partial results plus the failure report of one lenient run.

    ``values[i]`` is the list of matched values for record ``i``, or
    ``None`` when that record was skipped (its entry is in
    ``failures``).
    """

    values: list[list[Any] | None]
    failures: list[RecordFailure] = field(default_factory=list)
    #: :class:`repro.checkpoint.runs.CheckpointInfo` when the run was
    #: checkpointed (``checkpoint=`` was passed); ``None`` otherwise.
    checkpoint: Any | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def records_ok(self) -> int:
        return sum(1 for v in self.values if v is not None)

    def all_values(self) -> list[Any]:
        """Matched values across surviving records, in record order."""
        return [v for per_record in self.values if per_record is not None for v in per_record]

    def describe(self) -> str:
        lines = [
            f"{self.records_ok}/{len(self.values)} records ok, "
            f"{len(self.failures)} skipped"
        ]
        for failure in self.failures[:20]:
            where = f" at byte {failure.position}" if failure.position is not None else ""
            lines.append(
                f"  record {failure.index}: [{failure.kind}] {failure.error}: "
                f"{failure.message}{where}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


def run_with_recovery(
    engine,
    stream,
    *,
    max_failures: int | None = None,
    metrics=None,
    checkpoint=None,
    checkpoint_every: int = 1000,
    resume: bool = False,
    emitter=None,
    stop=None,
    materialize: bool = True,
) -> RecoveryResult:
    """Evaluate ``engine`` over every record, surviving malformed ones.

    Each record that raises a :class:`ReproError` becomes a
    :class:`RecordFailure`; processing resumes at the next record
    boundary.  A :class:`~repro.errors.DeadlineExceededError` (the
    cooperative deadline is a property of the whole run, not of one
    record) and ``max_failures`` overruns abort the run early — the
    partial result still carries everything processed so far, with the
    aborting failure last.

    ``metrics`` receives ``stream.records_ok`` / ``stream.records_skipped``
    counters (per failure class, via the ``error`` label).

    ``checkpoint`` (a path or :class:`~repro.checkpoint.CheckpointStore`)
    makes the run resumable: progress is committed every
    ``checkpoint_every`` records, ``resume=True`` skips the completed
    prefix of an interrupted run, ``emitter`` receives match values
    exactly once across kill/resume cycles, and ``stop`` (called with the
    next record index) requests a clean early exit.  See
    :func:`repro.checkpoint.runs.checkpointed_recovery`.

    ``engine`` may also be query text (or a parsed
    :class:`~repro.jsonpath.ast.Path`), which is compiled through the
    registry into a :class:`~repro.engine.prepared.PreparedQuery` — the
    recommended spelling for new code.

    ``materialize=False`` returns each record's lazy
    :class:`~repro.engine.output.MatchList` in ``values`` instead of
    decoded lists (and, with a checkpoint, stages/emits raw byte ranges)
    — zero ``json.loads`` unless a consumer touches a value.  The
    ``UndecodableMatch`` failure class disappears in this mode, since
    nothing decodes the matched slices.
    """
    from repro.errors import DeadlineExceededError
    from repro.jsonpath.ast import Path

    if isinstance(engine, (str, Path)):
        from repro.registry import compile as compile_engine

        engine = compile_engine(engine)

    if checkpoint is not None:
        from repro.checkpoint.runs import checkpointed_recovery

        return checkpointed_recovery(
            engine,
            stream,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            emitter=emitter,
            stop=stop,
            max_failures=max_failures,
            metrics=metrics,
            materialize=materialize,
        )

    values: list[list[Any] | None] = []
    failures: list[RecordFailure] = []
    aborted = False
    for i in range(len(stream)):
        if aborted:
            values.append(None)
            continue
        try:
            matches = engine.run(stream.record(i))
            values.append(matches.values() if materialize else matches)
        except ReproError as exc:
            failure = RecordFailure.from_exception(i, exc)
            failures.append(failure)
            values.append(None)
            if metrics is not None:
                metrics.counter("stream.records_skipped", error=failure.error).add(1)
            if isinstance(exc, DeadlineExceededError):
                aborted = True
            if max_failures is not None and len(failures) >= max_failures:
                aborted = True
        except ValueError as exc:
            # run() tolerated a skip-region malformation but the matched
            # slice is undecodable; treat like a diagnosed bad record.
            failure = RecordFailure(i, "error", "UndecodableMatch", str(exc))
            failures.append(failure)
            values.append(None)
            if metrics is not None:
                metrics.counter("stream.records_skipped", error=failure.error).add(1)
            if max_failures is not None and len(failures) >= max_failures:
                aborted = True
    if metrics is not None:
        metrics.counter("stream.records_ok").add(
            sum(1 for v in values if v is not None)
        )
    return RecoveryResult(values=values, failures=failures)


__all__ = ["RecordFailure", "RecoveryResult", "run_with_recovery", "ResourceLimitError"]
