"""Attribute-name decoding, shared by every engine.

Names are compared *decoded* (``"\\u0061"`` and ``"a"`` are the same
attribute), with a fast path for the overwhelmingly common escape-free
case.  Decoding is deliberately lenient: malformed escapes or invalid
UTF-8 in a name cannot crash a streaming engine that may only be passing
by (the name would simply never match a query) — the raw bytes are
decoded with surrogate escapes instead.
"""

from __future__ import annotations

import json


def decode_name(raw: bytes) -> str:
    """Decode one attribute-name slice (text between its quotes)."""
    if b"\\" not in raw:
        return raw.decode("utf-8", "surrogateescape")
    try:
        # repro: ignore[RS010] -- decodes a key *name* for automaton
        # comparison, not a matched value; names are short and this is
        # the escaped-slow-path only.
        return json.loads(b'"' + raw + b'"')
    except ValueError:
        # Malformed escape sequence: fall back to a literal decoding so
        # the name is still *some* consistent string (it will not match
        # any sane query, which is the right behaviour for broken input).
        return raw.decode("utf-8", "surrogateescape")
