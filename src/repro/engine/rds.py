"""Plain recursive-descent streaming (paper Algorithm 1) — no fast-forward.

This is the streaming model JSONSki builds on, *before* any fast-forward
optimization: one recursive function per JSON non-terminal, the query
automaton embedded at the [Key]/[Val]/[Ary-S]/[Ary-E]/[Com] transition
points, and every token recognized character by character.  It exists as

1. the ablation baseline "fast-forward off" (benchmark A1), and
2. the executable form of Algorithm 1 for the test suite (its matches
   must equal JSONSki's on every input).
"""

from __future__ import annotations


from repro.baselines.tokenizer import Tokenizer
from repro.engine.base import EngineBase
from repro.engine.names import decode_name as _decode_name
from repro.engine.output import MatchList
from repro.errors import JsonSyntaxError
from repro.jsonpath.ast import Path
from repro.query.automaton import QueryAutomaton, compile_query
from repro.stream.records import RecordStream

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D


class RecursiveDescentStreamer(EngineBase):
    """Algorithm 1: recursive-descent streaming query evaluation."""

    def __init__(self, query: str | Path) -> None:
        self.automaton: QueryAutomaton = compile_query(query)

    def run(self, data: bytes | str) -> MatchList:
        """Stream one record, examining every token."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        run = _Run(self.automaton, data)
        return run.execute()




class _Run:
    def __init__(self, automaton: QueryAutomaton, data: bytes) -> None:
        self.qa = automaton
        self.tok = Tokenizer(data)
        self.data = data
        self.matches = MatchList()

    def execute(self) -> MatchList:
        tok = self.tok
        tok.skip_ws()
        kind = tok.value_kind()
        state = self.qa.start_state
        if kind == "object":
            self._object(state)
        elif kind == "array":
            self._array(state)
        else:
            tok.read_primitive()  # a primitive root cannot match
        return self.matches

    # ------------------------------------------------------------------

    def _value(self, state: int) -> None:
        """Consume one value, collecting matches for accepting states."""
        tok = self.tok
        status = self.qa.status(state)
        start = tok.pos
        slot = self.matches.reserve() if status.is_accept else -1
        kind = tok.value_kind()
        if kind == "object":
            self._object(state)
        elif kind == "array":
            self._array(state)
        else:
            tok.read_primitive()
        if status.is_accept:
            self.matches.fill(slot, self.data, start, tok.pos)

    def _object(self, state: int) -> None:
        tok, qa = self.tok, self.qa
        tok.expect(_LBRACE, "'{'")
        tok.skip_ws()
        if tok.at_object_end():
            tok.pos += 1
            return
        while True:
            name = tok.read_string()  # [Key]
            tok.skip_ws()
            tok.expect(0x3A, "':'")
            tok.skip_ws()
            state2 = qa.on_key(state, _decode_name(name))
            self._value(state2)  # [Val] happens on return (state restored)
            if not tok.consume_comma_or(_RBRACE):
                return

    def _array(self, state: int) -> None:
        tok, qa = self.tok, self.qa
        tok.expect(_LBRACKET, "'['")  # [Ary-S]
        tok.skip_ws()
        if tok.at_array_end():
            tok.pos += 1
            return
        index = 0
        while True:
            state2 = qa.on_element(state, index)
            self._value(state2)
            if not tok.consume_comma_or(_RBRACKET):
                return  # [Ary-E]
            index += 1  # [Com]
