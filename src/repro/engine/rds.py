"""Plain recursive-descent streaming (paper Algorithm 1) — no fast-forward.

This is the streaming model JSONSki builds on, *before* any fast-forward
optimization: one recursive function per JSON non-terminal, the query
automaton embedded at the [Key]/[Val]/[Ary-S]/[Ary-E]/[Com] transition
points, and every token recognized character by character.  It exists as

1. the ablation baseline "fast-forward off" (benchmark A1), and
2. the executable form of Algorithm 1 for the test suite (its matches
   must equal JSONSki's on every input).
"""

from __future__ import annotations


from repro.baselines.tokenizer import Tokenizer
from repro.engine.base import EngineBase
from repro.engine.stats import FastForwardStats
from repro.engine.names import decode_name as _decode_name
from repro.engine.output import MatchList
from repro.jsonpath.ast import Path
from repro.observe import NOOP_TRACER
from repro.query.automaton import QueryAutomaton

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D


class RecursiveDescentStreamer(EngineBase):
    """Algorithm 1: recursive-descent streaming query evaluation.

    Instrumented like :class:`~repro.engine.jsonski.JsonSki`, which makes
    the ablation honest: with ``collect_stats=True`` its ``last_stats``
    reports the stream length with *zero* skipped bytes (this engine
    examines every character — the point of the A1 comparison), and with
    ``metrics=``/``tracer=`` it emits the same ``scan`` spans and
    ``engine.*`` counters as the fast-forwarding engines.
    """

    def __init__(
        self,
        query: str | Path,
        collect_stats: bool = False,
        tracer=None,
        metrics=None,
        limits=None,
    ) -> None:
        from repro.engine.base import ensure_query_supported
        from repro.jsonpath.parser import parse_path
        from repro.resilience.guards import effective_limits

        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._metrics = metrics
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)
        self._observed = collect_stats or self._tracer.enabled or metrics is not None
        path = parse_path(query) if isinstance(query, str) else query
        ensure_query_supported(path, engine="rds", filters=False)
        with self._tracer.span("compile", engine="rds"):
            from repro.engine.prepared import cached_automaton

            self.automaton: QueryAutomaton = cached_automaton(path)
        self.last_stats: FastForwardStats | None = None

    def run(self, data: bytes | str) -> MatchList:
        """Stream one record, examining every token."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.limits.check_record_size(len(data))
        if not self._observed:
            return _Run(self.automaton, data, self.limits).execute()
        tracer = self._tracer
        with tracer.span("scan", engine="rds", bytes=len(data)) as span:
            matches = _Run(self.automaton, data, self.limits).execute()
            span.set(matches=len(matches))
        stats = FastForwardStats()
        stats.total_length = len(data)  # no skips: every byte examined
        self.last_stats = stats
        if self._metrics is not None:
            self._metrics.merge(stats.registry)
            self._metrics.counter("engine.runs").add(1)
            self._metrics.counter("engine.matches").add(len(matches))
            self._metrics.counter("engine.bytes_consumed").add(len(data))
        if tracer.enabled:
            for match in matches:
                tracer.event("match_emit", engine="rds", start=match.start, end=match.end)
        return matches




class _Run:
    def __init__(self, automaton: QueryAutomaton, data: bytes, limits=None) -> None:
        self.qa = automaton
        self.tok = Tokenizer(data)
        self.data = data
        self.matches = MatchList()
        self.limits = limits
        self.deadline = limits.deadline if limits is not None else None

    def execute(self) -> MatchList:
        from repro.resilience.guards import depth_error_from_recursion

        tok = self.tok
        tok.skip_ws()
        kind = tok.value_kind()
        state = self.qa.start_state
        try:
            if kind == "object":
                self._object(state, 1)
            elif kind == "array":
                self._array(state, 1)
            else:
                tok.read_primitive()  # a primitive root cannot match
        except RecursionError as exc:
            raise depth_error_from_recursion(exc, "rds") from None
        return self.matches

    # ------------------------------------------------------------------

    def _value(self, state: int, depth: int) -> None:
        """Consume one value, collecting matches for accepting states."""
        tok = self.tok
        status = self.qa.status(state)
        start = tok.pos
        slot = self.matches.reserve() if status.is_accept else -1
        kind = tok.value_kind()
        if kind == "object":
            self._object(state, depth)
        elif kind == "array":
            self._array(state, depth)
        else:
            tok.read_primitive()
        if status.is_accept:
            self.matches.fill(slot, self.data, start, tok.pos)

    def _object(self, state: int, depth: int = 1) -> None:
        tok, qa = self.tok, self.qa
        if self.limits is not None:
            self.limits.enter(depth, tok.pos)
        deadline = self.deadline
        members = 0
        tok.expect(_LBRACE, "'{'")
        tok.skip_ws()
        if tok.at_object_end():
            tok.pos += 1
            return
        while True:
            if deadline is not None:
                members += 1
                if (members & 255) == 0:
                    deadline.check(tok.pos)
            name = tok.read_string()  # [Key]
            tok.skip_ws()
            tok.expect(0x3A, "':'")
            tok.skip_ws()
            state2 = qa.on_key(state, _decode_name(name))
            self._value(state2, depth + 1)  # [Val] happens on return (state restored)
            if not tok.consume_comma_or(_RBRACE):
                return

    def _array(self, state: int, depth: int = 1) -> None:
        tok, qa = self.tok, self.qa
        if self.limits is not None:
            self.limits.enter(depth, tok.pos)
        deadline = self.deadline
        tok.expect(_LBRACKET, "'['")  # [Ary-S]
        tok.skip_ws()
        if tok.at_array_end():
            tok.pos += 1
            return
        index = 0
        while True:
            if deadline is not None and (index & 255) == 255:
                deadline.check(tok.pos)
            state2 = qa.on_element(state, index)
            self._value(state2, depth + 1)
            if not tok.consume_comma_or(_RBRACKET):
                return  # [Ary-E]
            index += 1  # [Com]
