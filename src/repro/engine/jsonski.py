"""JSONSki: recursive-descent streaming with bit-parallel fast-forwarding.

This is the paper's Algorithm 2 made whole: the recursive-descent
streaming model of Section 3.1 drives the query automaton, and every
opportunity of Section 3.2 is taken through the fast-forward functions of
:mod:`repro.engine.fastforward`:

- **G1** — inside a container whose matching values must be objects (or
  arrays), sweep directly to the next value of that type
  (``goToObjAttr``/``goToAryElem``), never touching the skipped
  attributes' names or the primitive runs in between.
- **G2** — when the automaton reports UNMATCHED for an attribute name or
  element index, go over the value by type without examining it.
- **G3** — when the automaton reports ACCEPT, go over the value the same
  way but record it as a match (the output *is* the raw skipped text).
- **G4** — after any attribute of an object matches (concrete names are
  unique), fast-forward to the object's end.
- **G5** — with index constraints ``[n]``/``[m:n]``, skip the elements
  before the range and cut to the array's end once past it.

Match offsets, per-group fast-forward statistics (Table 6), and the
descendant extension (``..``, with type inference disabled as the paper
predicts) are all handled here.

Implementation note: the ``_Run`` methods are written against raw bytes
and int status flags with locals pulled out of ``self`` — this is the
innermost loop of the library, and attribute lookups and enum dispatch
were measurable against the character-at-a-time baselines.
"""

from __future__ import annotations

from repro.bits.classify import CharClass
from repro.bits.index import DEFAULT_CHUNK_SIZE
from repro.engine.base import EngineBase
from repro.engine.names import decode_name
from repro.engine.fastforward import make_fastforwarder
from repro.engine.output import MatchList
from repro.engine.stats import FastForwardStats
from repro.errors import JsonSyntaxError
from repro.observe import NOOP_TRACER, MetricsRegistry
from repro.jsonpath.ast import Path
from repro.resilience.guards import Limits, depth_error_from_recursion, effective_limits
from repro.engine.prepared import cached_automaton
from repro.query.automaton import ACCEPT, ALIVE, QueryAutomaton
from repro.stream.buffer import StreamBuffer, as_stream_buffer
from repro.stream.records import RecordStream

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_QUOTE, _COMMA, _COLON = 0x22, 0x2C, 0x3A
_QUOTE_B, _BACKSLASH = b'"', 0x5C
_WS = frozenset(b" \t\n\r")


class _LimitReached(Exception):
    """Internal: the run collected as many matches as requested."""


class JsonSki(EngineBase):
    """The JSONSki streaming engine for one compiled query.

    Parameters
    ----------
    query:
        JSONPath text or a parsed :class:`Path`.
    mode:
        Scanner implementation: ``'vector'`` (default) or ``'word'``
        (paper-faithful word-at-a-time bit manipulation).
    chunk_size, cache_chunks:
        Index chunking; see :class:`repro.bits.index.BufferIndex`.
    collect_stats:
        When true, :attr:`last_stats` carries the per-group fast-forward
        ratios of the most recent run (Table 6).
    tracer:
        A :class:`repro.observe.Tracer` receiving ``compile``/``scan``
        spans and ``fastforward``/``match_emit`` events.  Defaults to the
        shared no-op tracer, which costs nothing on the hot path.
    metrics:
        A :class:`repro.observe.MetricsRegistry` accumulating this
        engine's counters across runs (fast-forward bytes per group,
        index chunk builds/evictions, scanner primitive calls, matches
        emitted).  ``None`` (default) disables metrics collection.
    limits:
        Resource guards (:class:`repro.resilience.Limits`): ``max_depth``
        (on by default — a nesting bomb raises
        :class:`~repro.errors.DepthLimitError` instead of blowing the
        interpreter stack), ``max_record_bytes``, and a cooperative
        ``deadline`` checked at container boundaries.  ``None`` means the
        safety defaults; pass ``Limits.unlimited()`` for trusted input.

    Example
    -------
    >>> engine = JsonSki("$.place.name")
    >>> engine.run(b'{"place": {"name": "Manhattan"}}').values()
    ['Manhattan']

    .. note:: This one-shot constructor surface is kept for
       compatibility; it is a thin layer over the two-stage
       prepare/index/run API, which new code should prefer —
       ``repro.compile(query)`` returns a
       :class:`~repro.engine.prepared.PreparedQuery` and
       ``repro.index(data)`` a reusable stage-1 index (see
       ``docs/two-stage.md``).  Constructing the internal ``_Run`` type
       directly is unsupported and its signature changes without notice.
    """

    def __init__(
        self,
        query: str | Path,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
        collect_stats: bool = False,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        limits: Limits | None = None,
    ) -> None:
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._metrics = metrics
        self.limits = effective_limits(limits)
        #: Observed mode: any per-run bookkeeping beyond ``collect_stats``.
        self._observed = self._tracer.enabled or metrics is not None
        with self._tracer.span("compile", engine="jsonski"):
            path = query if isinstance(query, Path) else None
            if path is None:
                from repro.jsonpath.parser import parse_path

                path = parse_path(query)
            self._delegate = None
            if path.has_filter:
                # Filter predicates are evaluated by query splitting (see
                # repro.engine.filtered); this instance proxies to the
                # composed engine.
                from repro.engine.filtered import FilteredJsonSki

                self._delegate = FilteredJsonSki(
                    path, mode=mode, chunk_size=chunk_size,
                    cache_chunks=cache_chunks, collect_stats=collect_stats,
                    tracer=tracer, metrics=metrics, limits=limits,
                )
                self.automaton = None
            else:
                # Process-wide LRU: every engine compiled from the same
                # path shares one automaton (repro.engine.prepared).
                self.automaton = cached_automaton(path)
        self.path = path
        self.mode = mode
        self.chunk_size = chunk_size
        self.cache_chunks = cache_chunks
        self.collect_stats = collect_stats
        self.last_stats: FastForwardStats | None = None
        #: Raw attribute name -> decoded text, shared across runs (dataset
        #: keys repeat massively).
        self._name_cache: dict[bytes, str] = {}

    # ------------------------------------------------------------------

    def _buffer(self, data: bytes | str | StreamBuffer) -> StreamBuffer:
        buffer = as_stream_buffer(data, mode=self.mode, chunk_size=self.chunk_size, cache_chunks=self.cache_chunks)
        self.limits.check_record_size(len(buffer.data))
        if self._observed:
            if self._tracer.enabled:
                buffer.index.tracer = self._tracer
            if self._metrics is not None:
                buffer.scanner.attach_metrics(self._metrics)
        return buffer

    def _finish_observed(self, run: "_Run", buffer: StreamBuffer, index_before: tuple[int, int, int]) -> None:
        """Flush one observed run into the tracer and registry."""
        tracer = self._tracer
        if tracer.enabled:
            if run.trace:
                for group, start, end in run.trace:
                    tracer.event("fastforward", group=group, start=start, end=end, bytes=end - start)
            for match in run.matches:
                tracer.event("match_emit", start=match.start, end=match.end)
        registry = self._metrics
        if registry is not None:
            if run.stats is not None:
                registry.merge(run.stats.registry)
            registry.counter("engine.runs").add(1)
            registry.counter("engine.matches").add(len(run.matches))
            registry.counter("engine.bytes_consumed").add(run.pos)
            index = buffer.index
            built0, evicted0, words0 = index_before
            registry.counter("index.chunks_built").add(index.chunks_built - built0)
            registry.counter("index.chunks_evicted").add(index.chunks_evicted - evicted0)
            registry.counter("index.words_classified").add(index.words_built - words0)

    @staticmethod
    def _index_snapshot(buffer: StreamBuffer) -> tuple[int, int, int]:
        index = buffer.index
        return index.chunks_built, index.chunks_evicted, index.words_built

    def _execute(
        self,
        data: bytes | str | StreamBuffer,
        track_paths: bool = False,
        trace: bool = False,
        limit: int | None = None,
    ) -> "tuple[_Run, MatchList]":
        """The single match-iteration core behind every run view.

        Builds the buffer, performs one streaming pass with the requested
        bookkeeping, flushes observability (tracer span, fast-forward
        events, registry counters) when the engine is observed, and
        leaves :attr:`last_stats` set.  The public views differ only in
        which ``_Run`` options they enable and how they shape the result.
        """
        buffer = self._buffer(data)
        observed = self._observed
        tracer = self._tracer
        index_before = self._index_snapshot(buffer) if observed else (0, 0, 0)
        run = _Run(
            self.automaton,
            buffer,
            self.collect_stats or observed,
            self._name_cache,
            track_paths=track_paths,
            limit=limit,
            trace=trace or (observed and tracer.enabled),
            limits=self.limits,
        )
        if observed and tracer.enabled:
            with tracer.span("scan", engine="jsonski", bytes=len(buffer.data)) as span:
                matches = run.execute()
                span.set(matches=len(matches))
        else:
            matches = run.execute()
        if observed:
            self._finish_observed(run, buffer, index_before)
        self.last_stats = run.stats
        return run, matches

    def run(self, data: bytes | str | StreamBuffer) -> MatchList:
        """Stream one JSON record and return its matches.

        Match offsets are relative to the provided record text.
        """
        if self._delegate is not None:
            matches = self._delegate.run(data)
            self.last_stats = self._delegate.last_stats
            return matches
        return self._execute(data)[1]

    def run_with_paths(self, data: bytes | str | StreamBuffer) -> list[tuple[tuple, "object"]]:
        """Stream one record; return ``(normalized_path, Match)`` pairs.

        The normalized path is a tuple of attribute names (str) and array
        indices (int) from the root to the matched value, in the format of
        :func:`repro.reference.evaluate_with_paths`.
        """
        if self._delegate is not None:
            from repro.errors import UnsupportedQueryError

            raise UnsupportedQueryError("run_with_paths is not available for filter queries")
        run, matches = self._execute(data, track_paths=True)
        assert run.match_paths is not None
        return [(path, matches[i]) for i, path in enumerate(run.match_paths)]

    def trace_run(self, data: bytes | str | StreamBuffer):
        """Stream one record and return ``(matches, events)`` where
        ``events`` is the ordered fast-forward log: ``(group, start,
        end)`` for every skip the engine performed — the raw material
        behind the Table 6 ratios, useful for debugging and teaching.
        """
        if self._delegate is not None:
            from repro.errors import UnsupportedQueryError

            raise UnsupportedQueryError("trace_run is not available for filter queries")
        run, matches = self._execute(data, trace=True)
        return matches, run.trace

    def first(self, data: bytes | str | StreamBuffer):
        """First match in document order, or ``None`` — *early
        termination*: streaming stops the moment the match is captured
        (the generalization of the paper's NSPL1/WP2 observation)."""
        if self._delegate is not None:
            matches = self._delegate.run(data)
            return matches[0] if len(matches) else None
        run, matches = self._execute(data, limit=1)
        if self._metrics is not None and len(matches):
            # The early-termination proof: streaming stopped at the
            # first hit, leaving the tail of the record unconsumed.
            self._metrics.counter("engine.early_stops").add(1)
        return matches[0] if len(matches) else None

    def exists(self, data: bytes | str | StreamBuffer) -> bool:
        """Whether the record matches at all; stops at the first hit."""
        return self.first(data) is not None

    def run_records(self, stream: RecordStream) -> MatchList:
        """Stream a small-record sequence; matches accumulate in order."""
        all_matches = MatchList()
        tracer = self._tracer
        total_stats = FastForwardStats() if (self.collect_stats or self._observed) else None
        for i in range(len(stream)):
            if tracer.enabled:
                with tracer.span("record", index=i):
                    matches = self.run(stream.record(i))
            else:
                matches = self.run(stream.record(i))
            all_matches.extend(matches)
            if total_stats is not None and self.last_stats is not None:
                total_stats.merge(self.last_stats)
        if self._metrics is not None:
            self._metrics.counter("engine.records").add(len(stream))
        self.last_stats = total_stats
        return all_matches


class _Run:
    """State of one streaming pass: position, matches, statistics."""

    def __init__(
        self,
        automaton: QueryAutomaton,
        buffer: StreamBuffer,
        collect_stats: bool,
        name_cache: dict[bytes, str],
        track_paths: bool = False,
        limit: int | None = None,
        trace: bool = False,
        limits: Limits | None = None,
    ) -> None:
        self.qa = automaton
        self.buffer = buffer
        #: Resource guards; ``deadline`` is hoisted so the member loops
        #: pay one ``is not None`` test when no deadline is set.
        self.limits = limits
        self.deadline = limits.deadline if limits is not None else None
        self.data = buffer.data
        self.size = len(buffer.data)
        self.ff = make_fastforwarder(buffer)
        self.matches = MatchList()
        self.stats = FastForwardStats() if collect_stats else None
        self.names = name_cache
        self.pos = 0
        #: Current container path (names/indices), when tracking paths.
        self.path_stack: list = []
        self.match_paths: list[tuple] | None = [] if track_paths else None
        self.limit = limit
        self._n_emitted = 0
        #: Optional fast-forward event log: (group, start, end) triples.
        self.trace: list[tuple[str, int, int]] | None = [] if trace else None

    # -- bookkeeping ----------------------------------------------------

    def _record(self, group: str, start: int, end: int) -> None:
        if self.stats is not None and end > start:
            self.stats.chars[group] += end - start
        if self.trace is not None and end > start:
            self.trace.append((group, start, end))

    def _skip_ws(self, pos: int) -> int:
        data, size = self.data, self.size
        while pos < size and data[pos] in _WS:
            pos += 1
        return pos

    def _rstrip(self, start: int, end: int) -> int:
        data = self.data
        while end > start and data[end - 1] in _WS:
            end -= 1
        return end

    def _name(self, raw: bytes) -> str:
        """Decode an attribute name (memoized; escape-free fast path)."""
        cached = self.names.get(raw)
        if cached is None:
            cached = self.names[raw] = decode_name(raw)
        return cached

    # -- entry ----------------------------------------------------------

    def execute(self) -> MatchList:
        self.pos = self._skip_ws(0)
        if self.pos >= self.size:
            raise JsonSyntaxError("empty input", 0)
        byte = self.data[self.pos]
        state = self.qa.start_state
        try:
            if byte == _LBRACE:
                self._object(state, 1)
            elif byte == _LBRACKET:
                self._array(state, 1)
            # A primitive root cannot match any path with at least one step.
        except _LimitReached:
            pass
        except RecursionError as exc:
            # Backstop for Limits.unlimited(): the depth counter normally
            # fires long before the interpreter stack does.
            raise depth_error_from_recursion(exc, "jsonski") from None
        if self.stats is not None:
            self.stats.total_length = self.size
        return self.matches

    def _emit(self, vstart: int, vend: int, key, state: int) -> None:
        """Record a match (and its path / the early-termination limit).

        ``state`` is the accepting automaton state — unused here, but the
        multi-query engine dispatches on it to tag matches per query.
        """
        self.matches.add(self.data, vstart, vend)
        if self.match_paths is not None:
            self.match_paths.append((*self.path_stack, key))
        self._n_emitted += 1
        if self.limit is not None and self._n_emitted >= self.limit:
            raise _LimitReached

    def _reserve(self, key, state: int):
        """Reserve a pre-order slot for a container match whose end is not
        yet known (descendant extension)."""
        slot = self.matches.reserve()
        if self.match_paths is not None:
            self.match_paths.append((*self.path_stack, key))
        self._n_emitted += 1
        return slot

    def _fill(self, token, vstart: int, vend: int) -> None:
        self.matches.fill(token, self.data, vstart, vend)

    # -- value dispatch ---------------------------------------------------

    def _skip_value(self, vstart: int, vbyte: int, group: str, in_object: bool) -> int:
        """G2/G3: go over a value without examining it; returns the
        position after a container value, or at the delimiter for a
        primitive."""
        if vbyte == _LBRACE:
            vend = self.ff.go_over_obj(vstart)
        elif vbyte == _LBRACKET:
            vend = self.ff.go_over_ary(vstart)
        else:
            vend = self.ff.go_over_pri(vstart, in_object=in_object)
        self._record(group, vstart, vend)
        return vend

    def _consume_value(self, state: int, vstart: int, vbyte: int, in_object: bool, depth: int) -> int:
        """MATCHED: recurse into a container; a primitive is a dead end
        (the automaton still expects deeper structure) and is gone over."""
        if vbyte == _LBRACE:
            self.pos = vstart
            self._object(state, depth)
            return self.pos
        if vbyte == _LBRACKET:
            self.pos = vstart
            self._array(state, depth)
            return self.pos
        vend = self.ff.go_over_pri(vstart, in_object=in_object)
        self._record("G2", vstart, vend)
        return vend

    def _descend(self, state: int, vstart: int, vbyte: int, in_object: bool, key, depth: int) -> int:
        """Recurse into a matched value, maintaining the path stack."""
        if self.match_paths is None:
            return self._consume_value(state, vstart, vbyte, in_object, depth)
        self.path_stack.append(key)
        try:
            return self._consume_value(state, vstart, vbyte, in_object, depth)
        finally:
            self.path_stack.pop()

    def _emit_end(self, vstart: int, vbyte: int, vend: int) -> int:
        """Trim a primitive's trailing whitespace before the delimiter."""
        if vbyte == _LBRACE or vbyte == _LBRACKET:
            return vend
        return self._rstrip(vstart, vend)

    # -- object (Algorithm 2) --------------------------------------------

    def _object(self, state: int, depth: int = 1) -> None:
        qa, ff, data = self.qa, self.ff, self.data
        find_next = self.buffer.scanner.find_next
        on_key, status_flags = qa.on_key, qa.status_flags
        if self.limits is not None:
            self.limits.enter(depth, self.pos)
        deadline = self.deadline
        members = 0
        if data[self.pos] != _LBRACE:
            raise JsonSyntaxError("expected '{'", self.pos)
        pos = self._skip_ws(self.pos + 1)
        if pos >= self.size:
            raise JsonSyntaxError("stream ended inside an object", pos)
        if data[pos] == _RBRACE:
            self.pos = pos + 1
            return
        if not qa.can_match_in_object(state):
            # The query selects from an array here; the object is
            # irrelevant in its entirety.
            end = ff.go_to_obj_end(pos)
            self._record("G2", pos, end)
            self.pos = end
            return
        expected = qa.expected_type(state)
        typed = expected == "object" or expected == "array"
        skippable = qa.object_skippable(state)
        while True:
            # ``pos`` is at the start of an attribute name.
            if pos >= self.size:
                raise JsonSyntaxError("stream ended inside an object", pos)
            if deadline is not None:
                members += 1
                if (members & 255) == 0:
                    deadline.check(pos)
            if typed:
                ended, p1, name_raw, vstart = ff.go_to_obj_attr(pos, expected)  # G1
                self._record("G1", pos, p1)
                if ended:
                    self.pos = p1
                    return
            else:
                if data[pos] != _QUOTE:
                    raise JsonSyntaxError("expected attribute name", pos)
                # Closing quote: memchr is faster than the bitmap when the
                # preceding byte proves the quote unescaped (the common
                # case); otherwise fall back to the unescaped-quote bitmap.
                close = data.find(_QUOTE_B, pos + 1)
                if close < 0:
                    raise JsonSyntaxError("unterminated attribute name", pos)
                if data[close - 1] == _BACKSLASH:
                    close = find_next(CharClass.QUOTE, pos + 1)
                    if close < 0:
                        raise JsonSyntaxError("unterminated attribute name", pos)
                # Legal JSON puts the colon right after the name (modulo
                # whitespace) — two byte reads instead of a bitmap scan.
                colon = self._skip_ws(close + 1)
                if colon >= self.size or data[colon] != _COLON:
                    raise JsonSyntaxError("attribute without ':'", close)
                name_raw = data[pos + 1 : close]
                vstart = self._skip_ws(colon + 1)
            name = self._name(name_raw)
            state2 = on_key(state, name)
            flags = status_flags(state2)
            if vstart >= self.size:
                raise JsonSyntaxError("stream ended before attribute value", vstart)
            vbyte = data[vstart]
            if flags == 0:  # UNMATCHED
                vend = self._skip_value(vstart, vbyte, "G2", True)
            elif flags == ACCEPT:
                vend = self._skip_value(vstart, vbyte, "G3", True)
                self._emit(vstart, self._emit_end(vstart, vbyte, vend), name, state2)
            elif flags == ALIVE:  # MATCHED
                vend = self._descend(state2, vstart, vbyte, True, name, depth + 1)
            elif self.limit is not None:
                # ACCEPT|ALIVE under early termination (limit=1): the outer
                # value is itself the next match in document order, so the
                # nested matches are never needed — skip instead of recurse.
                vend = self._skip_value(vstart, vbyte, "G3", True)
                self._emit(vstart, self._emit_end(vstart, vbyte, vend), name, state2)
            else:  # ACCEPT | ALIVE: pre-order — reserve before recursing
                token = self._reserve(name, state2)
                vend = self._descend(state2, vstart, vbyte, True, name, depth + 1)
                self._fill(token, vstart, self._emit_end(vstart, vbyte, vend))
            pos = vend
            if flags and skippable:
                end = ff.go_to_obj_end(pos)  # G4
                self._record("G4", pos, end)
                self.pos = end
                return
            pos = self._skip_ws(pos)
            byte = data[pos] if pos < self.size else -1
            if byte == _COMMA:
                pos = self._skip_ws(pos + 1)
            elif byte == _RBRACE:
                self.pos = pos + 1
                return
            else:
                raise JsonSyntaxError("expected ',' or '}' in object", pos)

    # -- array (Algorithm 2, array side) -----------------------------------

    def _array(self, state: int, depth: int = 1) -> None:
        qa, ff, data = self.qa, self.ff, self.data
        on_element, status_flags = qa.on_element, qa.status_flags
        if self.limits is not None:
            self.limits.enter(depth, self.pos)
        deadline = self.deadline
        if data[self.pos] != _LBRACKET:
            raise JsonSyntaxError("expected '['", self.pos)
        pos = self._skip_ws(self.pos + 1)
        if pos >= self.size:
            raise JsonSyntaxError("stream ended inside an array", pos)
        if data[pos] == _RBRACKET:
            self.pos = pos + 1
            return
        if not qa.can_match_in_array(state):
            end = ff.go_to_ary_end(pos)
            self._record("G2", pos, end)
            self.pos = end
            return
        rng = qa.element_range(state)
        start = stop = None
        if rng is not None:
            start, stop = rng
        expected = qa.expected_type(state)
        want_byte = _LBRACE if expected == "object" else _LBRACKET if expected == "array" else -1
        idx = 0
        while True:
            # ``pos`` is at the start of element ``idx``.
            if deadline is not None and (idx & 255) == 255:
                deadline.check(pos)
            if rng is not None:
                if stop is not None and idx >= stop:
                    end = ff.go_to_ary_end(pos)  # G5 (past the range)
                    self._record("G5", pos, end)
                    self.pos = end
                    return
                if idx < start:
                    ended, p1, skipped = ff.go_over_elems(pos, start - idx)  # G5
                    self._record("G5", pos, p1)
                    if ended:
                        self.pos = p1
                        return
                    idx += skipped
                    pos = p1
                    continue
            if pos >= self.size:
                raise JsonSyntaxError("stream ended inside an array", pos)
            vbyte = data[pos]
            if want_byte >= 0 and vbyte != want_byte:
                ended, p1, commas = ff.go_to_ary_elem(pos, expected)  # G1
                self._record("G1", pos, p1)
                if ended:
                    self.pos = p1
                    return
                idx += commas
                pos = p1
                continue
            state2 = on_element(state, idx)
            flags = status_flags(state2)
            vstart = pos
            if flags == 0:  # UNMATCHED
                vend = self._skip_value(vstart, vbyte, "G2", False)
            elif flags == ACCEPT:
                vend = self._skip_value(vstart, vbyte, "G3", False)
                self._emit(vstart, self._emit_end(vstart, vbyte, vend), idx, state2)
            elif flags == ALIVE:  # MATCHED
                vend = self._descend(state2, vstart, vbyte, False, idx, depth + 1)
            elif self.limit is not None:
                vend = self._skip_value(vstart, vbyte, "G3", False)
                self._emit(vstart, self._emit_end(vstart, vbyte, vend), idx, state2)
            else:  # ACCEPT | ALIVE
                token = self._reserve(idx, state2)
                vend = self._descend(state2, vstart, vbyte, False, idx, depth + 1)
                self._fill(token, vstart, self._emit_end(vstart, vbyte, vend))
            pos = self._skip_ws(vend)
            byte = data[pos] if pos < self.size else -1
            if byte == _COMMA:
                idx += 1
                pos = self._skip_ws(pos + 1)
            elif byte == _RBRACKET:
                self.pos = pos + 1
                return
            else:
                raise JsonSyntaxError("expected ',' or ']' in array", pos)
