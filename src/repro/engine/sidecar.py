"""Persistent structural-index sidecar (stage-1 cache on disk).

A sidecar file freezes one input's stage-1 artifacts — the per-chunk
string-filtered position arrays (``keep``/``keep_vals``/``quotes``) plus
the forward-chained string and depth carries — so a later process can
mmap them back and skip stage 1 entirely (the jXBW-style reusable
structural index, persisted).  Depth tables are *not* stored: they
rebuild lazily from the loaded position arrays exactly as they do from
freshly classified ones, so the format stays small and the lazy-build
contract of :class:`~repro.bits.posindex.PositionChunk` is unchanged.

Format (all integers little-endian)::

    offset 0   MAGIC            8 bytes  b"REPRIDX\\x01"
    offset 8   header_len       uint64
    offset 16  header           JSON (utf-8), then zero padding to 8
    aligned    payload          concatenated raw arrays, each 8-aligned

The header carries a ``format_version``, the corpus fingerprint
(length + CRC-32) and a payload CRC-32; any mismatch — magic, version,
fingerprint, truncation, checksum, engine mode, chunk size — raises
:class:`~repro.errors.IndexSidecarError`, which callers treat as
"rebuild from the bytes" (see
:meth:`repro.engine.prepared.IndexedBuffer.load_or_build`).  The payload
is mapped read-only, so many processes serving the same corpus share one
set of physical pages.

Only ``vector`` mode is covered: the word-at-a-time index stores full
bitmap words per chunk (32× larger) and exists for paper fidelity, not
production reuse.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.bits.posindex import DEPTH_ZERO, DepthCarry, PositionChunk
from repro.bits.strings import StringCarry
from repro.errors import IndexSidecarError
from repro.storage import REAL_FS, RealFS, atomic_write
from repro.stream.buffer import StreamBuffer

MAGIC = b"REPRIDX\x01"
FORMAT_VERSION = 1

#: Sidecar filename suffix (one sidecar per corpus/mode/chunk-size).
SUFFIX = ".ridx"


def _crc(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _align8(n: int) -> int:
    return (n + 7) & ~7


def fingerprint(data: bytes) -> dict[str, int]:
    """Cheap corpus identity: byte length + CRC-32 (as the checkpoint
    store uses for stream identity)."""
    return {"len": len(data), "crc32": _crc(data)}


def sidecar_path(cache_dir: str | Path, data: bytes, chunk_size: int) -> Path:
    """Deterministic sidecar location for ``data`` under ``cache_dir``."""
    fp = fingerprint(data)
    name = f"idx-{fp['crc32']:08x}-{fp['len']}-c{chunk_size}{SUFFIX}"
    return Path(cache_dir) / name


def save_buffer(
    buffer: StreamBuffer,
    path: str | Path,
    *,
    fs: RealFS = REAL_FS,
    metrics: Any = None,
) -> Path:
    """Write ``buffer``'s fully-built stage-1 index to ``path``.

    Builds any not-yet-built chunk first (the sidecar is a snapshot of
    the *complete* index), then persists through
    :func:`repro.storage.atomic_write`: temp-in-dir + fsync + rename +
    parent-directory fsync, temp file unlinked on any failure.  A
    killed or failed writer never leaves a torn sidecar — or a stranded
    ``.tmp<pid>`` — behind.  ``fs`` is the injectable syscall shim the
    disk-chaos harness uses to prove exactly that.
    """
    if buffer.mode != "vector":
        raise IndexSidecarError(
            f"index sidecars cover vector mode only, not {buffer.mode!r}"
        )
    index = buffer.index
    chunks = [index.get(cid) for cid in range(index.n_chunks)]

    blobs: list[bytes] = []
    offset = 0

    def blob(arr: np.ndarray, dtype: Any) -> list[int]:
        nonlocal offset
        raw = np.ascontiguousarray(arr, dtype=dtype).tobytes()
        padded = raw + b"\x00" * (_align8(len(raw)) - len(raw))
        blobs.append(padded)
        meta = [offset, int(len(arr))]
        offset += len(padded)
        return meta

    chunk_meta = []
    for ch in chunks:
        chunk_meta.append(
            {
                "start": ch.start,
                "length": ch.length,
                "keep": blob(ch.keep, np.int64),
                "vals": blob(ch.keep_vals, np.uint8),
                "quotes": blob(ch.quotes, np.int64),
                "carry_out": [ch.carry_out.escape, ch.carry_out.in_string],
                "depth_out": [ch.depth_out.depth, ch.depth_out.brace, ch.depth_out.bracket],
            }
        )

    payload = b"".join(blobs)
    header = {
        "format_version": FORMAT_VERSION,
        "mode": buffer.mode,
        "chunk_size": index.chunk_size,
        "n_chunks": index.n_chunks,
        "corpus": fingerprint(buffer.data),
        "payload_len": len(payload),
        "payload_crc32": _crc(payload),
        "chunks": chunk_meta,
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    prefix = MAGIC + struct.pack("<Q", len(header_bytes)) + header_bytes
    prefix += b"\x00" * (_align8(len(prefix)) - len(prefix))

    return atomic_write(path, (prefix, payload), fs=fs, metrics=metrics, kind="sidecar")


def _fail(message: str, reason: str) -> "IndexSidecarError":
    return IndexSidecarError(f"index sidecar rejected: {message}", reason=reason)


def load_buffer(
    path: str | Path,
    data: bytes,
    chunk_size: int | None = None,
) -> StreamBuffer:
    """Reconstruct a fully-warm vector :class:`StreamBuffer` for ``data``
    from the sidecar at ``path``.

    Position arrays are ``np.frombuffer`` views over a read-only mmap of
    the sidecar (zero copy, pages shared across processes); the chunk
    cache is pre-seeded so ``index.chunks_built`` stays 0 — stage 1 is
    truly skipped, not replayed.  Every validation failure raises
    :class:`~repro.errors.IndexSidecarError`.
    """
    try:
        with open(path, "rb") as handle:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except FileNotFoundError as exc:
        raise _fail(f"no sidecar at {path}", "missing") from exc
    except (OSError, ValueError) as exc:
        raise _fail(f"unreadable file: {exc}", "unreadable") from exc

    if len(mm) < 16 or mm[:8] != MAGIC:
        raise _fail("bad magic (not a sidecar, or a future incompatible layout)", "magic")
    (header_len,) = struct.unpack_from("<Q", mm, 8)
    if header_len > len(mm) - 16:
        raise _fail("truncated header", "truncated")
    try:
        # repro: ignore[RS010] -- parses the sidecar's own tiny metadata
        # header once per load, not matched corpus bytes.
        header = json.loads(mm[16 : 16 + header_len].decode("utf-8"))
        version = header["format_version"]
        mode = header["mode"]
        stored_chunk_size = int(header["chunk_size"])
        n_chunks = int(header["n_chunks"])
        corpus = header["corpus"]
        payload_len = int(header["payload_len"])
        payload_crc = int(header["payload_crc32"])
        chunk_meta = header["chunks"]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise _fail(f"unparseable header: {exc}", "header") from exc

    if version != FORMAT_VERSION:
        raise _fail(f"format version {version} (this build reads {FORMAT_VERSION})", "version")
    if mode != "vector":
        raise _fail(f"mode {mode!r} (vector only)", "mode")
    if chunk_size is not None and stored_chunk_size != chunk_size:
        raise _fail(f"chunk size {stored_chunk_size} (caller needs {chunk_size})", "chunk_size")
    if corpus != fingerprint(data):
        raise _fail(
            "corpus fingerprint mismatch (data changed since the sidecar was written)",
            "fingerprint",
        )
    if len(chunk_meta) != n_chunks:
        raise _fail(f"{len(chunk_meta)} chunk entries for n_chunks={n_chunks}", "layout")

    payload_start = _align8(16 + header_len)
    if payload_start + payload_len > len(mm):
        raise _fail("truncated payload", "truncated")
    if _crc(mm[payload_start : payload_start + payload_len]) != payload_crc:
        raise _fail("payload checksum mismatch (corrupt sidecar)", "checksum")

    def arr(meta: Any, dtype: Any, itemsize: int) -> np.ndarray:
        off, count = int(meta[0]), int(meta[1])
        if off < 0 or count < 0 or off + count * itemsize > payload_len:
            raise _fail("array bounds outside payload", "layout")
        return np.frombuffer(mm, dtype=dtype, count=count, offset=payload_start + off)

    buffer = StreamBuffer(data, mode="vector", chunk_size=stored_chunk_size, cache_chunks=None)
    index = buffer.index
    if index.n_chunks != n_chunks:
        raise _fail(
            f"n_chunks {n_chunks} for this corpus/chunk-size (expected {index.n_chunks})",
            "layout",
        )

    try:
        carries = [
            (
                int(meta["carry_out"][0]),
                int(meta["carry_out"][1]),
                int(meta["depth_out"][0]),
                int(meta["depth_out"][1]),
                int(meta["depth_out"][2]),
            )
            for meta in chunk_meta
        ]
        index.seed_carries(carries)
        for cid, meta in enumerate(chunk_meta):
            start = int(meta["start"])
            if start != cid * stored_chunk_size:
                raise _fail(f"chunk {cid} start {start} out of place", "layout")
            carry_in = StringCarry(0, 0) if cid == 0 else StringCarry(*carries[cid - 1][:2])
            depth_in = DEPTH_ZERO if cid == 0 else DepthCarry(*carries[cid - 1][2:])
            index._cache[cid] = PositionChunk(
                start=start,
                length=int(meta["length"]),
                keep=arr(meta["keep"], np.int64, 8),
                keep_vals=arr(meta["vals"], np.uint8, 1),
                quotes=arr(meta["quotes"], np.int64, 8),
                carry_in=carry_in,
                carry_out=StringCarry(*carries[cid][:2]),
                depth_in=depth_in,
                depth_out=DepthCarry(*carries[cid][2:]),
            )
    except (ValueError, KeyError, TypeError, IndexError) as exc:
        if isinstance(exc, IndexSidecarError):
            raise
        raise _fail(f"malformed chunk table: {exc}", "layout") from exc

    # The arrays' .base keeps the mmap alive; pin it on the buffer too so
    # introspection (and an empty-payload corpus) can't lose it early.
    buffer.sidecar_mmap = mm
    return buffer
