"""Match collection: lazy byte-range views over the input buffer.

Streaming engines output the *raw text* of each matched value (the paper's
G3 functions "output an object and move pos to its end" — no parsing of
the output).  :class:`Match` therefore stores byte offsets into the input
and decodes on demand: ``.raw`` and ``.text`` are zero-parse views,
``.value()`` parses on first touch and memoizes, and the typed accessors
(:meth:`Match.as_int`, :meth:`Match.as_str`, ...) decode scalar tokens
without a full ``json.loads``.

Internally matches are bare ``(source, start, end)`` tuples — engines add
thousands of matches per run, and dataclass construction was measurable.
:class:`Match` objects are materialized only on access, and
:class:`MatchList` caches each materialized view so repeated access (an
``@``-path predicate, then the consumer) parses every byte range at most
once per run.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.errors import InvariantError, MatchTypeError

#: Distinguishes "never parsed" from a memoized ``None`` (JSON ``null``).
_UNSET = object()


def _decode(text: bytes) -> Any:
    try:
        return json.loads(text)
    except RecursionError as exc:
        from repro.resilience.guards import depth_error_from_recursion

        raise depth_error_from_recursion(exc, "match-decode") from None


class Match:
    """One matched value: a lazy view over ``source[start:end]``.

    The parse-on-first-touch contract: constructing, counting, slicing
    (``.raw``/``.text``) and serializing (:meth:`MatchList.to_jsonl`)
    never run ``json.loads``; the first :meth:`value` call parses and
    memoizes, and later calls return the memoized object.
    """

    __slots__ = ("source", "start", "end", "_value")

    def __init__(self, source: bytes, start: int, end: int) -> None:
        self.source = source
        self.start = start
        self.end = end
        self._value: Any = _UNSET

    @property
    def text(self) -> bytes:
        """The raw matched JSON text (copies the slice)."""
        return self.source[self.start : self.end]

    @property
    def raw(self) -> memoryview:
        """Zero-copy view of the raw matched JSON text."""
        return memoryview(self.source)[self.start : self.end]

    @property
    def touched(self) -> bool:
        """Whether this view has already materialized its value."""
        return self._value is not _UNSET

    def value(self) -> Any:
        """Decode the matched text into a Python value (memoized).

        A matched slice nested past the C decoder's recursion limit (a
        skipped-region nesting bomb the engine emitted verbatim) raises
        :class:`~repro.errors.DepthLimitError`, not a bare
        :class:`RecursionError`.
        """
        if self._value is _UNSET:
            self._value = _decode(self.text)
        return self._value

    # -- typed accessors ----------------------------------------------
    # Scalar tokens decode without a full json.loads: the engine already
    # guarantees the slice is one JSON value, so int()/float()/substring
    # conversion on the raw bytes is both cheaper and allocation-free
    # compared to the general decoder.

    def _token(self) -> bytes:
        return self.source[self.start : self.end].strip()

    def as_int(self) -> int:
        """The match as an ``int``; :class:`MatchTypeError` otherwise."""
        if self._value is not _UNSET:
            if isinstance(self._value, bool) or not isinstance(self._value, int):
                raise MatchTypeError(f"match is not an integer: {self.text[:40]!r}")
            return self._value
        try:
            value = int(self._token())
        except ValueError:
            raise MatchTypeError(f"match is not an integer: {self.text[:40]!r}") from None
        self._value = value
        return value

    def as_float(self) -> float:
        """The match as a ``float`` (accepts any JSON number)."""
        if self._value is not _UNSET:
            if isinstance(self._value, bool) or not isinstance(self._value, (int, float)):
                raise MatchTypeError(f"match is not a number: {self.text[:40]!r}")
            return float(self._value)
        try:
            return float(self._token())
        except ValueError:
            raise MatchTypeError(f"match is not a number: {self.text[:40]!r}") from None

    def as_str(self) -> str:
        """The match as a ``str``; escape-free strings skip the decoder."""
        if self._value is not _UNSET:
            if not isinstance(self._value, str):
                raise MatchTypeError(f"match is not a string: {self.text[:40]!r}")
            return self._value
        token = self._token()
        if len(token) < 2 or token[:1] != b'"' or token[-1:] != b'"':
            raise MatchTypeError(f"match is not a string: {self.text[:40]!r}")
        if b"\\" not in token:
            value: str = token[1:-1].decode("utf-8")
        else:
            value = _decode(token)
        self._value = value
        return value

    def as_bool(self) -> bool:
        """The match as a ``bool``."""
        if self._value is not _UNSET:
            if not isinstance(self._value, bool):
                raise MatchTypeError(f"match is not a boolean: {self.text[:40]!r}")
            return self._value
        token = self._token()
        if token == b"true":
            self._value = True
        elif token == b"false":
            self._value = False
        else:
            raise MatchTypeError(f"match is not a boolean: {self.text[:40]!r}")
        return self._value

    def is_null(self) -> bool:
        """Whether the match is JSON ``null`` (never parses)."""
        if self._value is not _UNSET:
            return self._value is None
        return self._token() == b"null"

    # -- identity ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return (
            self.start == other.start
            and self.end == other.end
            and (self.source is other.source or self.source == other.source)
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end, len(self.source)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text[:40]
        suffix = b"..." if len(self.text) > 40 else b""
        return f"Match({self.start}:{self.end}, {preview + suffix!r})"


class MatchList:
    """Ordered collection of matches from one engine run.

    Terminal operations split into two families:

    - **Zero-parse**: ``len()`` / :meth:`count`, :meth:`texts`,
      :meth:`to_jsonl`, :meth:`spans` — these never touch the decoder.
    - **Materializing**: iteration, indexing and :meth:`values` hand out
      cached :class:`Match` views, so the same byte range decodes at
      most once no matter how many consumers touch it.
    """

    __slots__ = ("_matches", "_views")

    def __init__(self) -> None:
        self._matches: list[tuple[bytes, int, int] | None] = []
        self._views: dict[int, Match] = {}

    def add(self, source: bytes, start: int, end: int) -> None:
        self._matches.append((source, start, end))

    def add_match(self, match: Match) -> None:
        """Adopt an existing view, preserving its memoized value.

        Used when a match has already been materialized upstream (e.g. a
        filter predicate touched it) so the consumer does not pay a
        second parse for the same byte range.
        """
        self._views[len(self._matches)] = match
        self._matches.append((match.source, match.start, match.end))

    def reserve(self) -> int:
        """Reserve a slot for a match whose end is not yet known.

        Keeps document (pre-)order for container-valued matches that are
        emitted only after their content has been streamed — the
        descendant extension can find further matches *inside* such a
        value, and those must come after it.
        """
        self._matches.append(None)
        return len(self._matches) - 1

    def fill(self, slot: int, source: bytes, start: int, end: int) -> None:
        """Fill a slot created by :meth:`reserve`."""
        if self._matches[slot] is not None:
            raise InvariantError(f"slot {slot} already filled")
        self._matches[slot] = (source, start, end)

    def _entry(self, i: int) -> tuple[bytes, int, int]:
        entry = self._matches[i]
        if entry is None:
            raise InvariantError(f"match slot {i} was reserved but never filled")
        return entry

    def _view(self, i: int) -> Match:
        view = self._views.get(i)
        if view is None:
            view = Match(*self._entry(i))
            self._views[i] = view
        return view

    def __len__(self) -> int:
        return len(self._matches)

    def count(self) -> int:
        """Number of matches — a terminal op that never parses."""
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        for i in range(len(self._matches)):
            yield self._view(i)

    def __getitem__(self, i: int) -> Match:
        if i < 0:
            i += len(self._matches)
        return self._view(i)

    def spans(self) -> list[tuple[int, int]]:
        """``(start, end)`` byte range of every match (never parses)."""
        return [(start, end) for _, start, end in map(self._entry, range(len(self._matches)))]

    def texts(self) -> list[bytes]:
        """Raw text of every match, in document order."""
        return [source[start:end] for source, start, end in map(self._entry, range(len(self._matches)))]

    def values(self) -> list[Any]:
        """Decoded value of every match, in document order (memoized)."""
        return [self._view(i).value() for i in range(len(self._matches))]

    def extend(self, other: "MatchList") -> None:
        base = len(self._matches)
        self._matches.extend(other._matches)
        for i, view in other._views.items():
            self._views[base + i] = view

    def to_jsonl(self) -> bytes:
        """Serialize the matches as newline-delimited JSON (raw slices).

        Every match text is already valid JSON, so the output is valid
        JSONL without re-encoding — streaming output for streaming input.
        """
        return b"\n".join(self.texts()) + (b"\n" if len(self) else b"")
