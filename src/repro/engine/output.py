"""Match collection.

Streaming engines output the *raw text* of each matched value (the paper's
G3 functions "output an object and move pos to its end" — no parsing of
the output).  :class:`Match` therefore stores byte offsets into the input
and decodes lazily on request.

Internally matches are bare ``(source, start, end)`` tuples — engines add
thousands of matches per run, and dataclass construction was measurable;
:class:`Match` objects are materialized only on access.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import InvariantError


def _decode(text: bytes) -> Any:
    try:
        return json.loads(text)
    except RecursionError as exc:
        from repro.resilience.guards import depth_error_from_recursion

        raise depth_error_from_recursion(exc, "match-decode") from None


@dataclass(frozen=True)
class Match:
    """One matched value: ``source[start:end]``."""

    source: bytes
    start: int
    end: int

    @property
    def text(self) -> bytes:
        """The raw matched JSON text."""
        return self.source[self.start : self.end]

    def value(self) -> Any:
        """Decode the matched text into a Python value.

        A matched slice nested past the C decoder's recursion limit (a
        skipped-region nesting bomb the engine emitted verbatim) raises
        :class:`~repro.errors.DepthLimitError`, not a bare
        :class:`RecursionError`.
        """
        return _decode(self.text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.text[:40]
        suffix = b"..." if len(self.text) > 40 else b""
        return f"Match({self.start}:{self.end}, {preview + suffix!r})"


class MatchList:
    """Ordered collection of matches from one engine run."""

    __slots__ = ("_matches",)

    def __init__(self) -> None:
        self._matches: list[tuple[bytes, int, int] | None] = []

    def add(self, source: bytes, start: int, end: int) -> None:
        self._matches.append((source, start, end))

    def reserve(self) -> int:
        """Reserve a slot for a match whose end is not yet known.

        Keeps document (pre-)order for container-valued matches that are
        emitted only after their content has been streamed — the
        descendant extension can find further matches *inside* such a
        value, and those must come after it.
        """
        self._matches.append(None)
        return len(self._matches) - 1

    def fill(self, slot: int, source: bytes, start: int, end: int) -> None:
        """Fill a slot created by :meth:`reserve`."""
        if self._matches[slot] is not None:
            raise InvariantError(f"slot {slot} already filled")
        self._matches[slot] = (source, start, end)

    def _entry(self, i: int) -> tuple[bytes, int, int]:
        entry = self._matches[i]
        if entry is None:
            raise InvariantError(f"match slot {i} was reserved but never filled")
        return entry

    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        for i in range(len(self._matches)):
            yield Match(*self._entry(i))

    def __getitem__(self, i: int) -> Match:
        return Match(*self._entry(i))

    def texts(self) -> list[bytes]:
        """Raw text of every match, in document order."""
        return [source[start:end] for source, start, end in map(self._entry, range(len(self._matches)))]

    def values(self) -> list[Any]:
        """Decoded value of every match, in document order."""
        return [_decode(text) for text in self.texts()]

    def extend(self, other: "MatchList") -> None:
        self._matches.extend(other._matches)

    def to_jsonl(self) -> bytes:
        """Serialize the matches as newline-delimited JSON (raw slices).

        Every match text is already valid JSON, so the output is valid
        JSONL without re-encoding — streaming output for streaming input.
        """
        return b"\n".join(self.texts()) + (b"\n" if len(self) else b"")
