"""Bit-parallel fast-forward functions (paper Table 1, Algorithms 4-5).

All functions operate on absolute positions over a
:class:`repro.stream.buffer.StreamBuffer` and find their targets purely
through the scanner primitives (structural-interval boundaries, counting,
k-th selection) — never by examining characters one at a time.  The
counting-based pairing of Lemma 4.2 / Theorem 4.3 locates every object and
array end.

Position conventions:

- ``go_over_obj`` / ``go_over_ary`` take ``pos`` at the opening ``{`` /
  ``[`` and return the position *after* the matching closer.
- ``go_to_obj_end`` / ``go_to_ary_end`` take a position *inside* the
  container (at the current level) and likewise return the position after
  its closer.
- ``go_over_pri`` returns the position of the value's structural
  delimiter (``,`` or the container's closer).
- The G1 sweeps (:meth:`go_to_obj_attr`, :meth:`go_to_ary_elem`) and the
  G5 skip (:meth:`go_over_elems`) return plain tuples (documented on each
  method) — they sit on the engine's innermost loop, where object
  allocation is measurable.

Validation semantics follow the paper (Section 3.3): fast-forwarded
segments are checked only for brace/bracket pairing; a stream that ends
while a structure is open raises
:class:`repro.errors.StreamExhaustedError`.
"""

from __future__ import annotations

from repro.bits.classify import CharClass
from repro.bits.scanner import NOT_FOUND
from repro.errors import StreamExhaustedError
from repro.stream.buffer import StreamBuffer

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_QUOTE, _COMMA = 0x22, 0x2C
_QUOTE_B, _COMMA_B, _BACKSLASH = b'"', b",", 0x5C
_WS = frozenset(b" \t\n\r")


class FastForwarder:
    """The Table 1 function groups over one stream buffer."""

    def __init__(self, buffer: StreamBuffer) -> None:
        self.buffer = buffer
        self.scanner = buffer.scanner
        self.data = buffer.data
        self.size = len(buffer.data)
        # Bound methods: these are called once or more per skipped
        # structure, so attribute-lookup cost matters.
        self._find_next = buffer.scanner.find_next
        self._find_prev = buffer.scanner.find_prev
        self._count_range = buffer.scanner.count_range
        self._kth_in_range = buffer.scanner.kth_in_range
        self._pair_close = buffer.scanner.pair_close

    # ------------------------------------------------------------------
    # G2/G3 core: counting-based pairing (Algorithm 4, Theorem 4.3)

    def _go_to_close(self, pos: int, open_cls: CharClass, close_cls: CharClass, num_open: int) -> int:
        """Position after the closer that balances ``num_open`` opens.

        Delegates Algorithm 4's interval-counting walk (Theorem 4.3) to
        the scanner's :meth:`~repro.bits.scanner.Scanner.pair_close`: if an
        interval between successive opens holds at least ``num_open``
        closers, the structure ends there and the ``num_open``-th closer
        is its end; otherwise the unpaired-open count is carried into the
        next interval.
        """
        end = self._pair_close(open_cls, close_cls, pos, num_open)
        if end == NOT_FOUND:
            raise StreamExhaustedError(
                f"stream ended with unclosed {open_cls.value!r}", self.size
            )
        return end + 1

    def go_over_obj(self, pos: int) -> int:
        """``goOverObj()``: move past the object starting at ``pos``."""
        if self.data[pos] != _LBRACE:
            raise StreamExhaustedError("expected '{' to go over an object", pos)
        return self._go_to_close(pos + 1, CharClass.LBRACE, CharClass.RBRACE, 1)

    def go_over_ary(self, pos: int) -> int:
        """``goOverAry()``: move past the array starting at ``pos``."""
        if self.data[pos] != _LBRACKET:
            raise StreamExhaustedError("expected '[' to go over an array", pos)
        return self._go_to_close(pos + 1, CharClass.LBRACKET, CharClass.RBRACKET, 1)

    def go_to_obj_end(self, pos: int) -> int:
        """``goToObjEnd()`` (G4): from inside an object to after its ``}``."""
        return self._go_to_close(pos, CharClass.LBRACE, CharClass.RBRACE, 1)

    def go_to_ary_end(self, pos: int) -> int:
        """``goToAryEnd()`` (G5): from inside an array to after its ``]``."""
        return self._go_to_close(pos, CharClass.LBRACKET, CharClass.RBRACKET, 1)

    def go_over_pri(self, pos: int, in_object: bool) -> int:
        """``goOverPriAttr()`` / ``goOverPriElem()``: position of the
        structural delimiter ending the primitive value at ``pos``.

        The delimiter is the next structural ``,`` or the enclosing
        container's closer, whichever comes first — Algorithm 4's comma
        interval with the closer check folded into a single union-class
        scan.

        Fast paths: a non-string primitive cannot contain strings before
        its delimiter, so a byte-level memchr race between ``,`` and the
        closer is exact; a string primitive whose closing quote is
        provably unescaped (previous byte not a backslash) ends at the
        first non-whitespace byte after it.  Anything trickier falls back
        to the string-filtered bitmap scan.
        """
        data = self.data
        byte = data[pos]
        closer = _RBRACE if in_object else _RBRACKET
        if byte != _QUOTE:
            comma = data.find(_COMMA_B, pos)
            close = data.find(b"}" if in_object else b"]", pos)
            if comma < 0:
                delim = close
            elif close < 0:
                delim = comma
            else:
                delim = comma if comma < close else close
            if delim < 0:
                raise StreamExhaustedError("stream ended inside a primitive value", pos)
            return delim
        quote = data.find(_QUOTE_B, pos + 1)
        if quote > 0 and data[quote - 1] != _BACKSLASH:
            delim = quote + 1
            size = self.size
            while delim < size and data[delim] in _WS:
                delim += 1
            if delim < size and (data[delim] == _COMMA or data[delim] == closer):
                return delim
        cls = CharClass.COMMA_OR_RBRACE if in_object else CharClass.COMMA_OR_RBRACKET
        delim = self._find_next(cls, pos)
        if delim == NOT_FOUND:
            raise StreamExhaustedError("stream ended inside a primitive value", pos)
        return delim

    # ------------------------------------------------------------------
    # G1: type-directed sweeps (Algorithm 5)

    def go_to_obj_attr(self, pos: int, want: str) -> tuple[bool, int, bytes | None, int]:
        """``goToObjAttr()`` / ``goToAryAttr()``: sweep to the next
        attribute whose value is an object (``want='object'``) or array
        (``want='array'``).

        ``pos`` must be at the current level of the object (at an
        attribute name, or just after ``{`` or ``,``).  Runs of primitive
        attributes are crossed with a single jump to the next ``{``/``[``
        (the enhanced ``goOverPriAttrs`` of Algorithm 5); values of the
        wrong structured type are crossed with ``goOverObj``/``goOverAry``.

        Returns ``(ended, position, name_raw, value_pos)``:

        - ``(True, end_pos, None, 0)`` — the object closed; ``end_pos``
          is just past its ``}``.
        - ``(False, name_start, name_raw, value_pos)`` — an attribute of
          the wanted type; ``name_start`` is its opening quote.
        """
        want_byte = _LBRACE if want == "object" else _LBRACKET
        data, find_next = self.data, self._find_next
        cur = pos
        while True:
            nxt_open = find_next(CharClass.OPEN, cur)
            nxt_close = find_next(CharClass.RBRACE, cur)
            if nxt_close == NOT_FOUND:
                raise StreamExhaustedError("stream ended inside an object", cur)
            if nxt_open == NOT_FOUND or nxt_close < nxt_open:
                # No structured value before the object closes.
                return True, nxt_close + 1, None, 0
            open_byte = data[nxt_open]
            if open_byte == want_byte:
                name_start, name_raw = self._attr_name_before(nxt_open)
                return False, name_start, name_raw, nxt_open
            # A structured value of the other type: go over it and resume.
            if open_byte == _LBRACE:
                cur = self._go_to_close(nxt_open + 1, CharClass.LBRACE, CharClass.RBRACE, 1)
            else:
                cur = self._go_to_close(nxt_open + 1, CharClass.LBRACKET, CharClass.RBRACKET, 1)

    def go_to_ary_elem(self, pos: int, want: str) -> tuple[bool, int, int]:
        """``goToObjElem()`` / ``goToAryElem()``: sweep to the next element
        of the wanted structured type, counting crossed commas so index
        constraints stay exact (Algorithm 5's counter).

        Returns ``(ended, position, commas_skipped)``; ``position`` is one
        past ``]`` when ``ended``, else the element's opening character.
        """
        want_byte = _LBRACE if want == "object" else _LBRACKET
        data, find_next, count_range = self.data, self._find_next, self._count_range
        cur = pos
        commas = 0
        while True:
            nxt_open = find_next(CharClass.OPEN, cur)
            nxt_close = find_next(CharClass.RBRACKET, cur)
            if nxt_close == NOT_FOUND:
                raise StreamExhaustedError("stream ended inside an array", cur)
            if nxt_open == NOT_FOUND or nxt_close < nxt_open:
                commas += count_range(CharClass.COMMA, cur, nxt_close)
                return True, nxt_close + 1, commas
            commas += count_range(CharClass.COMMA, cur, nxt_open)
            open_byte = data[nxt_open]
            if open_byte == want_byte:
                return False, nxt_open, commas
            if open_byte == _LBRACE:
                cur = self._go_to_close(nxt_open + 1, CharClass.LBRACE, CharClass.RBRACE, 1)
            else:
                cur = self._go_to_close(nxt_open + 1, CharClass.LBRACKET, CharClass.RBRACKET, 1)

    # ------------------------------------------------------------------
    # G5: index-constrained element skipping

    def go_over_elems(self, pos: int, k: int) -> tuple[bool, int, int]:
        """``goOverElems(K)``: skip exactly ``k`` elements (and their
        separating commas) starting from the element at ``pos``.

        Returns ``(ended, position, elements_skipped)``: the start of the
        following element (``elements_skipped == k``), or one past ``]``
        if the array closes first.
        """
        data = self.data
        size = self.size
        cur = pos
        skipped = 0
        while skipped < k:
            while cur < size and data[cur] in _WS:
                cur += 1
            if cur >= size:
                raise StreamExhaustedError("stream ended inside an array", cur)
            byte = data[cur]
            if byte == _LBRACE:
                cur = self._go_to_close(cur + 1, CharClass.LBRACE, CharClass.RBRACE, 1)
            elif byte == _LBRACKET:
                cur = self._go_to_close(cur + 1, CharClass.LBRACKET, CharClass.RBRACKET, 1)
            else:
                cur = self.go_over_pri(cur, in_object=False)
            # After the value: the next structural char is ',' or ']'.
            while cur < size and data[cur] in _WS:
                cur += 1
            if cur >= size:
                raise StreamExhaustedError("stream ended inside an array", cur)
            delim_byte = data[cur]
            if delim_byte == _COMMA:
                cur += 1
                skipped += 1
            elif delim_byte == _RBRACKET:
                return True, cur + 1, skipped
            else:
                raise StreamExhaustedError("expected ',' or ']' after array element", cur)
        while cur < size and data[cur] in _WS:
            cur += 1
        return False, cur, skipped

    # ------------------------------------------------------------------
    # helpers

    def _attr_name_before(self, value_pos: int) -> tuple[int, bytes]:
        """Recover the attribute name whose value starts at ``value_pos``.

        The name's closing quote is the nearest unescaped quote behind the
        value (only the colon and whitespace separate them), found with
        the backward scanner primitive — still bit-parallel, no character
        scanning.
        """
        close = self._find_prev(CharClass.QUOTE, value_pos - 1)
        if close == NOT_FOUND:
            raise StreamExhaustedError("attribute value without a name", value_pos)
        open_quote = self._find_prev(CharClass.QUOTE, close - 1)
        if open_quote == NOT_FOUND:
            raise StreamExhaustedError("unpaired quote before attribute value", close)
        return open_quote, self.data[open_quote + 1 : close]


class VectorFastForwarder(FastForwarder):
    """Stage-2 fast-forwards over the leveled depth tables.

    Requires a scanner with :attr:`~repro.bits.scanner.Scanner.leveled`
    set (a :class:`~repro.bits.scanner.VectorScanner` over a
    :class:`~repro.bits.posindex.PositionBufferIndex`).  Skip-to-close
    queries already route through the scanner's depth-table
    ``pair_close``; this subclass additionally replaces the per-value G1
    sweeps and the per-element G5 loop with single leveled lookups
    (next wanted-type open at the current depth + k-th comma at the
    current depth).  Positions, statistics, and error classes on
    well-formed input match the word-at-a-time path byte for byte (the
    vector-vs-word equivalence suite enforces this); inside *malformed*
    skip regions the leveled lookup may tolerate delimiter garbage the
    byte loop would trip over — the paper's Section 3.3 stance that
    skipped regions are not validated.
    """

    def go_to_obj_attr(self, pos: int, want: str) -> tuple[bool, int, bytes | None, int]:
        """``goToObjAttr()`` as two leveled lookups: the enclosing
        object's closer bounds the sweep, and the next wanted-type open
        at the attribute-value depth is read straight from the opens-by-
        depth map (wrong-type siblings nest deeper and never surface)."""
        want_byte = _LBRACE if want == "object" else _LBRACKET
        scanner = self.scanner
        end, found = scanner.leveled_obj_attr(pos, want_byte)
        if end == NOT_FOUND:
            raise StreamExhaustedError("stream ended inside an object", pos)
        if found == NOT_FOUND:
            return True, end + 1, None, 0
        name_start, close = scanner.prev_quote_pair(found - 1)
        if close == NOT_FOUND:
            raise StreamExhaustedError("attribute value without a name", found)
        if name_start == NOT_FOUND:
            raise StreamExhaustedError("unpaired quote before attribute value", close)
        return False, name_start, self.data[name_start + 1 : close], found

    def go_to_ary_elem(self, pos: int, want: str) -> tuple[bool, int, int]:
        """``goToAryElem()`` leveled: next wanted-type open at the element
        depth, with crossed commas counted from the leveled comma map so
        index constraints stay exact."""
        want_byte = _LBRACE if want == "object" else _LBRACKET
        end, found, commas = self.scanner.leveled_ary_elem(pos, want_byte)
        if end == NOT_FOUND:
            raise StreamExhaustedError("stream ended inside an array", pos)
        if found == NOT_FOUND:
            return True, end + 1, commas
        return False, found, commas

    def go_over_elems(self, pos: int, k: int) -> tuple[bool, int, int]:
        """``goOverElems(K)`` as two searchsorted lookups: the enclosing
        array's closer bounds the span, then the ``k``-th element-level
        comma (combined depth of ``pos``) is read straight from the
        leveled comma map."""
        data = self.data
        size = self.size
        if k <= 0:
            cur = pos
            while cur < size and data[cur] in _WS:
                cur += 1
            return False, cur, 0
        scanner = self.scanner
        depth = scanner.structural_depth_before(pos)
        end = scanner.close_at_combined_depth(depth - 1, pos)
        if end == NOT_FOUND:
            raise StreamExhaustedError("stream ended inside an array", pos)
        comma, crossed = scanner.commas_at_depth(depth, pos, end, k)
        if comma == NOT_FOUND:
            return True, end + 1, crossed
        cur = comma + 1
        while cur < size and data[cur] in _WS:
            cur += 1
        return False, cur, k


def make_fastforwarder(buffer: StreamBuffer) -> FastForwarder:
    """Pick the fast-forwarder matching the buffer's scanner: the leveled
    :class:`VectorFastForwarder` when depth tables are available, the
    word-semantics :class:`FastForwarder` otherwise."""
    if getattr(buffer.scanner, "leveled", False):
        return VectorFastForwarder(buffer)
    return FastForwarder(buffer)
