"""Streaming engines: the paper's contribution.

- :mod:`repro.engine.rds` — plain recursive-descent streaming
  (Algorithm 1): every token examined, query automaton driven token by
  token.  Serves as the FF-off ablation baseline.
- :mod:`repro.engine.jsonski` — streaming with bit-parallel
  fast-forwarding (Algorithm 2): the JSONSki engine.
- :mod:`repro.engine.fastforward` — the G1-G5 fast-forward functions of
  Table 1, built on the scanner primitives.
- :mod:`repro.engine.output` / :mod:`repro.engine.stats` — match
  collection and fast-forward-ratio accounting (Table 6).
"""

from repro.engine.events import Event, iter_events
from repro.engine.jsonski import JsonSki
from repro.engine.multi import JsonSkiMulti
from repro.engine.output import Match, MatchList
from repro.engine.rds import RecursiveDescentStreamer
from repro.engine.stats import FastForwardStats

__all__ = ["Event", "FastForwardStats", "JsonSki", "JsonSkiMulti", "Match", "MatchList", "RecursiveDescentStreamer", "iter_events"]
