"""Filter predicates via query splitting.

A path with a filter — ``$.items[?(@.price > 10)].name`` — is evaluated
as a composition of filter-free streaming passes:

1. the **outer** engine streams the record for
   ``$.items[*]`` (the filter replaced by a wildcard), yielding each
   candidate element as a raw slice with its global offset;
2. the **predicate** runs over each slice, itself via tiny
   fast-forwarding sub-engines (one per ``@``-path), so even the
   predicate does not parse the whole element;
3. elements that pass are fed to the **inner** engine compiled for the
   remaining steps (``$.name`` relative to the element), with match
   offsets remapped to the original record.

The composition is recursive, so any number of filters nest naturally,
and the hot streaming paths stay completely unaware of predicates.
"""

from __future__ import annotations

from typing import Any

from repro.engine.base import EngineBase
from repro.errors import InvariantError
from repro.engine.output import Match, MatchList
from repro.jsonpath.ast import Filter, Path, WildcardIndex
from repro.jsonpath.filter import And, Comparison, Exists, FilterExpr, Not, Or, RelPath


class SlicePredicate:
    """Evaluate a :class:`FilterExpr` against a candidate match view.

    Each distinct ``@``-path is compiled once into a fast-forwarding
    sub-engine; existence and first-value extraction then stream the
    candidate element instead of parsing it wholesale.  An empty
    ``@``-path (the element itself) materializes the candidate's lazy
    view — memoized on the :class:`~repro.engine.output.Match`, so when
    the consumer later touches the same element it does not parse the
    byte range a second time.
    """

    def __init__(self, expr: FilterExpr, limits: Any = None) -> None:
        self.expr = expr
        self.limits = limits
        self._engines: dict[RelPath, Any] = {}
        self._collect(expr)

    def _collect(self, expr: FilterExpr) -> None:
        if isinstance(expr, (Exists, Comparison)):
            path = expr.path
            if path.steps and path not in self._engines:
                from repro.engine.jsonski import JsonSki

                # Predicate sub-engines inherit the caller's resource
                # guards: a depth bomb inside a candidate slice must hit
                # the same max_depth as the outer scan.
                self._engines[path] = JsonSki(Path(tuple(path.steps)), limits=self.limits)
        elif isinstance(expr, Not):
            self._collect(expr.operand)
        elif isinstance(expr, (And, Or)):
            self._collect(expr.left)
            self._collect(expr.right)

    def _resolve(self, path: RelPath, candidate: Match) -> tuple[bool, Any]:
        if not path.steps:
            try:
                # The predicate is this value's consumer; the memoized
                # parse is shared with any later consumer of the view.
                # repro: ignore[RS010] -- first touch of the lazy view, not an eager re-parse
                return True, candidate.value()
            except ValueError:
                # Undecodable element: the predicate fails; resource
                # guards (DepthLimitError) propagate as ever.
                return False, None
        match = self._engines[path].first(candidate.text)
        if match is None:
            return False, None
        # repro: ignore[RS010] -- predicate comparison consumes the sub-match value
        return True, match.value()

    def matches(self, candidate: Match | bytes) -> bool:
        """Whether ``candidate`` (a lazy view, or raw bytes) passes."""
        if not isinstance(candidate, Match):
            data = bytes(candidate)
            candidate = Match(data, 0, len(data))
        return self._eval(self.expr, candidate)

    def _eval(self, expr: FilterExpr, candidate: Match) -> bool:
        if isinstance(expr, Exists):
            found, _ = self._resolve(expr.path, candidate)
            return found
        if isinstance(expr, Comparison):
            found, value = self._resolve(expr.path, candidate)
            if not found:
                return False
            # Reuse the value-level comparison semantics.
            probe = Comparison(RelPath(()), expr.op, expr.literal)
            return probe.matches(value)
        if isinstance(expr, Not):
            return not self._eval(expr.operand, candidate)
        if isinstance(expr, And):
            return self._eval(expr.left, candidate) and self._eval(expr.right, candidate)
        if isinstance(expr, Or):
            return self._eval(expr.left, candidate) or self._eval(expr.right, candidate)
        raise InvariantError(f"unknown filter node {expr!r}")  # pragma: no cover


# repro: ignore[RS007] -- internal composition engine: JsonSki's constructor
# dispatches filter paths here; it is not separately user-selectable.
class FilteredJsonSki(EngineBase):
    """Streaming evaluation of a path containing filter steps."""

    def __init__(self, path: Path, **engine_kwargs: Any) -> None:
        from repro.engine.jsonski import JsonSki

        split = next(i for i, s in enumerate(path.steps) if isinstance(s, Filter))
        filter_step: Filter = path.steps[split]  # type: ignore[assignment]
        outer_path = Path(path.steps[:split] + (WildcardIndex(),))
        inner_steps = path.steps[split + 1 :]
        self.path = path
        self._engine_kwargs = engine_kwargs
        self.outer = JsonSki(outer_path, **engine_kwargs)
        self.predicate = SlicePredicate(filter_step.expr, limits=engine_kwargs.get("limits"))
        # The inner remainder may itself contain filters; JsonSki's
        # constructor dispatches back here in that case.
        self.inner = JsonSki(Path(inner_steps), **engine_kwargs) if inner_steps else None
        self.last_stats = None

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, str):
            data = data.encode("utf-8")
        candidates = self.outer.run(data)
        # Fast-forward statistics, where collected, describe the outer
        # pass (the one that scans the record).
        self.last_stats = self.outer.last_stats
        matches = MatchList()
        for candidate in candidates:
            if not self.predicate.matches(candidate):
                continue
            if self.inner is None:
                # Adopt the predicate-touched view: if the empty-@-path
                # predicate already parsed this element, the consumer
                # reuses that memoized value instead of parsing again.
                matches.add_match(candidate)
                continue
            for inner_match in self.inner.run(candidate.text):
                matches.add(data, candidate.start + inner_match.start, candidate.start + inner_match.end)
        return matches
