"""Fast-forward ratio accounting (paper Section 5.3, Table 6).

The *fast-forward ratio* is "the ratio between the characters
fast-forwarded and the total data stream length".  Each top-level
fast-forward invocation in the engine is attributed to one of the five
groups of Table 1; characters a G1 sweep skips via nested ``goOverObj``
calls count toward G1, matching the paper's per-group breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GROUPS = ("G1", "G2", "G3", "G4", "G5")


@dataclass
class FastForwardStats:
    """Characters fast-forwarded per function group."""

    chars: dict[str, int] = field(default_factory=lambda: {g: 0 for g in GROUPS})
    total_length: int = 0

    def record(self, group: str, n_chars: int) -> None:
        """Attribute ``n_chars`` skipped characters to ``group``."""
        if n_chars > 0:
            self.chars[group] += n_chars

    def merge(self, other: "FastForwardStats") -> None:
        """Accumulate another run's counters (small-record scenario)."""
        for group, n in other.chars.items():
            self.chars[group] += n
        self.total_length += other.total_length

    def ratio(self, group: str) -> float:
        """Fast-forward ratio of one group (0.0 when no input seen)."""
        if not self.total_length:
            return 0.0
        return self.chars[group] / self.total_length

    @property
    def overall_ratio(self) -> float:
        """Total fast-forward ratio across all groups."""
        if not self.total_length:
            return 0.0
        return sum(self.chars.values()) / self.total_length

    def as_row(self) -> dict[str, float]:
        """Table 6-shaped row: per-group and overall ratios."""
        row = {g: self.ratio(g) for g in GROUPS}
        row["Overall"] = self.overall_ratio
        return row
