"""Fast-forward ratio accounting (paper Section 5.3, Table 6).

The *fast-forward ratio* is "the ratio between the characters
fast-forwarded and the total data stream length".  Each top-level
fast-forward invocation in the engine is attributed to one of the five
groups of Table 1; characters a G1 sweep skips via nested ``goOverObj``
calls count toward G1, matching the paper's per-group breakdown.

Since the observability layer landed, :class:`FastForwardStats` is a
*view* over a :class:`repro.observe.MetricsRegistry`: the per-group
skip totals live in ``ff.skipped_bytes{group=...}`` counters and the
stream length in ``ff.total_bytes``, so the same numbers surface
identically through ``engine.last_stats`` (this class), the
``--metrics`` JSON document, and the Prometheus exposition.  The
original mapping interface (``stats.chars[group]``, ``total_length``)
is preserved on top of the counters.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.observe.metrics import Counter, MetricsRegistry

GROUPS = ("G1", "G2", "G3", "G4", "G5")


class _GroupChars(Mapping):
    """Dict-shaped mutable view over the per-group skip counters.

    Supports exactly the operations the engines and tests use:
    ``chars[g]``, ``chars[g] += n``, ``.items()``, iteration, ``len``.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, group: str) -> int:
        return self._counters[group].value

    def __setitem__(self, group: str, value: int) -> None:
        self._counters[group].value = value

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def items(self):
        return [(g, c.value) for g, c in self._counters.items()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self.items()))


class FastForwardStats:
    """Characters fast-forwarded per function group, as a registry view.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` backing the counters.  Omitted, a
        private registry is created — the pre-observability behaviour.
    """

    __slots__ = ("registry", "chars", "_group_counters", "_total")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._group_counters = {
            g: self.registry.counter("ff.skipped_bytes", group=g) for g in GROUPS
        }
        self._total = self.registry.counter("ff.total_bytes")
        self.chars = _GroupChars(self._group_counters)

    @property
    def total_length(self) -> int:
        return self._total.value

    @total_length.setter
    def total_length(self, value: int) -> None:
        self._total.value = value

    def record(self, group: str, n_chars: int) -> None:
        """Attribute ``n_chars`` skipped characters to ``group``."""
        if n_chars > 0:
            self._group_counters[group].value += n_chars

    def merge(self, other: "FastForwardStats") -> None:
        """Accumulate another run's counters (small-record scenario)."""
        for group, n in other.chars.items():
            self._group_counters[group].value += n
        self._total.value += other.total_length

    def ratio(self, group: str) -> float:
        """Fast-forward ratio of one group (0.0 when no input seen)."""
        total = self._total.value
        if not total:
            return 0.0
        return self._group_counters[group].value / total

    @property
    def overall_ratio(self) -> float:
        """Total fast-forward ratio across all groups."""
        total = self._total.value
        if not total:
            return 0.0
        return sum(c.value for c in self._group_counters.values()) / total

    @property
    def skipped(self) -> int:
        """Total characters fast-forwarded across all groups."""
        return sum(c.value for c in self._group_counters.values())

    def as_row(self) -> dict[str, float]:
        """Table 6-shaped row: per-group and overall ratios."""
        row = {g: self.ratio(g) for g in GROUPS}
        row["Overall"] = self.overall_ratio
        return row
