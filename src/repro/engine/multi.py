"""JSONSki for several queries in one streaming pass.

``JsonSkiMulti([q1, q2, ...])`` shares the input scan, the structural
index, and every fast-forward opportunity that remains sound for *all*
queries (see :class:`repro.query.multi.MultiQueryAutomaton`), and
returns one :class:`~repro.engine.output.MatchList` per query.

For workloads that ask multiple questions of the same stream (the
paper's evaluation runs two queries per dataset), this replaces k passes
with one.
"""

from __future__ import annotations

from repro.bits.index import DEFAULT_CHUNK_SIZE
from repro.engine.jsonski import _Run
from repro.engine.output import MatchList
from repro.engine.stats import FastForwardStats
from repro.jsonpath.ast import Path
from repro.observe import NOOP_TRACER
from repro.query.multi import MultiQueryAutomaton
from repro.stream.buffer import StreamBuffer, as_stream_buffer
from repro.stream.records import RecordStream


class _MultiRun(_Run):
    """One pass collecting matches per query id."""

    def __init__(self, automaton: MultiQueryAutomaton, buffer: StreamBuffer, collect_stats: bool, name_cache: dict, limits=None) -> None:
        super().__init__(automaton, buffer, collect_stats, name_cache, limits=limits)
        self.per_query = [MatchList() for _ in automaton.paths]

    def _emit(self, vstart: int, vend: int, key, state: int) -> None:
        for qid in self.qa.accepting(state):
            self.per_query[qid].add(self.data, vstart, vend)

    def _reserve(self, key, state: int):
        return [(qid, self.per_query[qid].reserve()) for qid in self.qa.accepting(state)]

    def _fill(self, token, vstart: int, vend: int) -> None:
        for qid, slot in token:
            self.per_query[qid].fill(slot, self.data, vstart, vend)


# repro: ignore[RS007] -- multi-query engine: its constructor takes a
# query *list*, so it cannot satisfy the single-query EngineInfo factory
# surface; selected through its own API (see docs/parallel.md).
class JsonSkiMulti:
    """Shared-pass JSONSki over a fixed set of queries.

    Example
    -------
    >>> engine = JsonSkiMulti(["$.a", "$.b[0]"])
    >>> a, b = engine.run(b'{"a": 1, "b": [2, 3]}')
    >>> a.values(), b.values()
    ([1], [2])
    """

    def __init__(
        self,
        queries: list[str | Path],
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
        collect_stats: bool = False,
        tracer=None,
        metrics=None,
        limits=None,
    ) -> None:
        from repro.resilience.guards import effective_limits

        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._metrics = metrics
        self.limits = effective_limits(limits)
        self._observed = self._tracer.enabled or metrics is not None
        with self._tracer.span("compile", engine="jsonski-multi", queries=len(list(queries))):
            self.automaton = MultiQueryAutomaton(list(queries))
        self.mode = mode
        self.chunk_size = chunk_size
        self.cache_chunks = cache_chunks
        self.collect_stats = collect_stats
        self.last_stats: FastForwardStats | None = None
        self._name_cache: dict[bytes, str] = {}

    @property
    def n_queries(self) -> int:
        return len(self.automaton.paths)

    def run(self, data: bytes | str | StreamBuffer) -> list[MatchList]:
        """Stream one record once; return one MatchList per query."""
        buffer = as_stream_buffer(data, mode=self.mode, chunk_size=self.chunk_size, cache_chunks=self.cache_chunks)
        self.limits.check_record_size(len(buffer.data))
        if not self._observed:
            run = _MultiRun(self.automaton, buffer, self.collect_stats, self._name_cache, limits=self.limits)
            run.execute()
            self.last_stats = run.stats
            return run.per_query
        tracer = self._tracer
        if tracer.enabled:
            buffer.index.tracer = tracer
        if self._metrics is not None:
            buffer.scanner.attach_metrics(self._metrics)
        with tracer.span("scan", engine="jsonski-multi", bytes=len(buffer.data)) as span:
            run = _MultiRun(self.automaton, buffer, True, self._name_cache, limits=self.limits)
            run.execute()
            span.set(matches=sum(len(m) for m in run.per_query))
        if self._metrics is not None:
            if run.stats is not None:
                self._metrics.merge(run.stats.registry)
            self._metrics.counter("engine.runs").add(1)
            self._metrics.counter("engine.matches").add(sum(len(m) for m in run.per_query))
            self._metrics.counter("engine.bytes_consumed").add(run.pos)
        self.last_stats = run.stats
        return run.per_query

    def run_records(self, stream: RecordStream) -> list[MatchList]:
        totals = [MatchList() for _ in range(self.n_queries)]
        for record in stream:
            for total, matches in zip(totals, self.run(record)):
                total.extend(matches)
        return totals
