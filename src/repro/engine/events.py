"""SAX-style streaming events (the token-level substrate, made public).

The engines in this package consume tokens privately; this module
exposes the same single-pass traversal as a generator of events, for
analytics that need structure but not JSONPath — schema discovery,
depth histograms, custom extraction logic:

>>> from repro.engine.events import iter_events
>>> [e.kind for e in iter_events(b'{"a": [1]}')]
['start_object', 'key', 'start_array', 'primitive', 'end_array', 'end_object']

Events carry byte offsets, so consumers can slice the raw text exactly
like the engines' matches.  The traversal is the detailed
(character-by-character) one: by definition an event stream examines
every token — fast-forwarding is exactly the optimization of *not*
producing these events, which is why JSONSki outperforms SAX-style
processing (paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.baselines.tokenizer import Tokenizer
from repro.engine.names import decode_name
from repro.errors import JsonSyntaxError

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COLON = 0x3A

#: Event kinds, in the order a well-formed record can produce them.
KINDS = ("start_object", "end_object", "start_array", "end_array", "key", "primitive")


@dataclass(frozen=True)
class Event:
    """One streaming event.

    ``start``/``end`` delimit the token's bytes (for containers the
    opening/closing character; for keys the name *including* quotes).
    ``value`` is the decoded key for ``key`` events, else ``None`` —
    primitives are not decoded (slice and decode lazily if needed).
    """

    kind: str
    start: int
    end: int
    value: str | None = None
    depth: int = 0


def iter_events(data: bytes | str) -> Iterator[Event]:
    """Yield the event stream of one JSON record.

    Raises :class:`~repro.errors.JsonSyntaxError` on malformed input (the
    traversal is detailed, so — unlike fast-forwarding — everything is
    checked to token granularity).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    tok = Tokenizer(data)
    tok.skip_ws()
    yield from _value(tok, depth=0)
    tok.skip_ws()
    if tok.pos != tok.size:
        raise JsonSyntaxError("trailing content after the record", tok.pos)


def _value(tok: Tokenizer, depth: int) -> Iterator[Event]:
    kind = tok.value_kind()
    if kind == "object":
        yield from _object(tok, depth)
    elif kind == "array":
        yield from _array(tok, depth)
    else:
        start = tok.pos
        tok.read_primitive()
        yield Event("primitive", start, tok.pos, depth=depth)


def _object(tok: Tokenizer, depth: int) -> Iterator[Event]:
    start = tok.pos
    tok.expect(_LBRACE, "'{'")
    yield Event("start_object", start, start + 1, depth=depth)
    tok.skip_ws()
    if tok.at_object_end():
        tok.pos += 1
        yield Event("end_object", tok.pos - 1, tok.pos, depth=depth)
        return
    while True:
        key_start = tok.pos
        raw = tok.read_string()
        yield Event("key", key_start, tok.pos, value=decode_name(raw), depth=depth)
        tok.skip_ws()
        tok.expect(_COLON, "':'")
        tok.skip_ws()
        yield from _value(tok, depth + 1)
        if not tok.consume_comma_or(_RBRACE):
            yield Event("end_object", tok.pos - 1, tok.pos, depth=depth)
            return


def _array(tok: Tokenizer, depth: int) -> Iterator[Event]:
    start = tok.pos
    tok.expect(_LBRACKET, "'['")
    yield Event("start_array", start, start + 1, depth=depth)
    tok.skip_ws()
    if tok.at_array_end():
        tok.pos += 1
        yield Event("end_array", tok.pos - 1, tok.pos, depth=depth)
        return
    while True:
        yield from _value(tok, depth + 1)
        if not tok.consume_comma_or(_RBRACKET):
            yield Event("end_array", tok.pos - 1, tok.pos, depth=depth)
            return


# ---------------------------------------------------------------------------
# small consumers built on the event stream


def depth_histogram(data: bytes | str) -> dict[int, int]:
    """Number of values (containers + primitives) at each depth."""
    histogram: dict[int, int] = {}
    for event in iter_events(data):
        if event.kind in ("start_object", "start_array", "primitive"):
            histogram[event.depth] = histogram.get(event.depth, 0) + 1
    return histogram


def key_frequencies(data: bytes | str) -> dict[str, int]:
    """How often each attribute name occurs, at any depth."""
    freq: dict[str, int] = {}
    for event in iter_events(data):
        if event.kind == "key":
            freq[event.value] = freq.get(event.value, 0) + 1
    return freq


def _segment(key: str) -> str:
    if key.isidentifier():
        return "." + key
    escaped = key.replace("\\", "\\\\").replace("'", "\\'")
    return f"['{escaped}']"


def discover_paths(data: bytes | str, max_paths: int = 1000) -> list[str]:
    """Distinct attribute paths present in the record (schema sketch).

    Array levels are abbreviated ``[*]``; at most ``max_paths`` distinct
    paths are collected, in first-appearance order.  Useful for writing
    queries against unfamiliar feeds: every returned string parses as a
    query for this package.
    """
    paths: list[str] = []
    seen: set[str] = set()
    segments: list[str] = []  # one per open value (root's is "")
    containers: list[str] = []  # 'obj'/'ary' per open container
    pending_key: str | None = None

    def record() -> None:
        if not segments or not any(segments):
            return
        path = "$" + "".join(segments)
        if path not in seen and len(seen) < max_paths:
            seen.add(path)
            paths.append(path)

    for event in iter_events(data):
        if event.kind == "key":
            pending_key = event.value
        elif event.kind in ("start_object", "start_array", "primitive"):
            if pending_key is not None:
                segments.append(_segment(pending_key))
                pending_key = None
            elif containers and containers[-1] == "ary":
                segments.append("[*]")
            else:
                segments.append("")  # the root value
            record()
            if event.kind == "start_object":
                containers.append("obj")
            elif event.kind == "start_array":
                containers.append("ary")
            else:
                segments.pop()  # a primitive's value closes immediately
        else:  # end_object / end_array
            containers.pop()
            segments.pop()
    return paths
