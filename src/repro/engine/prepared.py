"""Prepare/index/run: the two-stage engine API.

The two-stage hot path (``docs/two-stage.md``) separates work that
depends only on the *query* (automaton compilation), work that depends
only on the *data* (the stage-1 structural index — per-class position
arrays, leveled depth tables), and the stage-2 streaming pass that
consumes both.  This module gives each stage a first-class object:

- :func:`repro.compile` → :class:`PreparedQuery` — the compiled query,
  reusable across many buffers;
- :func:`repro.index` (or :meth:`PreparedQuery.index`) →
  :class:`IndexedBuffer` — one input's stage-1 artifacts, reusable
  across many queries;
- :meth:`PreparedQuery.run` — stage 2, accepting raw bytes *or* an
  :class:`IndexedBuffer`.

Amortization matrix::

    prepared = repro.compile("$.pd[*].id")
    indexed = repro.index(data)          # stage 1, once
    prepared.run(indexed)                # stage 2 only
    repro.compile("$.pd[*].sp").run(indexed)   # same index, new query
    prepared.run(other_data)             # same query, new buffer

The legacy one-shot surface (``JsonSki(query).run(data)``) remains a
thin wrapper over the same machinery and is kept for compatibility; new
code should prefer this API.  Constructing ``repro.engine.jsonski._Run``
directly is unsupported — it is an internal type whose signature changes
without notice (see ``docs/api.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path as FsPath
from threading import Lock
from typing import Any

from repro.bits.index import DEFAULT_CHUNK_SIZE
from repro.stream.buffer import StreamBuffer

#: Default size of the process-wide compiled-query LRU.  A workload sees
#: a small working set of hot query texts; 256 parsed ASTs plus their
#: automata are a few MB at most.
QUERY_CACHE_SIZE = 256


class CompiledQueryCache:
    """Process-wide LRU of parsed paths and compiled automata.

    Two layers, because the two artifacts have different keys and
    costs: query *text* → parsed :class:`~repro.jsonpath.ast.Path`
    (parse is regex-free but allocation-heavy), and canonical path text
    → :class:`~repro.query.automaton.QueryAutomaton` (compilation
    interns frontier states).  Automata are safe to share across engines
    and threads — their memo tables only ever grow with idempotent
    entries — so every engine compiled from the same path reuses one
    automaton object.

    Failures are never cached: a query that does not parse (or cannot
    compile, e.g. a filter path fed to :func:`compile_query`) raises
    exactly as before and leaves the cache untouched.
    """

    def __init__(self, maxsize: int = QUERY_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self._paths: OrderedDict[str, Any] = OrderedDict()
        self._automata: OrderedDict[str, Any] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def _get(self, table: OrderedDict, key: str) -> Any:
        with self._lock:
            cached = table.get(key)
            if cached is not None:
                table.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return cached

    def _put(self, table: OrderedDict, key: str, value: Any) -> None:
        with self._lock:
            table[key] = value
            table.move_to_end(key)
            while len(table) > self.maxsize:
                table.popitem(last=False)

    def parse(self, query: str) -> Any:
        """Parsed :class:`~repro.jsonpath.ast.Path` for ``query`` text."""
        cached = self._get(self._paths, query)
        if cached is None:
            from repro.jsonpath.parser import parse_path

            cached = parse_path(query)
            self._put(self._paths, query, cached)
        return cached

    def automaton(self, path: Any) -> Any:
        """Compiled automaton for ``path`` (text or parsed ``Path``)."""
        if isinstance(path, str):
            path = self.parse(path)
        key = path.unparse()
        cached = self._get(self._automata, key)
        if cached is None:
            from repro.query.automaton import compile_query

            cached = compile_query(path)
            self._put(self._automata, key, cached)
        return cached

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "paths": len(self._paths),
                "automata": len(self._automata),
            }

    def clear(self) -> None:
        with self._lock:
            self._paths.clear()
            self._automata.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache.  Tests swap this attribute to observe
#: eviction; call sites go through the module functions below so the
#: swap takes effect everywhere at once.
QUERY_CACHE = CompiledQueryCache()


def cached_parse(query: str) -> Any:
    """Parse JSONPath text through the process-wide LRU."""
    return QUERY_CACHE.parse(query)


def cached_automaton(path: Any) -> Any:
    """Compile a path through the process-wide LRU (shared automata)."""
    return QUERY_CACHE.automaton(path)


class IndexedBuffer:
    """One input's stage-1 artifacts: bytes plus a retained structural
    index, reusable across queries and runs.

    Unlike the transient :class:`~repro.stream.buffer.StreamBuffer` an
    engine builds per ``run(bytes)`` call (whose chunk cache is bounded
    because the buffer is throwaway), an :class:`IndexedBuffer` retains
    every built chunk (``cache_chunks=None``), so the second query over
    the same data pays zero stage-1 cost.  Construct via
    :func:`repro.index` or :meth:`PreparedQuery.index`.
    """

    def __init__(
        self,
        data: bytes | str | StreamBuffer,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if isinstance(data, StreamBuffer):
            self.buffer = data
        else:
            self.buffer = StreamBuffer(data, mode=mode, chunk_size=chunk_size, cache_chunks=None)
        #: Path of the sidecar this index was loaded from, if any.
        self.sidecar: FsPath | None = None

    @property
    def data(self) -> bytes:
        return self.buffer.data

    @property
    def mode(self) -> str:
        """Scanner mode the index was built for (``'vector'``/``'word'``)."""
        return self.buffer.mode

    def __len__(self) -> int:
        return len(self.buffer.data)

    def warm(self) -> "IndexedBuffer":
        """Eagerly build every chunk's stage-1 index (normally chunks
        build lazily as the scan reaches them).  Returns ``self``."""
        index = self.buffer.index
        for chunk_id in range(index.n_chunks):
            index.get(chunk_id)
        return self

    # -- persistence (structural-index sidecar) -------------------------

    def save(self, path: str | FsPath, fs: Any = None, metrics: Any = None) -> FsPath:
        """Persist the stage-1 index as a sidecar file (vector mode only).

        Warms every chunk first, then writes through
        :func:`repro.storage.atomic_write` (``fs`` injects the syscall
        shim for fault testing); see :mod:`repro.engine.sidecar` for the
        format.  Raises :class:`~repro.errors.IndexSidecarError` for
        word-mode buffers.
        """
        from repro.engine import sidecar
        from repro.storage import REAL_FS

        return sidecar.save_buffer(
            self.buffer, path, fs=fs if fs is not None else REAL_FS, metrics=metrics
        )

    @classmethod
    def load(cls, path: str | FsPath, data: bytes | str, chunk_size: int | None = None) -> "IndexedBuffer":
        """Reconstruct a fully-warm index for ``data`` from a sidecar.

        Any validation failure — magic, format version, corpus
        fingerprint, truncation, checksum — raises
        :class:`~repro.errors.IndexSidecarError`; callers that hold the
        bytes should fall back to building (:meth:`load_or_build`).
        """
        from repro.engine import sidecar

        if isinstance(data, str):
            data = data.encode("utf-8")
        indexed = cls(sidecar.load_buffer(path, data, chunk_size=chunk_size))
        indexed.sidecar = FsPath(path)
        return indexed

    @classmethod
    def load_or_build(
        cls,
        data: bytes | str,
        cache_dir: str | FsPath,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fs: Any = None,
        metrics: Any = None,
        lock_timeout: float = 30.0,
    ) -> "IndexedBuffer":
        """The caching entry point: reuse a valid sidecar under
        ``cache_dir`` or build (and best-effort persist) a fresh index.

        A missing, stale, corrupt, or version-mismatched sidecar is
        never fatal — the index is rebuilt from the bytes — but the
        fallback is neither silent nor destructive:

        - every rejection increments ``storage.sidecar_rejects`` with
          the validation ``reason`` (surfaced in CLI ``--metrics`` and
          serve ``/metrics``);
        - a sidecar that *exists* but fails validation is quarantined
          (renamed ``*.corrupt`` next to a reason note) instead of
          being overwritten, preserving the evidence;
        - rebuilds are **single-flight** across processes: concurrent
          cold-cache callers serialize on an advisory lock and all but
          the winner load the winner's sidecar
          (:func:`repro.storage.build_once`);
        - stale ``.tmp<pid>`` orphans from killed writers are swept on
          cache-dir open.

        Word-mode indexes build directly (the sidecar format covers
        vector mode only).  ``fs``/``metrics`` inject the syscall shim
        and counter registry (fault testing / isolation).
        """
        from repro.engine import sidecar
        from repro.errors import IndexSidecarError
        from repro.storage import REAL_FS, build_once, quarantine, sweep_stale_tmp
        from repro.storage.metrics import resolve

        if isinstance(data, str):
            data = data.encode("utf-8")
        if mode != "vector":
            return cls(data, mode=mode, chunk_size=chunk_size)
        if fs is None:
            fs = REAL_FS
        registry = resolve(metrics)
        corpus: bytes = data
        sweep_stale_tmp(FsPath(cache_dir), fs=fs, metrics=registry)
        path = sidecar.sidecar_path(cache_dir, corpus, chunk_size)

        def load() -> "IndexedBuffer | None":
            try:
                return cls.load(path, corpus, chunk_size=chunk_size)
            except IndexSidecarError as exc:
                reason = getattr(exc, "reason", "unspecified")
                registry.counter("storage.sidecar_rejects", reason=reason).add(1)
                if reason != "missing":
                    quarantine(path, reason, detail=str(exc), fs=fs, metrics=registry)
                return None

        def build() -> "IndexedBuffer":
            built = cls(corpus, mode=mode, chunk_size=chunk_size).warm()
            try:
                built.save(path, fs=fs, metrics=registry)
                built.sidecar = FsPath(path)
            except OSError:
                # Read-only or full cache dir: serve the built index anyway.
                pass
            return built

        result = build_once(
            path, load, build, lock_timeout=lock_timeout, fs=fs, metrics=registry
        )
        value = result.value
        assert isinstance(value, IndexedBuffer)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedBuffer({len(self)} bytes, mode={self.mode!r})"


# repro: ignore[RS003,RS007] -- not an engine: a wrapper the registry's
# compile() puts around every constructed engine; it takes the engine
# instance (limits and friends were already applied by the factory) and
# is selected through compile(), never registered itself.
class PreparedQuery:
    """A compiled query bound to one registered engine.

    Wraps the engine instance built by :func:`repro.compile`, adding the
    two-stage verbs (:meth:`index`, :meth:`run` over an
    :class:`IndexedBuffer`) while delegating the full engine surface
    (``first``, ``exists``, ``run_records``, ``last_stats``, ...)
    unchanged, so it is a drop-in replacement for the engine object the
    factory used to return.
    """

    def __init__(self, engine: Any, info: Any = None) -> None:
        self.engine = engine
        #: The registry :class:`~repro.registry.EngineInfo`, when known.
        self.info = info

    # -- two-stage verbs ------------------------------------------------

    def index(
        self,
        data: bytes | str | StreamBuffer,
        chunk_size: int | None = None,
        cache_dir: str | FsPath | None = None,
    ) -> IndexedBuffer:
        """Stage 1: build a reusable :class:`IndexedBuffer` for ``data``
        in this engine's scanner mode.

        With ``cache_dir``, stage 1 goes through the persistent sidecar
        cache (:meth:`IndexedBuffer.load_or_build`): a valid sidecar for
        these bytes skips indexing entirely; otherwise the index is
        built and persisted for the next run.
        """
        if isinstance(data, StreamBuffer):
            return IndexedBuffer(data)
        mode = getattr(self.engine, "mode", "vector")
        size = chunk_size if chunk_size is not None else getattr(self.engine, "chunk_size", DEFAULT_CHUNK_SIZE)
        if cache_dir is not None:
            return IndexedBuffer.load_or_build(data, cache_dir, mode=mode, chunk_size=size)
        return IndexedBuffer(data, mode=mode, chunk_size=size)

    @staticmethod
    def _coerce(data: Any) -> Any:
        return data.buffer if isinstance(data, IndexedBuffer) else data

    # -- execution views (all accept bytes / StreamBuffer / IndexedBuffer)

    def run(self, data: Any):
        """Stage 2: stream ``data`` (raw bytes, a ``StreamBuffer``, or a
        reusable :class:`IndexedBuffer`) and return the matches."""
        return self.engine.run(self._coerce(data))

    def first(self, data: Any):
        return self.engine.first(self._coerce(data))

    def exists(self, data: Any) -> bool:
        return self.engine.exists(self._coerce(data))

    def run_with_paths(self, data: Any):
        return self.engine.run_with_paths(self._coerce(data))

    def trace_run(self, data: Any):
        return self.engine.trace_run(self._coerce(data))

    def run_records(self, stream: Any):
        return self.engine.run_records(stream)

    @property
    def last_stats(self):
        return self.engine.last_stats

    @property
    def path(self):
        return getattr(self.engine, "path", None)

    def __getattr__(self, name: str) -> Any:
        # Anything not overridden (limits, automaton, mode, ...) reads
        # through to the engine, keeping old callers working unchanged.
        # Dunders are excluded so protocol probes (copy/pickle) don't
        # recurse through a half-initialized wrapper.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)  # repro: ignore[RS002] -- the __getattr__ protocol requires AttributeError
        return getattr(self.__dict__["engine"], name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.engine!r})"


def index(
    data: bytes | str | StreamBuffer,
    mode: str = "vector",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache_dir: str | FsPath | None = None,
) -> IndexedBuffer:
    """Build a reusable stage-1 index over ``data`` (module-level verb;
    see :class:`IndexedBuffer`).  ``cache_dir`` routes through the
    persistent sidecar cache (:meth:`IndexedBuffer.load_or_build`)."""
    if cache_dir is not None and not isinstance(data, StreamBuffer):
        return IndexedBuffer.load_or_build(data, cache_dir, mode=mode, chunk_size=chunk_size)
    return IndexedBuffer(data, mode=mode, chunk_size=chunk_size)
