"""Prepare/index/run: the two-stage engine API.

The two-stage hot path (``docs/two-stage.md``) separates work that
depends only on the *query* (automaton compilation), work that depends
only on the *data* (the stage-1 structural index — per-class position
arrays, leveled depth tables), and the stage-2 streaming pass that
consumes both.  This module gives each stage a first-class object:

- :func:`repro.compile` → :class:`PreparedQuery` — the compiled query,
  reusable across many buffers;
- :func:`repro.index` (or :meth:`PreparedQuery.index`) →
  :class:`IndexedBuffer` — one input's stage-1 artifacts, reusable
  across many queries;
- :meth:`PreparedQuery.run` — stage 2, accepting raw bytes *or* an
  :class:`IndexedBuffer`.

Amortization matrix::

    prepared = repro.compile("$.pd[*].id")
    indexed = repro.index(data)          # stage 1, once
    prepared.run(indexed)                # stage 2 only
    repro.compile("$.pd[*].sp").run(indexed)   # same index, new query
    prepared.run(other_data)             # same query, new buffer

The legacy one-shot surface (``JsonSki(query).run(data)``) remains a
thin wrapper over the same machinery and is kept for compatibility; new
code should prefer this API.  Constructing ``repro.engine.jsonski._Run``
directly is unsupported — it is an internal type whose signature changes
without notice (see ``docs/api.md``).
"""

from __future__ import annotations

from typing import Any

from repro.bits.index import DEFAULT_CHUNK_SIZE
from repro.stream.buffer import StreamBuffer


class IndexedBuffer:
    """One input's stage-1 artifacts: bytes plus a retained structural
    index, reusable across queries and runs.

    Unlike the transient :class:`~repro.stream.buffer.StreamBuffer` an
    engine builds per ``run(bytes)`` call (whose chunk cache is bounded
    because the buffer is throwaway), an :class:`IndexedBuffer` retains
    every built chunk (``cache_chunks=None``), so the second query over
    the same data pays zero stage-1 cost.  Construct via
    :func:`repro.index` or :meth:`PreparedQuery.index`.
    """

    def __init__(
        self,
        data: bytes | str | StreamBuffer,
        mode: str = "vector",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if isinstance(data, StreamBuffer):
            self.buffer = data
        else:
            self.buffer = StreamBuffer(data, mode=mode, chunk_size=chunk_size, cache_chunks=None)

    @property
    def data(self) -> bytes:
        return self.buffer.data

    @property
    def mode(self) -> str:
        """Scanner mode the index was built for (``'vector'``/``'word'``)."""
        return self.buffer.mode

    def __len__(self) -> int:
        return len(self.buffer.data)

    def warm(self) -> "IndexedBuffer":
        """Eagerly build every chunk's stage-1 index (normally chunks
        build lazily as the scan reaches them).  Returns ``self``."""
        index = self.buffer.index
        for chunk_id in range(index.n_chunks):
            index.get(chunk_id)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedBuffer({len(self)} bytes, mode={self.mode!r})"


# repro: ignore[RS003,RS007] -- not an engine: a wrapper the registry's
# compile() puts around every constructed engine; it takes the engine
# instance (limits and friends were already applied by the factory) and
# is selected through compile(), never registered itself.
class PreparedQuery:
    """A compiled query bound to one registered engine.

    Wraps the engine instance built by :func:`repro.compile`, adding the
    two-stage verbs (:meth:`index`, :meth:`run` over an
    :class:`IndexedBuffer`) while delegating the full engine surface
    (``first``, ``exists``, ``run_records``, ``last_stats``, ...)
    unchanged, so it is a drop-in replacement for the engine object the
    factory used to return.
    """

    def __init__(self, engine: Any, info: Any = None) -> None:
        self.engine = engine
        #: The registry :class:`~repro.registry.EngineInfo`, when known.
        self.info = info

    # -- two-stage verbs ------------------------------------------------

    def index(self, data: bytes | str | StreamBuffer, chunk_size: int | None = None) -> IndexedBuffer:
        """Stage 1: build a reusable :class:`IndexedBuffer` for ``data``
        in this engine's scanner mode."""
        if isinstance(data, StreamBuffer):
            return IndexedBuffer(data)
        return IndexedBuffer(
            data,
            mode=getattr(self.engine, "mode", "vector"),
            chunk_size=chunk_size if chunk_size is not None else getattr(self.engine, "chunk_size", DEFAULT_CHUNK_SIZE),
        )

    @staticmethod
    def _coerce(data: Any) -> Any:
        return data.buffer if isinstance(data, IndexedBuffer) else data

    # -- execution views (all accept bytes / StreamBuffer / IndexedBuffer)

    def run(self, data: Any):
        """Stage 2: stream ``data`` (raw bytes, a ``StreamBuffer``, or a
        reusable :class:`IndexedBuffer`) and return the matches."""
        return self.engine.run(self._coerce(data))

    def first(self, data: Any):
        return self.engine.first(self._coerce(data))

    def exists(self, data: Any) -> bool:
        return self.engine.exists(self._coerce(data))

    def run_with_paths(self, data: Any):
        return self.engine.run_with_paths(self._coerce(data))

    def trace_run(self, data: Any):
        return self.engine.trace_run(self._coerce(data))

    def run_records(self, stream: Any):
        return self.engine.run_records(stream)

    @property
    def last_stats(self):
        return self.engine.last_stats

    @property
    def path(self):
        return getattr(self.engine, "path", None)

    def __getattr__(self, name: str) -> Any:
        # Anything not overridden (limits, automaton, mode, ...) reads
        # through to the engine, keeping old callers working unchanged.
        # Dunders are excluded so protocol probes (copy/pickle) don't
        # recurse through a half-initialized wrapper.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)  # repro: ignore[RS002] -- the __getattr__ protocol requires AttributeError
        return getattr(self.__dict__["engine"], name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedQuery({self.engine!r})"


def index(
    data: bytes | str | StreamBuffer,
    mode: str = "vector",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> IndexedBuffer:
    """Build a reusable stage-1 index over ``data`` (module-level verb;
    see :class:`IndexedBuffer`)."""
    return IndexedBuffer(data, mode=mode, chunk_size=chunk_size)
