"""Common engine interface.

Every query processor in this package — JSONSki, the FF-off streamer,
and the four baselines — implements ``run`` / ``run_records`` over the
same :class:`~repro.engine.output.MatchList`; this base class adds the
derived conveniences (``count``, ``exists``, ``first``) so downstream
code can swap engines freely.

``exists`` and ``first`` are *early-termination* queries: a streaming
engine can stop at the first match (JSONSki overrides them to do exactly
that — the paper's NSPL1/WP2 observation generalized to an API), while
preprocessing engines inherit the run-everything defaults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.output import Match, MatchList
    from repro.jsonpath.ast import Path
    from repro.stream.records import RecordStream


def ensure_query_supported(
    path: "Path",
    *,
    engine: str,
    descendant: bool = True,
    filters: bool = True,
) -> None:
    """Uniform unsupported-feature check shared by engines and the
    registry: every engine that cannot run a query feature raises the
    same :class:`~repro.errors.UnsupportedQueryError` shape."""
    from repro.errors import UnsupportedQueryError

    if path.has_descendant and not descendant:
        raise UnsupportedQueryError(
            f"engine {engine!r} does not support descendant '..' steps"
        )
    if path.has_filter and not filters:
        raise UnsupportedQueryError(
            f"engine {engine!r} does not support filter predicates"
        )


class EngineBase:
    """Mixin providing derived query operations over ``run``.

    Uniform constructor surface: every engine accepts ``collect_stats=``
    and exposes ``last_stats`` — a populated
    :class:`~repro.engine.stats.FastForwardStats` registry view for the
    instrumented streaming engines, ``None`` for the baselines (which
    never fast-forward, so there is nothing to report).
    """

    #: Uniform ``last_stats`` contract: baselines leave this ``None``.
    last_stats = None
    collect_stats = False

    def run(self, data: bytes | str) -> "MatchList":  # pragma: no cover - abstract
        raise NotImplementedError

    def run_records(self, stream: "RecordStream") -> "MatchList":
        from repro.engine.output import MatchList

        all_matches = MatchList()
        for record in stream:
            all_matches.extend(self.run(record))
        return all_matches

    def run_file(self, path: str) -> "MatchList":
        """Read a file and stream it as one record."""
        with open(path, "rb") as handle:
            return self.run(handle.read())

    def iter_matches_jsonl(self, path: str):
        """Lazily yield ``(record_index, Match)`` over a JSONL file.

        Bounded memory: one record is resident at a time.  Matches
        reference each record's own bytes, so they stay valid after the
        generator advances.
        """
        from repro.stream.filestream import iter_jsonl

        for i, record in enumerate(iter_jsonl(path)):
            for match in self.run(record):
                yield i, match

    def count(self, data: bytes | str) -> int:
        """Number of matches in one record."""
        return len(self.run(data))

    def first(self, data: bytes | str) -> "Match | None":
        """The first match in document order, or ``None``."""
        matches = self.run(data)
        return matches[0] if len(matches) else None

    def exists(self, data: bytes | str) -> bool:
        """Whether the record contains at least one match."""
        return self.first(data) is not None
