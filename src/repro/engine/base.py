"""Common engine interface.

Every query processor in this package — JSONSki, the FF-off streamer,
and the four baselines — implements ``run`` / ``run_records`` over the
same :class:`~repro.engine.output.MatchList`; this base class adds the
derived conveniences (``count``, ``exists``, ``first``) so downstream
code can swap engines freely.

``exists`` and ``first`` are *early-termination* queries: a streaming
engine can stop at the first match (JSONSki overrides them to do exactly
that — the paper's NSPL1/WP2 observation generalized to an API), while
preprocessing engines inherit the run-everything defaults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.output import Match, MatchList
    from repro.stream.records import RecordStream


class EngineBase:
    """Mixin providing derived query operations over ``run``."""

    def run(self, data: bytes | str) -> "MatchList":  # pragma: no cover - abstract
        raise NotImplementedError

    def run_records(self, stream: "RecordStream") -> "MatchList":
        from repro.engine.output import MatchList

        all_matches = MatchList()
        for record in stream:
            all_matches.extend(self.run(record))
        return all_matches

    def run_file(self, path: str) -> "MatchList":
        """Read a file and stream it as one record."""
        with open(path, "rb") as handle:
            return self.run(handle.read())

    def iter_matches_jsonl(self, path: str):
        """Lazily yield ``(record_index, Match)`` over a JSONL file.

        Bounded memory: one record is resident at a time.  Matches
        reference each record's own bytes, so they stay valid after the
        generator advances.
        """
        from repro.stream.filestream import iter_jsonl

        for i, record in enumerate(iter_jsonl(path)):
            for match in self.run(record):
                yield i, match

    def count(self, data: bytes | str) -> int:
        """Number of matches in one record."""
        return len(self.run(data))

    def first(self, data: bytes | str) -> "Match | None":
        """The first match in document order, or ``None``."""
        matches = self.run(data)
        return matches[0] if len(matches) else None

    def exists(self, data: bytes | str) -> bool:
        """Whether the record contains at least one match."""
        return self.first(data) is not None
