"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json

from repro.staticcheck.core import RULE_REGISTRY, Finding


def render_text(findings: list[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{code}: {count}" for code, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(f"{len(findings)} finding{'s' if len(findings) != 1 else ''} ({breakdown})")
    else:
        lines.append("staticcheck: clean")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """JSON document: findings plus the rule catalogue (stable schema)."""
    return json.dumps(
        {
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "rules": {
                code: {"name": cls.name, "summary": cls.summary}
                for code, cls in sorted(RULE_REGISTRY.items())
            },
            "count": len(findings),
        },
        indent=2,
    )
