"""Project-specific static analysis (the engine-contract checker).

The reproduction's correctness rests on a handful of contracts that hold
only by convention — 64-bit clamping in the word kernels, the
:mod:`repro.errors` raise taxonomy, ``limits=`` threading through engine
composition, JSON-serializable checkpoint state, determinism on the
resume and differential-fuzz paths, no silent exception swallowing, and
registry completeness.  ``repro.staticcheck`` enforces them with a
single-pass AST analysis so a violation is a CI failure, not a latent
divergence bug for the fuzzer to stumble on.

Run it with::

    python -m repro.staticcheck src/

See ``docs/static-analysis.md`` for every rule, its rationale, and the
``# repro: ignore[RSxxx] -- reason`` suppression syntax.
"""

from __future__ import annotations

from repro.staticcheck.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    RULE_REGISTRY,
    check_paths,
    check_sources,
    register_rule,
)
from repro.staticcheck import rules as _rules  # noqa: F401  (registers RS001-RS007)
from repro.staticcheck.reporters import render_json, render_text

__all__ = [
    "FileContext",
    "Finding",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "check_paths",
    "check_sources",
    "register_rule",
    "render_json",
    "render_text",
]
