"""``python -m repro.staticcheck`` — the engine-contract checker CLI.

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from pathlib import Path

from repro.staticcheck.core import RULE_REGISTRY, check_paths, count_suppressions
from repro.staticcheck.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based invariant checker for the repro engine contracts "
                    "(see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--suppression-budget", metavar="FILE",
        help="fail if the checked paths carry more well-formed "
             "'# repro: ignore[...]' comments than 'budget: N' in FILE",
    )
    return parser


def enforce_budget(budget_file: str, paths: Sequence[str]) -> tuple[int, str]:
    """Compare the suppression count in ``paths`` against the budget file.

    Returns ``(exit_code, message)``.  The budget is a ratchet: raising
    it requires editing the checked-in file in the same commit as the
    new suppression, which makes every new exemption a reviewed act.
    """
    budget: int | None = None
    try:
        text = Path(budget_file).read_text(encoding="utf-8")
    except OSError as exc:
        return 2, f"error: cannot read budget file: {exc}"
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("budget:"):
            try:
                budget = int(line.partition(":")[2].strip())
            except ValueError:
                return 2, f"error: malformed budget line in {budget_file}: {raw!r}"
    if budget is None:
        return 2, f"error: no 'budget: N' line in {budget_file}"

    counts = count_suppressions(paths)
    total = sum(counts.values())
    if total > budget:
        lines = [
            f"suppression budget exceeded: {total} suppressions, budget {budget}"
            f" (from {budget_file})"
        ]
        lines += [f"  {path}: {n}" for path, n in sorted(counts.items())]
        lines.append(
            "Remove a suppression, or raise the budget in the same commit "
            "with a justification."
        )
        return 1, "\n".join(lines)
    return 0, f"suppressions: {total} within budget {budget}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, cls in sorted(RULE_REGISTRY.items()):
            print(f"{code}  {cls.name:28s} {cls.summary}")
        return 0

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        findings = check_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    output = render_json(findings) if args.format == "json" else render_text(findings)
    print(output)
    status = 1 if findings else 0

    if args.suppression_budget:
        budget_status, message = enforce_budget(args.suppression_budget, args.paths)
        stream = sys.stderr if budget_status else sys.stdout
        print(message, file=stream)
        status = max(status, budget_status)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
