"""``python -m repro.staticcheck`` — the engine-contract checker CLI.

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.staticcheck.core import RULE_REGISTRY, check_paths
from repro.staticcheck.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based invariant checker for the repro engine contracts "
                    "(see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, cls in sorted(RULE_REGISTRY.items()):
            print(f"{code}  {cls.name:28s} {cls.summary}")
        return 0

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        findings = check_paths(args.paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    output = render_json(findings) if args.format == "json" else render_text(findings)
    print(output)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
