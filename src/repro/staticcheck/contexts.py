"""Execution-context analysis on top of the call graph.

Answers the three questions the concurrency rules ask:

- **Which context(s) can run this function?**  Roots: every
  ``async def`` body runs on the event-loop thread (``loop``); a
  callable handed to ``run_in_executor``/``executor.submit`` runs on an
  executor thread (``executor``); ``Thread(target=...)`` runs on a
  dedicated thread (``thread``); process-pool submissions run in a
  *worker process* (``pool`` — its memory is not shared with ours, so
  it never races our state, but results merged back by the caller do).
  Contexts then flow along ordinary call edges; a dispatch edge does
  *not* propagate the caller's context — switching contexts is its
  whole job.  Edges *into* an ``async def`` also don't propagate:
  calling a coroutine function only creates the coroutine; its body
  always runs on the loop.

- **Does this function block?**  A fixed point over sync call chains:
  a function blocks if it directly calls a blocking primitive
  (``fcntl.flock``, ``os.fsync``/``os.replace``, ``mmap``, file
  open/read/write, ``time.sleep``) or calls — without a dispatch hop —
  a sync project function that blocks.  The chain to the primitive is
  kept for the diagnostic (``indexed -> load_or_build -> flock``).

- **Which objects are shared?**  A class is *shared* (long-lived,
  reachable from several contexts at once) if an instance is bound at
  module level (``QUERY_CACHE = CompiledQueryCache()``), if it defines
  async methods (servers hold themselves across contexts), or if a
  shared class stores/returns it (attribute annotations in
  ``__init__``/dataclass fields, method return annotations).  Writes to
  attributes of shared instances from ≥2 racing contexts are what
  RS013 reports.

``pool`` is deliberately excluded from :data:`RACING`: a worker process
mutating its own copy of a registry is not a race, and treating it as
one would drown the real loop-vs-executor findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_graph,
)

#: Contexts that share this process's memory and can interleave.
RACING = frozenset({"loop", "executor", "thread"})

#: Fully resolved external callables that block the calling thread.
BLOCKING_EXTERNAL = frozenset({
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "os.replace",
    "os.rename",
    "os.link",
    "os.unlink",
    "os.remove",
    "os.makedirs",
    "os.stat",
    "os.listdir",
    "fcntl.flock",
    "fcntl.lockf",
    "mmap.mmap",
    "open",
    "shutil.rmtree",
    "shutil.copyfile",
    "shutil.move",
    "subprocess.run",
    "subprocess.check_output",
})

#: Attribute names that block even when the receiver cannot be typed —
#: the ``pathlib.Path`` I/O surface plus the raw lock/sync syscalls.
#: Deliberately narrow: generic names (``read``, ``write``, ``get``)
#: would tar asyncio stream methods with the same brush.
BLOCKING_ATTRS = frozenset({
    "read_bytes",
    "read_text",
    "write_bytes",
    "write_text",
    "mkdir",
    "rmdir",
    "touch",
    "flock",
    "lockf",
    "fsync",
})


def is_blocking_site(site: CallSite) -> str | None:
    """The primitive's display name when this call site itself blocks."""
    if site.dispatch is not None:
        return None
    if site.external is not None:
        if site.external in BLOCKING_EXTERNAL:
            return site.external
        # match `pathlib.Path.open`-style dotted tails
        tail = site.external.rsplit(".", 1)[-1]
        if tail in BLOCKING_ATTRS:
            return site.external
    if not site.targets and site.attr in BLOCKING_ATTRS:
        return site.attr
    return None


@dataclass
class Analysis:
    """Whole-program facts shared by RS012-RS014."""

    graph: CallGraph
    #: function qualname -> execution contexts that can run it.
    contexts: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Functions whose body starts an event-loop stint: ``async def``s
    #: plus sync callables handed to ``call_soon``/``call_later``.
    #: RS012 reports only at these roots (one finding per bad call
    #: site, not one per function along the chain).
    loop_roots: set[str] = field(default_factory=set)
    #: sync function qualname -> chain of callee names down to the
    #: blocking primitive (last element).
    blocking: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Class qualnames whose instances are long-lived/shared.
    shared_classes: set[str] = field(default_factory=set)

    # -- conveniences for the rules ------------------------------------

    def racing_contexts(self, qualname: str) -> frozenset[str]:
        return self.contexts.get(qualname, frozenset()) & RACING

    def shared_class_names(self) -> set[str]:
        return {self.graph.classes[q].name for q in self.shared_classes}

    def chain_for(self, qualname: str) -> str:
        chain = self.blocking.get(qualname)
        if not chain:
            return _short(qualname)
        return " -> ".join([_short(qualname), *chain])


def _short(qualname: str) -> str:
    """`repro.serve.registry.Corpus.indexed` -> `Corpus.indexed`."""
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]


def build_analysis(files) -> Analysis:
    graph = build_graph(files)
    analysis = Analysis(graph)
    _propagate_contexts(analysis)
    _compute_blocking(analysis)
    _compute_shared_classes(analysis)
    return analysis


# -- context propagation ----------------------------------------------


def _propagate_contexts(analysis: Analysis) -> None:
    graph = analysis.graph
    contexts: dict[str, set[str]] = {q: set() for q in graph.functions}

    worklist: list[str] = []

    def seed(qualname: str, kind: str) -> None:
        if kind not in contexts.get(qualname, set()):
            contexts.setdefault(qualname, set()).add(kind)
            worklist.append(qualname)

    for qualname, info in graph.functions.items():
        if info.is_async:
            seed(qualname, "loop")
            analysis.loop_roots.add(qualname)
        for site in info.calls:
            if site.dispatch is None:
                continue
            for target in site.dispatch_targets:
                seed(target, site.dispatch)
                if site.dispatch == "loop":
                    analysis.loop_roots.add(target)

    while worklist:
        current = worklist.pop()
        info = graph.functions.get(current)
        if info is None:
            continue
        current_ctx = contexts[current]
        for site in info.calls:
            if site.dispatch is not None:
                continue  # dispatch switches context; seeded above
            for target in site.targets:
                callee = graph.functions.get(target)
                if callee is None or callee.is_async:
                    continue  # coroutine bodies always run on the loop
                known = contexts.setdefault(target, set())
                missing = current_ctx - known
                if missing:
                    known.update(missing)
                    worklist.append(target)

    analysis.contexts = {q: frozenset(c) for q, c in contexts.items()}


# -- blocking reach ----------------------------------------------------


def _compute_blocking(analysis: Analysis) -> None:
    graph = analysis.graph
    blocking: dict[str, tuple[str, ...]] = {}
    changed = True
    while changed:
        changed = False
        for qualname, info in graph.functions.items():
            if qualname in blocking:
                continue
            chain = _first_blocking_chain(info, blocking, graph)
            if chain is not None:
                blocking[qualname] = chain
                changed = True
    analysis.blocking = blocking


def _first_blocking_chain(
    info: FunctionInfo,
    blocking: dict[str, tuple[str, ...]],
    graph: CallGraph,
) -> tuple[str, ...] | None:
    for site in info.calls:
        primitive = is_blocking_site(site)
        if primitive is not None:
            return (primitive,)
        if site.dispatch is not None:
            continue
        for target in site.targets:
            callee = graph.functions.get(target)
            if callee is None or callee.is_async:
                continue
            tail = blocking.get(target)
            if tail is not None:
                return (_short(target), *tail)
    return None


# -- shared long-lived objects ----------------------------------------


def _compute_shared_classes(analysis: Analysis) -> None:
    graph = analysis.graph
    shared: set[str] = set()

    # Seeds: module-level instances, and classes that own async methods.
    for module in graph.modules.values():
        for values in module.globals.values():
            for value in values:
                if not isinstance(value, ast.Call):
                    continue
                name = _callable_name(value.func)
                if name is None:
                    continue
                for cls in graph.classes_by_name.get(name, []):
                    shared.add(cls.qualname)
    for cls in graph.classes.values():
        for method_qual in cls.methods.values():
            method = graph.functions.get(method_qual)
            if method is not None and method.is_async:
                shared.add(cls.qualname)
                break

    # Fixed point: shared classes share what they store and return.
    changed = True
    while changed:
        changed = False
        for qualname in list(shared):
            cls = graph.classes[qualname]
            candidates: list[str] = list(cls.attr_types.values())
            for method_qual in cls.methods.values():
                method = graph.functions.get(method_qual)
                if method is None:
                    continue
                node = method.node
                returns = getattr(node, "returns", None)
                if returns is not None:
                    from repro.staticcheck.callgraph import _annotation_class

                    inferred = _annotation_class(returns)
                    if inferred:
                        candidates.append(inferred)
            for name in candidates:
                matches = graph.classes_by_name.get(name, [])
                if len(matches) == 1 and matches[0].qualname not in shared:
                    shared.add(matches[0].qualname)
                    changed = True

    analysis.shared_classes = shared


def _callable_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
