"""Module entry point: ``python -m repro.staticcheck [paths]``."""

import sys

from repro.staticcheck.cli import main

sys.exit(main())
