"""The engine-contract rules (RS001-RS011).

Each rule is documented in ``docs/static-analysis.md`` with its
rationale and the exact exemptions it grants; the docstrings here are
the normative short form.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable

from repro.staticcheck.core import (
    FileContext,
    Project,
    Rule,
    register_rule,
)

_BITWISE_BINOPS = (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)

#: repro.bits.words helpers whose return value is a word/bitmap.
_BITMAP_HELPERS = frozenset({
    "lowest_bit",
    "clear_lowest_bit",
    "mask_up_to",
    "mask_from",
    "interval_between",
    "prefix_xor",
})


def _is_int_literal(node: ast.AST, value: int | None = None) -> bool:
    if not (isinstance(node, ast.Constant) and type(node.value) is int):
        return False
    return value is None or node.value == value


def _has_bitand_ancestor(node: ast.AST, ctx: FileContext) -> bool:
    """Whether the expression's value flows through an ``&`` before it
    leaves the enclosing statement (``&`` with any operand clamps a
    non-negative word back into range; ``&`` with ``~x`` keeps the other
    operand's bound)."""
    current = node
    for anc in ctx.ancestors(node):
        if isinstance(anc, ast.stmt):
            return isinstance(anc, ast.AugAssign) and isinstance(anc.op, ast.BitAnd)
        if isinstance(anc, ast.BinOp) and isinstance(anc.op, ast.BitAnd):
            return True
        if isinstance(anc, ast.Call) and current in anc.args:
            # The value escapes into a call — stop scanning; the callee
            # is responsible for its own clamping.
            return False
        current = anc
    return False


def _is_single_bit_expr(node: ast.AST, ctx: FileContext, scope: ast.AST,
                        _depth: int = 0) -> bool:
    """``1 << n`` or a name only ever bound to such expressions."""
    if _depth > 4:
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
        return _is_int_literal(node.left)
    if isinstance(node, ast.Name):
        bindings = ctx.bindings(scope).get(node.id)
        if bindings:
            return all(
                _is_single_bit_expr(value, ctx, scope, _depth + 1)
                for value in bindings
            )
    if isinstance(node, ast.IfExp):
        return all(
            _is_single_bit_expr(branch, ctx, scope, _depth + 1)
            for branch in (node.body, node.orelse)
        )
    return False


def _is_word_like(node: ast.AST, ctx: FileContext, scope: ast.AST,
                  _seen: frozenset[str] = frozenset(), _depth: int = 0) -> bool:
    """Heuristic taint: could this expression hold a word/bitmap value?

    True for bitwise operations, calls to the known bitmap helpers of
    :mod:`repro.bits.words`, and names bound (flow-insensitively, in the
    enclosing scope) to either.  Parameters and plain arithmetic stay
    untainted — positions and counters are not words.
    """
    if _depth > 6:
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _BITWISE_BINOPS):
        # Bitwise ops over comparison results are numpy boolean-mask
        # algebra ((a == 0) & flag), not word arithmetic.
        if isinstance(node.left, ast.Compare) or isinstance(node.right, ast.Compare):
            return False
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _BITMAP_HELPERS
    if isinstance(node, ast.Name) and node.id not in _seen:
        bindings = ctx.bindings(scope).get(node.id, ())
        return any(
            _is_word_like(value, ctx, scope, _seen | {node.id}, _depth + 1)
            for value in bindings
        )
    return False


@register_rule
class UnmaskedWordArithmetic(Rule):
    """RS001: word arithmetic in ``repro/bits/`` must clamp to the word.

    Python ints are unbounded; the paper's Algorithm-3 tricks assume
    fixed 64-bit words.  ``~``, ``<<`` (non-constant shiftee), and
    ``+``/``-`` on word-tainted values must flow through an ``&`` before
    the end of the statement.  Exemptions: ``1 << n`` single-bit/mask
    construction, ``x - 1`` where ``x`` is a single bit (the borrow
    cannot underflow), ``~m`` used directly as a subscript index (numpy
    boolean masking, fixed-width by construction).
    """

    code = "RS001"
    name = "unmasked-word-arithmetic"
    summary = "bit-parallel arithmetic not clamped with '& WORD_MASK'"
    node_types = (ast.BinOp, ast.UnaryOp, ast.AugAssign)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if not ctx.in_packages("bits"):
            return
        scope = ctx.enclosing_scope(node)
        if isinstance(node, ast.UnaryOp):
            self._check_unary(node, ctx, project, scope)
        elif isinstance(node, ast.BinOp):
            self._check_binop(node, ctx, project, scope)
        else:
            self._check_augassign(node, ctx, project, scope)

    def _check_unary(self, node: ast.UnaryOp, ctx: FileContext,
                     project: Project, scope: ast.AST) -> None:
        if isinstance(node.op, ast.Invert):
            parent = ctx.parent(node)
            if isinstance(parent, ast.Subscript) and parent.slice is node:
                return  # numpy boolean-mask indexing
            if not _has_bitand_ancestor(node, ctx):
                project.add(self, ctx, node,
                            "'~' result is negative in unbounded Python ints; "
                            "clamp with '& WORD_MASK' (or the chunk mask)")
        elif isinstance(node.op, ast.USub):
            if _is_word_like(node.operand, ctx, scope) and \
                    not _has_bitand_ancestor(node, ctx):
                project.add(self, ctx, node,
                            "unary '-' on a word value yields a negative int; "
                            "use it only inside an '&' clamp")

    def _check_binop(self, node: ast.BinOp, ctx: FileContext,
                     project: Project, scope: ast.AST) -> None:
        if isinstance(node.op, ast.LShift):
            if _is_int_literal(node.left):
                return  # 1 << n: single-bit / constant construction
            if not _has_bitand_ancestor(node, ctx):
                project.add(self, ctx, node,
                            "'<<' can carry set bits past the word width; "
                            "clamp the result with '& WORD_MASK'")
        elif isinstance(node.op, (ast.Add, ast.Sub)):
            if not (_is_word_like(node.left, ctx, scope)
                    or _is_word_like(node.right, ctx, scope)):
                return
            if _has_bitand_ancestor(node, ctx):
                return
            if isinstance(node.op, ast.Sub) and _is_int_literal(node.right, 1) and (
                _is_single_bit_expr(node.left, ctx, scope)
            ):
                return  # (1 << n) - 1 / b - 1 mask construction: b >= 1
            kind = "+" if isinstance(node.op, ast.Add) else "-"
            project.add(self, ctx, node,
                        f"'{kind}' on word values can overflow/underflow the "
                        "64-bit word; clamp with '& WORD_MASK'")

    def _check_augassign(self, node: ast.AugAssign, ctx: FileContext,
                         project: Project, scope: ast.AST) -> None:
        if isinstance(node.op, ast.LShift):
            project.add(self, ctx, node,
                        "'<<=' cannot be clamped in place; write the masked "
                        "form 'x = (x << n) & WORD_MASK' (counters: 'x *= 2')")
        elif isinstance(node.op, (ast.Add, ast.Sub)):
            if _is_word_like(node.target, ctx, scope) or \
                    _is_word_like(node.value, ctx, scope):
                kind = "+=" if isinstance(node.op, ast.Add) else "-="
                project.add(self, ctx, node,
                            f"'{kind}' on a word value cannot be clamped in "
                            "place; write the masked explicit form")


#: Raise targets that are always acceptable: abstract-method guards,
#: iteration-protocol signals, and the process-exit protocol
#: (``raise SystemExit(main())`` — an exit code, not an error).
_ALLOWED_BUILTIN_RAISES = frozenset({
    "NotImplementedError", "StopIteration", "StopAsyncIteration", "SystemExit",
})

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


@register_rule
class RaiseTaxonomy(Rule):
    """RS002: engine/resilience/checkpoint/stream code raises only the
    :mod:`repro.errors` hierarchy.

    A bare ``ValueError`` from deep inside an engine is indistinguishable
    from a data bug to callers that catch ``ReproError``; the error
    surface is part of the API.  Private module-local control-flow
    exceptions (``_Suspend``) and abstract-method
    ``NotImplementedError`` are exempt.  ``benchmarks/`` is in scope
    too — a harness that raises ``ValueError`` where it means "the
    contract was violated" muddies its own verdicts — but harness
    *plumbing* failures (boot, subprocess wrangling) may raise
    ``RuntimeError`` with a reasoned suppression.
    """

    code = "RS002"
    name = "raise-taxonomy"
    summary = "builtin exception raised where repro.errors is required"
    node_types = (ast.Raise,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.Raise)
        if not ctx.in_packages("engine", "resilience", "checkpoint", "stream",
                               "benchmarks"):
            return
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name):
            return  # attribute raises (errors.X) and exotic forms pass
        name = exc.id
        if name.startswith("_"):
            return  # private module-local control-flow exception
        if name in _ALLOWED_BUILTIN_RAISES:
            return
        if name in _BUILTIN_EXCEPTIONS:
            project.add(self, ctx, node,
                        f"raises builtin {name}; raise a repro.errors class "
                        "(subclass the builtin for compatibility if needed)")


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _accepts_keyword(args: ast.arguments, name: str) -> bool:
    if args.kwarg is not None:
        return True
    return any(arg.arg == name for arg in [*args.args, *args.kwonlyargs])


def _is_abstract_method(node: ast.FunctionDef) -> bool:
    """Body is (docstring +) a single ``raise NotImplementedError``."""
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _is_engine_class(node: ast.ClassDef) -> bool:
    """Public class subclassing EngineBase, or duck-typed with both
    ``run`` and ``run_records`` (the multi-query engine).  An abstract
    base whose own ``run`` merely raises NotImplementedError is not an
    engine."""
    if node.name.startswith("_"):
        return False
    methods = {
        item.name: item for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    run = methods.get("run")
    if run is not None and isinstance(run, ast.FunctionDef) and _is_abstract_method(run):
        return False
    for base in node.bases:
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name == "EngineBase":
            return True
    return "run" in methods and "run_records" in methods


@register_rule
class LimitsThreading(Rule):
    """RS003: engines accept ``limits=`` and forward it to nested engines.

    Resource guards only work if every nested scan inherits them: an
    engine that builds a sub-engine without ``limits=`` opens an
    unguarded path (a depth bomb inside a filter candidate would bypass
    ``max_depth``).  Checked in ``repro/engine/`` and
    ``repro/baselines/``: every public engine class's ``__init__`` must
    accept ``limits`` (directly or via ``**kwargs``), and every call to
    an engine constructor must pass ``limits=`` or forward ``**kwargs``.

    Also checked in ``repro/serve/``: every service dispatch site that
    compiles an engine (``compile`` / ``compile_engine``) must pass
    ``limits=`` explicitly — a request that reaches an engine without
    its own deadline has silently escaped the budget-propagation
    contract.
    """

    code = "RS003"
    name = "limits-threading"
    summary = "'limits=' not accepted or not forwarded to a nested engine"
    node_types = (ast.ClassDef, ast.Call)

    #: serve-side compile entry points that must carry the request limits.
    _SERVE_COMPILE_NAMES = frozenset({"compile", "compile_engine"})

    def __init__(self) -> None:
        self._engine_classes: set[str] = set()
        self._calls: list[tuple[str, ast.Call, bool]] = []
        self._missing_init: list[tuple[str, ast.ClassDef]] = []

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if ctx.in_packages("serve"):
            self._visit_serve(node, ctx, project)
            return
        if not ctx.in_packages("engine", "baselines"):
            return
        if isinstance(node, ast.ClassDef):
            if not _is_engine_class(node):
                return
            self._engine_classes.add(node.name)
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                    if not _accepts_keyword(item.args, "limits"):
                        self._missing_init.append((ctx.path, node))
                    break
        else:
            assert isinstance(node, ast.Call)
            name = _call_name(node)
            if name is None:
                return
            threads = (
                any(kw.arg == "limits" or kw.arg is None for kw in node.keywords)
            )
            self._calls.append((ctx.path, node, threads))

    def _visit_serve(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name not in self._SERVE_COMPILE_NAMES:
            return
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "re"
        ):
            return  # re.compile is not an engine
        if not any(kw.arg == "limits" or kw.arg is None for kw in node.keywords):
            project.add(self, ctx, node,
                        f"service dispatch {name}(...) without 'limits=': "
                        "every request must carry its own deadline into the "
                        "engine (pass the rebudgeted request limits)")

    def end_project(self, project: Project) -> None:
        for path, class_node in self._missing_init:
            project.add(self, path, class_node,
                        f"engine class {class_node.name} does not accept "
                        "'limits=' in __init__ (add the parameter or **kwargs)",
                        col=class_node.col_offset)
        for path, call, threads in self._calls:
            name = _call_name(call)
            if name in self._engine_classes and not threads:
                project.add(self, path, call,
                            f"call to engine constructor {name}(...) does not "
                            "forward 'limits=' (pass limits= or **kwargs)",
                            col=call.col_offset)


#: Annotation names that compose to JSON.
_JSON_ATOMS = frozenset({"int", "str", "float", "bool", "None", "NoneType",
                         "dict", "list", "tuple", "object"})
_JSON_CONTAINERS = frozenset({"list", "dict", "tuple", "Optional", "Union"})


def _annotation_is_jsonable(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        # string annotations ('list[int]') and bare None
        if node.value is None:
            return True
        if isinstance(node.value, str):
            try:
                return _annotation_is_jsonable(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return False
        return False
    if isinstance(node, ast.Name):
        return node.id in _JSON_ATOMS
    if isinstance(node, ast.Attribute):
        return node.attr in _JSON_ATOMS
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_jsonable(node.left) and _annotation_is_jsonable(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name not in _JSON_CONTAINERS:
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(_annotation_is_jsonable(el) for el in elements)
    return False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return True
    return False


@register_rule
class CheckpointSerializable(Rule):
    """RS004: checkpoint-payload classes hold only JSON-composable state.

    A field that is not built from ``int/str/float/bool/None`` and
    ``list/dict/tuple`` thereof either crashes ``json.dumps`` at save
    time or — worse — round-trips as a different type and corrupts a
    resume.  Applies to dataclasses in ``repro/checkpoint/`` that define
    ``to_dict`` (the serialization marker).
    """

    code = "RS004"
    name = "checkpoint-serializable"
    summary = "non-JSON-serializable field on a checkpoint payload class"
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.ClassDef)
        if not ctx.in_packages("checkpoint"):
            return
        if not _is_dataclass(node):
            return
        methods = {
            item.name for item in node.body if isinstance(item, ast.FunctionDef)
        }
        if "to_dict" not in methods:
            return
        for item in node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            if not _annotation_is_jsonable(item.annotation):
                rendered = ast.unparse(item.annotation)
                project.add(self, ctx, item,
                            f"field annotated {rendered!r} is not "
                            "JSON-primitive-composable; checkpoint payloads "
                            "must survive json.dumps/json.loads unchanged")


#: module.attr call patterns that are nondeterministic.
_NONDET_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns"},
    "datetime": {"now", "utcnow", "today"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "secrets": None,  # every secrets.* call
}


@register_rule
class DeterministicResume(Rule):
    """RS005: checkpoint/resume and differential-fuzz paths are
    deterministic.

    Kill-resume equivalence and fuzz reproducibility both assert
    bit-identical behaviour across process restarts; a ``time.time()``
    in a payload or an unseeded RNG in a mutator silently breaks them.
    Applies to ``repro/checkpoint/`` and ``repro/resilience/fuzz.py``.
    Seeded ``random.Random(seed)`` instances are the sanctioned
    randomness; wall-clock reads belong in injected clocks.
    """

    code = "RS005"
    name = "deterministic-resume"
    summary = "nondeterminism (clock/RNG/set order) on a determinism-critical path"
    node_types = (ast.Call, ast.For, ast.comprehension)

    def _in_scope(self, ctx: FileContext) -> bool:
        if ctx.in_packages("checkpoint"):
            return True
        return ctx.in_packages("resilience") and ctx.module_name == "fuzz"

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if not self._in_scope(ctx):
            return
        if isinstance(node, ast.Call):
            self._check_call(node, ctx, project)
        elif isinstance(node, ast.For):
            self._check_iterable(node.iter, ctx, project)
        else:
            assert isinstance(node, ast.comprehension)
            self._check_iterable(node.iter, ctx, project)

    def _check_call(self, node: ast.Call, ctx: FileContext, project: Project) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return
        module, attr = func.value.id, func.attr
        if module == "random":
            if attr in {"Random", "SystemRandom"}:
                if attr == "SystemRandom" or not (node.args or node.keywords):
                    project.add(self, ctx, node,
                                f"random.{attr}() without a seed is "
                                "nondeterministic; pass an explicit seed")
            else:
                project.add(self, ctx, node,
                            f"module-level random.{attr}() uses global hidden "
                            "state; use a seeded random.Random instance")
            return
        wanted = _NONDET_CALLS.get(module)
        if wanted is None and module in _NONDET_CALLS:
            project.add(self, ctx, node,
                        f"{module}.{attr}() is nondeterministic by design and "
                        "breaks kill-resume equivalence")
        elif wanted is not None and attr in wanted:
            project.add(self, ctx, node,
                        f"{module}.{attr}() reads ambient state; inject a "
                        "clock/seed so resume replays identically")

    def _check_iterable(self, node: ast.expr, ctx: FileContext,
                        project: Project) -> None:
        is_set = isinstance(node, ast.Set) or (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )
        if is_set:
            project.add(self, ctx, node,
                        "iteration over a set has hash-order semantics; sort "
                        "first (sorted(...)) on determinism-critical paths")


_RECORDING_NAMES = frozenset({
    "log", "debug", "info", "warning", "warn", "error", "exception",
    "critical", "record", "count", "inc", "increment", "add", "observe",
    "note", "quarantine", "append", "skipped", "print",
})


@register_rule
class ExceptionSwallow(Rule):
    """RS006: no bare/overbroad ``except`` that swallows silently.

    ``except Exception: pass`` hides engine bugs as data errors.  A
    broad handler must re-raise, use the bound exception object, or
    record the event (logger/metric call); otherwise narrow the type.
    """

    code = "RS006"
    name = "exception-swallow"
    summary = "broad except clause swallows the error without recording it"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if not self._is_broad(node.type):
            return
        if self._handler_accounts_for_error(node):
            return
        label = "bare 'except:'" if node.type is None else \
            f"'except {ast.unparse(node.type)}:'"
        project.add(self, ctx, node,
                    f"{label} swallows the error: re-raise, use the bound "
                    "exception, record a metric/log, or narrow the type")

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        candidates: Iterable[ast.expr] = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            name = candidate.id if isinstance(candidate, ast.Name) else (
                candidate.attr if isinstance(candidate, ast.Attribute) else None
            )
            if name in {"Exception", "BaseException"}:
                return True
        return False

    @staticmethod
    def _handler_accounts_for_error(node: ast.ExceptHandler) -> bool:
        bound = node.name
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, ast.Raise):
                    return True
                if bound and isinstance(sub, ast.Name) and sub.id == bound:
                    return True
                if isinstance(sub, ast.Call):
                    name = _call_name(sub)
                    if name in _RECORDING_NAMES:
                        return True
        return False


@register_rule
class RegistryCompleteness(Rule):
    """RS007: every engine class is registered with an ``EngineInfo``.

    The registry is the single source of capability truth: CLI, harness
    and cross-check only see registered engines.  An engine class that
    never appears inside an ``EngineInfo(...)`` registration is dark
    machinery — register it or suppress with the reason it is internal.
    """

    code = "RS007"
    name = "registry-completeness"
    summary = "engine class never registered via EngineInfo"
    node_types = (ast.ClassDef, ast.Call)

    def __init__(self) -> None:
        self._engine_classes: list[tuple[str, ast.ClassDef]] = []
        self._registered: set[str] = set()

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if isinstance(node, ast.ClassDef):
            if ctx.in_packages("engine", "baselines") and _is_engine_class(node):
                self._engine_classes.append((ctx.path, node))
        else:
            assert isinstance(node, ast.Call)
            if _call_name(node) == "EngineInfo":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        self._registered.add(sub.id)

    def end_project(self, project: Project) -> None:
        for path, class_node in self._engine_classes:
            if class_node.name not in self._registered:
                project.add(self, path, class_node,
                            f"engine class {class_node.name} is not registered "
                            "in any EngineInfo(...); register it (with "
                            "capability flags) or justify why it is internal",
                            col=class_node.col_offset)


@register_rule
class PerWordIntLoop(Rule):
    """RS008: no per-word Python-int loops outside the word layer.

    The vectorized two-stage hot path exists precisely so stage 2 never
    lifts bitmap words to Python ints one at a time; ``int(words[i])``
    inside a ``for``/``while`` is the word-at-a-time idiom and belongs
    in ``repro/bits/words.py`` or the explicitly paper-faithful word
    scanner (suppressed with a reason).  Anywhere else it silently
    reintroduces the per-word interpreter overhead the position index
    was built to remove.
    """

    code = "RS008"
    name = "per-word-int-loop"
    summary = "per-word int() loop outside the word layer"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.Call)
        if not (isinstance(node.func, ast.Name) and node.func.id == "int" and node.args):
            return
        if ctx.in_packages("bits") and ctx.module_name == "words":
            return
        if not any(isinstance(anc, (ast.For, ast.While)) for anc in ctx.ancestors(node)):
            return
        if not self._references_words(node.args[0]):
            return
        project.add(self, ctx, node,
                    "per-word int() inside a loop: word-at-a-time bit "
                    "manipulation belongs in repro/bits/words.py (or the "
                    "paper-faithful word path, with a suppression naming it); "
                    "use the per-chunk position arrays instead")

    @staticmethod
    def _references_words(expr: ast.expr) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id in ("word", "words"):
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "words":
                return True
        return False


#: ``await obj.ATTR(...)`` on one of these attributes paces the handler
#: on a remote party — a client socket, a queue peer, a lock holder —
#: and must therefore be bounded by ``asyncio.wait_for``.
_CLIENT_IO_ATTRS = frozenset({
    "read", "readline", "readexactly", "readuntil", "drain", "sendall",
    "recv", "accept", "connect", "wait_closed", "get", "put", "join",
    "wait", "acquire",
})

#: Queue constructors that default to unbounded capacity.
_QUEUE_NAMES = frozenset({"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"})


@register_rule
class BoundedServeIO(Rule):
    """RS009: serve never waits on a client without a timeout, never
    queues without a bound.

    The service's overload contract is *shed, don't stall*.  Two code
    shapes silently break it:

    - an ``await`` on client-paced I/O (``reader.read*``,
      ``writer.drain``, ``queue.get`` …) without ``asyncio.wait_for``
      is a hang vector — one slow-loris client parks a handler forever;
    - an unbounded ``Queue()`` converts overload into unbounded latency
      instead of a 429.

    Checked only inside ``src/repro/serve/``.  A deliberately
    indefinite wait (e.g. sleeping until SIGTERM) takes a reasoned
    ``# repro: ignore[RS009]`` suppression.
    """

    code = "RS009"
    name = "bounded-serve-io"
    summary = "unbounded queue or wait_for-less await on client I/O in repro/serve"
    node_types = (ast.Await, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        if not ctx.in_packages("serve"):
            return
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _QUEUE_NAMES and not (
                node.args
                or any(kw.arg == "maxsize" for kw in node.keywords)
            ):
                project.add(self, ctx, node,
                            f"{name}() without a maxsize bound: an unbounded "
                            "queue converts overload into latency — bound it "
                            "and shed (429) when full")
            return
        assert isinstance(node, ast.Await)
        value = node.value
        if not isinstance(value, ast.Call):
            return
        if _call_name(value) in ("wait_for", "timeout_at"):
            return  # the bounding construct itself
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _CLIENT_IO_ATTRS:
            project.add(self, ctx, node,
                        f"await on .{func.attr}(...) without asyncio.wait_for: "
                        "a client that never completes this I/O hangs the "
                        "handler — wrap it with the request's client_timeout")


#: Receiver names that conventionally denote a match view in engine
#: code, so a zero-arg ``.value()``/``.values()`` on them is a parse
#: (dict ``.values()`` receivers are attributes or differently named).
_MATCH_VIEW_NAMES = frozenset({"match", "matches", "candidate", "inner_match"})


@register_rule
class EagerMaterialization(Rule):
    """RS010: engine hot paths do not eagerly materialize matched byte
    ranges.

    Matches are lazy views (:mod:`repro.engine.output`): decoding
    happens at most once, on first touch, on the consumer's side.  A
    ``json.loads`` — or a ``.value()`` / ``run(...).values()`` — inside
    the scan path re-introduces exactly the per-match decode cost the
    on-demand model removed, and it is invisible in correctness tests
    because the decoded value is equal either way.  ``engine/output.py``
    (the one legitimate materialization point) is exempt; the reference
    oracle and the baselines, whose measured contract *is* to parse,
    carry reasoned ``# repro: ignore[RS010]`` suppressions.
    """

    code = "RS010"
    name = "eager-materialization"
    summary = "eager json.loads/.value() in an engine hot path"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.Call)
        if not ctx.in_packages("engine", "reference", "baselines"):
            return
        if ctx.in_packages("engine") and ctx.module_name == "output":
            return
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "loads"
                and isinstance(func.value, ast.Name) and func.value.id == "json"):
            project.add(self, ctx, node,
                        "json.loads in a hot path: return the lazy Match view "
                        "and let the consumer pay for decoding on first touch")
            return
        # Zero-arg .value()/.values() where the receiver is plainly a
        # match view: chained off a call (run(...).values()) or bound to
        # a conventional name.  Dict .values() on attribute receivers
        # (self._counters.values()) stays legal.
        if (isinstance(func, ast.Attribute)
                and func.attr in ("value", "values")
                and not node.args and not node.keywords):
            recv = func.value
            if isinstance(recv, ast.Call) or (
                isinstance(recv, ast.Name) and recv.id in _MATCH_VIEW_NAMES
            ):
                project.add(self, ctx, node,
                            f".{func.attr}() materializes matches inside the "
                            "engine; keep the lazy view (count()/spans()/"
                            "texts()) and let the consumer decide to decode")


#: ``os.<attr>`` calls that are the tell-tale of a hand-rolled
#: atomic-write protocol (the rename that publishes, the fsyncs that
#: order it).
_DURABLE_OS_ATTRS = frozenset({"replace", "rename", "fsync"})

#: Path-object methods that publish or write a file when called on a
#: temp-file name — the ``tmp.write_bytes(...); tmp.rename(path)`` idiom.
_DURABLE_PATH_ATTRS = frozenset({"replace", "rename", "write_bytes"})


@register_rule
class HandRolledDurableWrite(Rule):
    """RS011: persistent-path writes go through ``repro.storage``.

    Crash consistency is a protocol, not a line of code: tmp-in-dir,
    fsync, rename, parent-dir fsync, tmp cleanup on failure — and it is
    only *proven* for writers the disk-chaos harness can reach through
    the injectable filesystem shim.  A bare ``os.replace`` (or a
    ``tmp.write_bytes(...) / tmp.rename(...)`` pair) outside
    ``repro/storage`` is a second, unproven implementation of that
    protocol: it will drift (the sidecar writer missed the parent-dir
    fsync and leaked its temp file on a failed write until it was
    migrated).  Everything durable routes through
    :func:`repro.storage.atomic_write`; :mod:`repro.storage` itself is
    the one place allowed to touch the raw syscalls.
    """

    code = "RS011"
    name = "hand-rolled-durable-write"
    summary = "durable-write syscalls outside repro.storage"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        assert isinstance(node, ast.Call)
        if ctx.in_packages("storage"):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        recv = func.value
        if (isinstance(recv, ast.Name) and recv.id == "os"
                and func.attr in _DURABLE_OS_ATTRS):
            project.add(self, ctx, node,
                        f"os.{func.attr} outside repro/storage: route the "
                        "write through repro.storage.atomic_write so the "
                        "full protocol (tmp + fsync + rename + dir fsync + "
                        "cleanup) applies and fault injection can reach it")
            return
        if (isinstance(recv, ast.Name) and "tmp" in recv.id.lower()
                and func.attr in _DURABLE_PATH_ATTRS):
            project.add(self, ctx, node,
                        f"{recv.id}.{func.attr}(...) looks like a hand-rolled "
                        "tmp-file publish: use repro.storage.atomic_write "
                        "instead of a private tmp+rename protocol")


# ---------------------------------------------------------------------
# Concurrency rules (RS012-RS014): whole-program, built on the call
# graph and execution-context analysis in callgraph.py / contexts.py.
# They run from end_project (node_types names ast.Module only so the
# per-node dispatcher never pays for them).
# ---------------------------------------------------------------------


def _lock_guarded(node: ast.AST, ctx: FileContext) -> bool:
    """Whether the node sits inside a ``with``/``async with`` on a lock.

    Lexical only: the guard must be visible in the same function.  A
    context expression counts as a lock when any identifier in it
    mentions "lock" or "mutex" (``self._index_lock``, ``LOCK``,
    ``cache_lock.acquire_timeout(...)``).
    """
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        if isinstance(anc, (ast.With, ast.AsyncWith)) and _is_lock_with(anc):
            return True
    return False


def _is_lock_with(node: ast.With | ast.AsyncWith) -> bool:
    for item in node.items:
        for sub in ast.walk(item.context_expr):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and ("lock" in name.lower() or "mutex" in name.lower()):
                return True
    return False


@register_rule
class BlockingCallInEventLoop(Rule):
    """RS012: no await-free path from the event loop to blocking I/O.

    One loop thread serves every connection; a single ``flock`` or
    sidecar ``mmap`` on it stalls *all* of them (the slow-loris and
    burst phases of serve_chaos measure exactly this).  The rule walks
    the whole-program call graph from every loop root — ``async def``
    bodies and callables handed to ``call_soon``/``call_later`` — and
    flags any call site that reaches a blocking primitive (``fsync``,
    ``flock``, ``os.replace``, ``mmap``, file open/read/write,
    ``time.sleep``, and anything that transitively calls them, e.g.
    stage-1 ``build``/``load_or_build``) without first hopping contexts
    through ``run_in_executor``/``submit``.  The diagnostic carries the
    reconstructed chain down to the primitive.  The runtime
    cross-check is :mod:`repro.serve.loopguard`.
    """

    code = "RS012"
    name = "blocking-in-loop"
    summary = "blocking call reachable from the event loop without an executor hop"
    node_types = (ast.Module,)

    def end_project(self, project: Project) -> None:
        from repro.staticcheck.contexts import is_blocking_site

        analysis = project.analysis()
        graph = analysis.graph
        for qualname in sorted(analysis.loop_roots):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            for site in info.calls:
                if site.dispatch is not None:
                    continue
                primitive = is_blocking_site(site)
                if primitive is not None:
                    project.add(self, info.ctx, site.node,
                                f"blocking call '{primitive}' on the event-loop "
                                "thread: every connection stalls while it runs "
                                "— hand it to the executor "
                                "(await loop.run_in_executor(...))")
                    continue
                for target in site.targets:
                    callee = graph.functions.get(target)
                    if callee is None or callee.is_async:
                        continue
                    if target in analysis.blocking:
                        chain = analysis.chain_for(target)
                        project.add(self, info.ctx, site.node,
                                    f"await-free blocking path: {chain} runs on "
                                    "the event-loop thread — hop to the "
                                    "executor before entering it")
                        break


@register_rule
class UnguardedSharedState(Rule):
    """RS013: shared mutable state is written under a lock, or not at all.

    A *shared* object is one that outlives a request and is reachable
    from more than one execution context: module-level singletons
    (``QUERY_CACHE``, the metrics registry), service objects with
    async methods, and anything such an object stores or returns.  The
    context analysis assigns each function the set of contexts that can
    run it ({loop, executor, thread}; pool workers have their own
    memory and do not count); a write to shared state from a function
    runnable in two of them is a data race unless a ``with <lock>``
    lexically guards it.  Plain ``x += 1`` is three bytecodes — the GIL
    does not make it atomic (tests/test_concurrency_races.py
    demonstrates the lost updates).
    """

    code = "RS013"
    name = "unguarded-shared-state"
    summary = "shared state written from >=2 execution contexts without a lock"
    node_types = (ast.Module,)

    def end_project(self, project: Project) -> None:
        analysis = project.analysis()
        graph = analysis.graph
        for qualname, info in sorted(graph.functions.items()):
            racing = analysis.racing_contexts(qualname)
            if len(racing) < 2:
                continue
            if info.name in ("__init__", "__post_init__", "__new__"):
                continue  # object under construction is not yet shared
            owner = graph.owner_of(qualname)
            owner_shared = owner is not None and owner.qualname in analysis.shared_classes
            module_globals = graph.module_global_names(info.module)
            contexts = ", ".join(sorted(racing))
            for node, desc in _shared_writes(
                info, owner.name if owner_shared and owner else None, module_globals
            ):
                if _lock_guarded(node, info.ctx):
                    continue
                project.add(self, info.ctx, node,
                            f"unguarded write to shared {desc} from "
                            f"contexts {{{contexts}}}: interleavings lose "
                            "updates or tear multi-field stats — hold a "
                            "threading.Lock around the mutation (asyncio.Lock "
                            "only serializes tasks on the loop)")


def _shared_writes(info, owner_class: str | None,
                   module_globals: set[str]) -> Iterable[tuple[ast.AST, str]]:
    """Yield (node, description) for writes to shared state in a function."""
    node = info.node
    declared_global: set[str] = set()
    body = node.body if not isinstance(node, ast.Lambda) else []
    for stmt in _walk_function(body, node):
        if isinstance(stmt, ast.Global):
            declared_global.update(stmt.names)
    for stmt in _walk_function(body, node):
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                desc = _shared_target_desc(
                    target, owner_class, module_globals, declared_global
                )
                if desc is not None:
                    yield target, desc
        elif isinstance(stmt, ast.Call):
            # Mutating calls on shared receivers: x.append/.update/.pop
            func = stmt.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                desc = _shared_target_desc(
                    func.value, owner_class, module_globals, declared_global,
                    mutating_call=func.attr,
                )
                if desc is not None:
                    yield stmt, desc


_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "pop", "popitem", "setdefault",
    "update", "clear", "remove", "discard", "add",
})


def _walk_function(body, owner):
    stack = list(body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _shared_target_desc(target: ast.AST, owner_class: str | None,
                        module_globals: set[str],
                        declared_global: set[str],
                        mutating_call: str | None = None) -> str | None:
    suffix = f".{mutating_call}(...)" if mutating_call else ""
    # self.attr = ... / self.attr += ... / self.attr.update(...)
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)):
        base = target.value.id
        if base == "self" and owner_class is not None:
            return f"attribute {owner_class}.{target.attr}{suffix}"
        if base in module_globals:
            # GLOBAL.attr = ... — attribute write on a module singleton
            return f"module global {base}.{target.attr}{suffix}"
    # self.attr[k] = ... (shared dict/list slot)
    if isinstance(target, ast.Subscript):
        base = target.value
        if (isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name)
                and base.value.id == "self" and owner_class is not None):
            return f"attribute {owner_class}.{base.attr}[...]{suffix}"
        if isinstance(base, ast.Name) and base.id in module_globals:
            return f"module global {base.id}[...]{suffix}"
    # NAME = ... rebinding a declared global, NAME.add(...) on a global
    if isinstance(target, ast.Name):
        if target.id in declared_global:
            return f"module global {target.id}"
        if mutating_call is not None and target.id in module_globals:
            return f"module global {target.id}{suffix}"
    return None


@register_rule
class AwaitSplitReadModifyWrite(Rule):
    """RS014: a read-modify-write of shared state must not span an await.

    Every ``await`` is a scheduling point: any other task — including
    another instance of the *same handler* — may run before control
    returns.  A value read from a shared attribute before the await is
    stale by the time the write lands after it, even with zero threads
    involved (this is the single-threaded race asyncio makes possible).
    The rule walks each ``async def`` in source order, counting awaits,
    and flags attributes of shared objects (and module globals) that
    are read at one await-count and written at a strictly later one.
    Fix by recomputing after the await, or by holding an
    ``asyncio.Lock`` across the whole read-modify-write.
    """

    code = "RS014"
    name = "await-split-rmw"
    summary = "read-modify-write of shared state split across an await"
    node_types = (ast.Module,)

    def end_project(self, project: Project) -> None:
        analysis = project.analysis()
        graph = analysis.graph
        for qualname, info in sorted(graph.functions.items()):
            if not info.is_async:
                continue
            owner = graph.owner_of(qualname)
            owner_shared = owner is not None and owner.qualname in analysis.shared_classes
            module_globals = graph.module_global_names(info.module)
            events = _AwaitEvents(
                owner.name if owner_shared and owner else None, module_globals
            )
            events.collect(info.node)
            for key, write_node, read_tick, write_tick in events.split_rmws():
                project.add(self, info.ctx, write_node,
                            f"read-modify-write of shared {key} spans an await "
                            f"(read before await #{read_tick + 1}, written "
                            "after it): another task can interleave and its "
                            "update is lost — recompute after the await or "
                            "hold an asyncio.Lock across both")


class _AwaitEvents:
    """In-order scan of an async body: shared reads/writes vs awaits."""

    def __init__(self, owner_class: str | None, module_globals: set[str]) -> None:
        self.owner_class = owner_class
        self.module_globals = module_globals
        self.ticks = 0
        self.lock_depth = 0
        self.reads: dict[str, int] = {}      # key -> earliest tick
        self.writes: list[tuple[str, ast.AST, int]] = []

    def collect(self, root: ast.AST) -> None:
        for child in ast.iter_child_nodes(root):
            self._visit(child, root)

    def _visit(self, node: ast.AST, root: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Await):
            for child in ast.iter_child_nodes(node):
                self._visit(child, root)
            self.ticks += 1
            return
        if isinstance(node, (ast.With, ast.AsyncWith)) and _is_lock_with(node):
            self.lock_depth += 1
            for child in ast.iter_child_nodes(node):
                self._visit(child, root)
            self.lock_depth -= 1
            return
        key = self._shared_key(node)
        if key is not None and self.lock_depth == 0:
            accesses = getattr(node, "ctx", None)
            if isinstance(accesses, ast.Load):
                self.reads.setdefault(key, self.ticks)
            elif isinstance(accesses, (ast.Store, ast.Del)):
                self.writes.append((key, node, self.ticks))
        for child in ast.iter_child_nodes(node):
            self._visit(child, root)

    def _shared_key(self, node: ast.AST) -> str | None:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.owner_class is not None):
            return f"{self.owner_class}.{node.attr}"
        if isinstance(node, ast.Name) and node.id in self.module_globals:
            return f"module global {node.id}"
        return None

    def split_rmws(self):
        for key, node, write_tick in self.writes:
            read_tick = self.reads.get(key)
            if read_tick is not None and write_tick > read_tick:
                yield key, node, read_tick, write_tick
