"""Framework for the engine-contract checker.

One parse per file, one generic AST walk shared by every rule:

- :class:`FileContext` — the parsed tree plus the derived maps every
  rule needs (parent links, enclosing scopes, flow-insensitive name
  bindings, suppression comments);
- :class:`Rule` — a plugin with ``visit`` callbacks filtered by node
  type, plus an optional ``end_project`` hook for cross-module rules
  (registry completeness, constructor threading);
- :func:`check_paths` / :func:`check_sources` — the two entry points
  (filesystem walk for the CLI, in-memory sources for fixture tests).

Suppressions are inline comments::

    bitmap = bs + odd_starts  # repro: ignore[RS001] -- carry read from overflow

A suppression must name the rule code *and* carry a ``-- reason``; a
malformed one (missing reason, unparsable code list) is itself reported
as RS000 so suppressions cannot rot silently.  A comment on its own line
suppresses the line below it; a trailing comment suppresses its own
line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Type

#: Code used for meta-findings about the checker's own input (malformed
#: suppression comments, unparsable files).
META_CODE = "RS000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<codes>[^\]]*)\](?P<rest>.*)$"
)
_REASON_RE = re.compile(r"^\s*--\s*(?P<reason>\S.*)$")
_CODE_RE = re.compile(r"^RS\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: ignore[...] -- reason`` comment."""

    codes: tuple[str, ...]
    reason: str
    comment_line: int
    applies_to: int


class _ParentVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.parents: dict[ast.AST, ast.AST] = {}

    def generic_visit(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self.parents[child] = node
        super().generic_visit(node)


_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)


class FileContext:
    """Everything a rule may ask about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        visitor = _ParentVisitor()
        visitor.visit(tree)
        self.parents: dict[ast.AST, ast.AST] = visitor.parents
        #: ``repro``-relative dotted parts of the module (best effort):
        #: ``src/repro/bits/words.py`` -> ("bits", "words").
        self.package_parts = _module_parts(self.path)
        self.suppressions = _parse_suppressions(source)
        self._bindings: dict[ast.AST, dict[str, list[ast.expr]]] = {}

    # -- structural helpers --------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield enclosing nodes, innermost first, up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda, else the module."""
        for anc in self.ancestors(node):
            if isinstance(anc, _SCOPE_TYPES):
                return anc
        return self.tree

    def enclosing_statement(self, node: ast.AST) -> ast.stmt | None:
        if isinstance(node, ast.stmt):
            return node
        for anc in self.ancestors(node):
            if isinstance(anc, ast.stmt):
                return anc
        return None

    def in_packages(self, *names: str) -> bool:
        """Whether the file lives under any of the given repro subpackages."""
        return bool(self.package_parts) and self.package_parts[0] in names

    @property
    def module_name(self) -> str:
        """Module basename without extension (``words`` for words.py)."""
        return Path(self.path).stem

    # -- name bindings (flow-insensitive, per scope) --------------------

    def bindings(self, scope: ast.AST) -> dict[str, list[ast.expr]]:
        """Name -> every expression assigned to it within ``scope``.

        Flow-insensitive: order and reachability are ignored, which is
        the conservative choice for taint-style queries ("could this
        name hold a bitmap?").  Nested scopes are not descended into.
        """
        cached = self._bindings.get(scope)
        if cached is not None:
            return cached
        found: dict[str, list[ast.expr]] = {}

        def record(target: ast.expr, value: ast.expr) -> None:
            if isinstance(target, ast.Name):
                found.setdefault(target.id, []).append(value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    record(element, value)

        for node in ast.walk(scope):
            if node is not scope and isinstance(node, _SCOPE_TYPES):
                continue  # shallow: do not cross into nested scopes
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(target, node.value)
            elif isinstance(node, ast.AugAssign):
                synthetic = ast.BinOp(left=node.target, op=node.op, right=node.value)
                record(node.target, synthetic)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                record(node.target, node.value)
        self._bindings[scope] = found
        return found


def _module_parts(path: str) -> tuple[str, ...]:
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        return tuple(parts[idx + 1 :])
    return tuple(parts)


def _parse_suppressions(source: str) -> list[Suppression | Finding]:
    """Extract suppression comments; malformed ones come back as findings.

    The returned findings carry an empty path — the caller rewrites it.
    """
    results: list[Suppression | Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return results
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        # A comment with nothing but whitespace before it on its line
        # suppresses the next *code* line (skipping blank lines and
        # follow-on comment lines); a trailing comment its own line.
        source_lines = source.splitlines()
        prefix = source_lines[line - 1][: token.start[1]]
        if prefix.strip() == "":
            applies_to = line + 1
            while applies_to <= len(source_lines):
                stripped = source_lines[applies_to - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                applies_to += 1
        else:
            applies_to = line
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        reason_match = _REASON_RE.match(match.group("rest"))
        if not codes or any(not _CODE_RE.match(code) for code in codes):
            results.append(Finding(
                META_CODE, "", line, token.start[1],
                "malformed suppression: expected 'repro: ignore[RSxxx]' with "
                "comma-separated RSxxx codes",
            ))
            continue
        if reason_match is None:
            results.append(Finding(
                META_CODE, "", line, token.start[1],
                f"suppression of {', '.join(codes)} lacks a '-- reason' justification",
            ))
            continue
        results.append(Suppression(
            codes=codes,
            reason=reason_match.group("reason").strip(),
            comment_line=line,
            applies_to=applies_to,
        ))
    return results


class Project:
    """Cross-file state shared by every rule during one run."""

    def __init__(self) -> None:
        self.files: list[FileContext] = []
        self.findings: list[Finding] = []
        self._analysis = None

    def analysis(self):
        """The whole-program call-graph/context analysis, built lazily.

        Only the concurrency rules (RS012-RS014) pay for it; a
        ``--select RS001`` run never constructs the graph.  Cached so
        the three rules share one build.
        """
        if self._analysis is None:
            from repro.staticcheck.contexts import build_analysis

            self._analysis = build_analysis(self.files)
        return self._analysis

    def add(self, rule: "Rule", ctx_or_path: "FileContext | str",
            node_or_line: "ast.AST | int", message: str, col: int = 0) -> None:
        """Record a finding against a node (usual case) or a raw line."""
        path = ctx_or_path.path if isinstance(ctx_or_path, FileContext) else ctx_or_path
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 0)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line = node_or_line
        self.findings.append(Finding(rule.code, path, line, col, message))


class Rule:
    """Base class for one checker rule.

    Subclasses set ``code``/``name``/``summary``, declare the node
    types they want via ``node_types`` (empty tuple = every node), and
    implement :meth:`visit`.  Cross-module rules accumulate state on
    ``self`` and emit from :meth:`end_project`.
    """

    code: str = "RS999"
    name: str = "unnamed"
    summary: str = ""
    node_types: tuple[type, ...] = ()

    def start_file(self, ctx: FileContext, project: Project) -> None:
        """Called before visiting a file's nodes."""

    def visit(self, node: ast.AST, ctx: FileContext, project: Project) -> None:
        """Called for each node whose type is in ``node_types``."""

    def end_project(self, project: Project) -> None:
        """Called once after every file has been visited."""


RULE_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        codes = sorted(RULE_REGISTRY)
    else:
        codes = []
        for code in select:
            if code not in RULE_REGISTRY:
                raise KeyError(
                    f"unknown rule {code!r}; expected one of {sorted(RULE_REGISTRY)}"
                )
            codes.append(code)
    return [RULE_REGISTRY[code]() for code in codes]


def check_sources(
    sources: dict[str, str],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Check in-memory sources (path -> text). The testable entry point."""
    # Import for the side effect of registering RS001-RS007 when callers
    # use repro.staticcheck.core directly.
    from repro.staticcheck import rules as _rules  # noqa: F401

    rules = _select_rules(select)
    project = Project()
    suppression_map: dict[str, list[Suppression]] = {}

    for path, source in sources.items():
        normalized = str(path).replace("\\", "/")
        try:
            tree = ast.parse(source, filename=normalized)
        except SyntaxError as exc:
            project.findings.append(Finding(
                META_CODE, normalized, exc.lineno or 0, (exc.offset or 1) - 1,
                f"file does not parse: {exc.msg}",
            ))
            continue
        ctx = FileContext(normalized, source, tree)
        project.files.append(ctx)
        suppressions: list[Suppression] = []
        for item in ctx.suppressions:
            if isinstance(item, Finding):
                project.findings.append(Finding(
                    item.rule, normalized, item.line, item.col, item.message,
                ))
            else:
                suppressions.append(item)
        suppression_map[normalized] = suppressions

        dispatch: dict[type, list[Rule]] = {}
        catch_all: list[Rule] = []
        for rule in rules:
            rule.start_file(ctx, project)
            if rule.node_types:
                for node_type in rule.node_types:
                    dispatch.setdefault(node_type, []).append(rule)
            else:
                catch_all.append(rule)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                rule.visit(node, ctx, project)
            for rule in catch_all:
                rule.visit(node, ctx, project)

    for rule in rules:
        rule.end_project(project)

    return _apply_suppressions(project.findings, suppression_map)


def _apply_suppressions(
    findings: list[Finding],
    suppression_map: dict[str, list[Suppression]],
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        if finding.rule != META_CODE:
            for supp in suppression_map.get(finding.path, ()):
                if finding.line == supp.applies_to and finding.rule in supp.codes:
                    suppressed = True
                    break
        if not suppressed:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept


def check_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Check files/directories on disk; directories are walked for ``.py``."""
    sources: dict[str, str] = {}
    unreadable: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            sources[str(file_path)] = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            # Surface unreadable files as findings rather than crashing.
            unreadable.append(Finding(
                META_CODE, str(file_path), 0, 0, f"cannot read file: {exc}"
            ))
    findings = check_sources(sources, select)
    return sorted([*findings, *unreadable], key=Finding.sort_key)


def count_suppressions(paths: Iterable[str | Path]) -> dict[str, int]:
    """Well-formed ``# repro: ignore[...]`` comments per file.

    The input to the suppression budget (``--suppression-budget``):
    malformed suppressions are already RS000 findings and are *not*
    counted — the budget bounds how many justified exemptions the tree
    may carry, so that suppressing a finding is always a visible,
    reviewed act (the budget file must change in the same commit).
    """
    counts: dict[str, int] = {}
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue  # unreadable files surface via check_paths
        total = sum(
            1 for item in _parse_suppressions(source)
            if isinstance(item, Suppression)
        )
        if total:
            counts[str(file_path).replace("\\", "/")] = total
    return counts
