"""Whole-program call graph for the concurrency rules (RS012-RS014).

The per-file rules (RS001-RS011) are pattern matchers; the concurrency
rules need to answer questions no single file can: *is this function
reachable from an ``async def`` without an executor hop?* and *is this
attribute written from two execution contexts at once?*  This module
builds the project-wide structure they share, in two phases:

**Phase 1 — index.**  Every file contributes its module name, its
imports (module- and function-level), its module-level bindings, and
every function-like scope (functions, methods, nested defs, lambdas)
under a dotted qualname (``repro.serve.app.QueryService._dispatch``).
Classes record their methods, their base names, and a best-effort map
of attribute name → class (from ``__init__`` assignments, parameter
annotations threaded through ``self.x = param``, and dataclass field
annotations).

**Phase 2 — resolve.**  Every call site in every function body is
resolved to project qualnames where possible:

- plain names resolve lexically (nested defs, module functions,
  imported symbols — following package re-exports), then to classes
  (a constructor call is an edge to ``__init__``/``__post_init__``);
- attribute calls resolve through light type inference on the
  receiver (constructor bindings, parameter/attribute annotations,
  and return annotations of already-resolved calls); an *untyped*
  receiver falls back to by-name method lookup only when the method
  name is unique to one project class — ambiguous names produce no
  edge rather than a wrong one;
- **dispatch sites are not ordinary edges**: ``loop.run_in_executor``,
  ``executor.submit``, ``pool.submit``/``apply_async``,
  ``Thread(target=...)`` and ``loop.call_soon*`` hand their callable to
  a different execution context, which is exactly the boundary the
  concurrency rules care about.  The dispatched callable (name, bound
  method, lambda, or ``functools.partial``) is recorded with the
  context it will run in (see :mod:`repro.staticcheck.contexts`).

The graph deliberately under-approximates: an edge it cannot resolve
with confidence is dropped, because for RS012/RS013 a wrong edge
manufactures a false finding while a missing edge at worst misses one
(the runtime loopguard is the backstop for misses).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.staticcheck.core import FileContext

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Dispatch callables: method/function name -> (context kind, how to
#: find the callable argument).  ``kind`` is the execution context the
#: callable will run in; ``arg`` is the positional index of the callable
#: (``None`` means keyword ``target=``, the ``Thread`` convention).
_DISPATCH_SPECS: dict[str, tuple[str, int | None]] = {
    "run_in_executor": ("executor", 1),
    "submit": ("executor", 0),  # kind refined from the receiver name
    "apply_async": ("pool", 0),
    "map_async": ("pool", 0),
    "imap": ("pool", 0),
    "imap_unordered": ("pool", 0),
    "Thread": ("thread", None),
    "Timer": ("thread", 1),
    "Process": ("pool", None),
    "call_soon": ("loop", 0),
    "call_soon_threadsafe": ("loop", 0),
    "call_later": ("loop", 1),
    "call_at": ("loop", 1),
    "add_signal_handler": ("loop", 1),
}

#: Receiver-name fragments that turn an ambiguous ``submit`` into a
#: process-pool dispatch (``ProcessPoolExecutor`` workers do not share
#: memory with the submitter, unlike thread executors).
_POOLISH = ("pool", "process", "proc")


def module_name_for(path: str) -> str:
    """Dotted module name for a checked file (best effort).

    ``src/repro/serve/app.py`` → ``repro.serve.app``;
    ``benchmarks/serve_chaos.py`` → ``benchmarks.serve_chaos``;
    package ``__init__`` files collapse onto the package name.
    """
    parts = list(Path(path).with_suffix("").parts)
    while parts and parts[0] in ("src", ".", "/"):
        parts = parts[1:]
    if "repro" in parts:
        idx = parts.index("repro")
        parts = parts[idx:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else Path(path).stem


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call
    #: Project qualnames this call may enter (same execution context).
    targets: tuple[str, ...] = ()
    #: Dotted external name (``os.fsync``, ``open``) when the call
    #: resolves outside the project.
    external: str | None = None
    #: Raw attribute name for hint matching (``read_bytes``); also set
    #: for unresolved plain-name calls.
    attr: str | None = None
    #: Execution context a dispatched callable runs in, when this call
    #: is a dispatch site (``executor``/``pool``/``thread``/``loop``).
    dispatch: str | None = None
    #: Qualnames of the dispatched callables.
    dispatch_targets: tuple[str, ...] = ()
    #: Whether the call is awaited (``await f()``).
    in_await: bool = False


@dataclass
class FunctionInfo:
    """One function-like scope (def, async def, method, nested, lambda)."""

    qualname: str
    node: ast.AST
    ctx: FileContext
    module: str
    class_name: str | None = None
    is_async: bool = False
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    base_names: tuple[str, ...] = ()
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> inferred class *name* (project classes only)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    ctx: FileContext
    #: local name -> dotted target ("os", "repro.storage.atomic_write").
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level bound names -> the expressions assigned to them.
    globals: dict[str, list[ast.expr]] = field(default_factory=dict)


class CallGraph:
    """The indexed project plus resolved call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}  # by qualname
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        #: function qualname -> qualname of the lexically enclosing
        #: function (nested defs and lambdas).
        self.enclosing: dict[str, str] = {}
        #: node -> qualname, for rules that walk from AST nodes.
        self._node_owner: dict[int, str] = {}
        #: (function qualname, name) pairs currently being inferred —
        #: the cycle breaker for rebound names (see _infer_name_type).
        self._inferring_names: set[tuple[str, str]] = set()

    # -- phase 1: indexing ---------------------------------------------

    def index_file(self, ctx: FileContext) -> None:
        module = module_name_for(ctx.path)
        info = ModuleInfo(module, ctx)
        self.modules[module] = info
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    info.imports[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: not used in this tree
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{node.module}.{alias.name}"
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    info.globals.setdefault(target.id, []).append(value)
        self._index_scope(ctx.tree, ctx, module, module, None)

    def _index_scope(
        self,
        scope: ast.AST,
        ctx: FileContext,
        module: str,
        prefix: str,
        class_name: str | None,
    ) -> None:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                self._add_function(FunctionInfo(
                    qualname, child, ctx, module, class_name,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                ), prefix)
                self._index_scope(child, ctx, module, qualname, None)
            elif isinstance(child, ast.ClassDef):
                cls_qual = f"{prefix}.{child.name}"
                cls = ClassInfo(
                    cls_qual, child.name, module, child,
                    base_names=tuple(_name_of(base) for base in child.bases
                                     if _name_of(base)),
                )
                self.classes[cls_qual] = cls
                self.classes_by_name.setdefault(child.name, []).append(cls)
                for item in child.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls.methods[item.name] = f"{cls_qual}.{item.name}"
                    elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                        inferred = _annotation_class(item.annotation)
                        if inferred:
                            cls.attr_types.setdefault(item.target.id, inferred)
                self._index_scope(child, ctx, module, cls_qual, child.name)
            elif isinstance(child, _FUNC_TYPES):  # lambda as a child expr
                self._index_lambdas(child, ctx, module, prefix, class_name)
            else:
                self._index_lambdas(child, ctx, module, prefix, class_name)

    def _index_lambdas(
        self, node: ast.AST, ctx: FileContext, module: str, prefix: str,
        class_name: str | None,
    ) -> None:
        """Register lambdas nested in expressions (dispatch callables)."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                qualname = f"{prefix}.<lambda@{sub.lineno}>"
                if qualname not in self.functions:
                    self._add_function(
                        FunctionInfo(qualname, sub, ctx, module, class_name),
                        prefix,
                    )

    def _add_function(self, info: FunctionInfo, enclosing_prefix: str) -> None:
        self.functions[info.qualname] = info
        self._node_owner[id(info.node)] = info.qualname
        if enclosing_prefix in self.functions:
            self.enclosing[info.qualname] = enclosing_prefix

    def finish_index(self) -> None:
        """Second half of phase 1: derived maps that need every file."""
        for cls in self.classes.values():
            for method_name, qualname in cls.methods.items():
                self.methods_by_name.setdefault(method_name, []).append(qualname)
            init = cls.methods.get("__init__") or cls.methods.get("__post_init__")
            for name in ("__init__", "__post_init__"):
                qual = cls.methods.get(name)
                if qual:
                    self._infer_attr_types(cls, self.functions[qual])
            del init

    def _infer_attr_types(self, cls: ClassInfo, init: FunctionInfo) -> None:
        node = init.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types: dict[str, str] = {}
        for arg in [*node.args.args, *node.args.kwonlyargs]:
            if arg.annotation is not None:
                inferred = _annotation_class(arg.annotation)
                if inferred:
                    param_types[arg.arg] = inferred
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                inferred: str | None = None
                if isinstance(stmt, ast.AnnAssign):
                    inferred = _annotation_class(stmt.annotation)
                if inferred is None and value is not None:
                    inferred = self._value_class_name(value, init, param_types)
                if inferred and inferred in self.classes_by_name:
                    cls.attr_types.setdefault(target.attr, inferred)

    def _value_class_name(
        self, value: ast.expr, fn: FunctionInfo, param_types: dict[str, str]
    ) -> str | None:
        if isinstance(value, ast.IfExp):
            return (self._value_class_name(value.body, fn, param_types)
                    or self._value_class_name(value.orelse, fn, param_types))
        if isinstance(value, ast.Call):
            name = _name_of(value.func)
            if name and name in self.classes_by_name:
                return name
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        return None

    # -- phase 2: resolution -------------------------------------------

    def resolve(self) -> None:
        for info in self.functions.values():
            self._resolve_function(info)

    def owner_of(self, qualname: str) -> ClassInfo | None:
        """The class a method qualname belongs to, if any."""
        prefix = qualname.rsplit(".", 1)[0]
        return self.classes.get(prefix)

    def _resolve_function(self, info: FunctionInfo) -> None:
        body: Iterable[ast.AST]
        node = info.node
        if isinstance(node, ast.Lambda):
            body = [node.body]
        else:
            body = node.body  # type: ignore[union-attr]
        awaited: set[int] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, _FUNC_TYPES) and sub is not node:
                    continue  # handled as their own functions
                if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
                    awaited.add(id(sub.value))
        for stmt in body:
            for sub in _walk_own(stmt, node):
                if isinstance(sub, ast.Call):
                    site = self._resolve_call(sub, info)
                    if site is not None:
                        site.in_await = id(sub) in awaited
                        info.calls.append(site)

    def _resolve_call(self, call: ast.Call, info: FunctionInfo) -> CallSite | None:
        func = call.func
        # Dispatch sites first: the callee runs in another context.
        dispatch = self._dispatch_site(call, info)
        if dispatch is not None:
            return dispatch
        if isinstance(func, ast.Name):
            return self._resolve_name_call(call, func.id, info)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(call, func, info)
        return CallSite(call)

    def _dispatch_site(self, call: ast.Call, info: FunctionInfo) -> CallSite | None:
        func = call.func
        name = _name_of(func)
        if name not in _DISPATCH_SPECS:
            return None
        kind, arg_index = _DISPATCH_SPECS[name]
        if name == "submit" and isinstance(func, ast.Attribute):
            recv_name = (_name_of(func.value) or "").lower()
            recv_type = self._infer_type(func.value, info) or ""
            if any(tag in recv_name for tag in _POOLISH) or "Process" in recv_type:
                kind = "pool"
        callable_expr: ast.expr | None = None
        if arg_index is None:
            for kw in call.keywords:
                if kw.arg == "target":
                    callable_expr = kw.value
        elif len(call.args) > arg_index:
            callable_expr = call.args[arg_index]
        targets = self._resolve_callable(callable_expr, info) if callable_expr is not None else ()
        return CallSite(call, dispatch=kind, dispatch_targets=targets, attr=name)

    def _resolve_callable(self, expr: ast.expr, info: FunctionInfo) -> tuple[str, ...]:
        """Resolve a callable *value* (not a call): dispatch targets."""
        if isinstance(expr, ast.Lambda):
            for qualname, fn in self.functions.items():
                if fn.node is expr:
                    return (qualname,)
            return ()
        if isinstance(expr, ast.Call) and _name_of(expr.func) == "partial" and expr.args:
            return self._resolve_callable(expr.args[0], info)
        if isinstance(expr, ast.Name):
            site = self._resolve_name_call(ast.Call(func=expr, args=[], keywords=[]), expr.id, info)
            return site.targets if site else ()
        if isinstance(expr, ast.Attribute):
            site = self._resolve_attr_call(
                ast.Call(func=expr, args=[], keywords=[]), expr, info
            )
            return site.targets if site else ()
        return ()

    def _resolve_name_call(self, call: ast.Call, name: str, info: FunctionInfo) -> CallSite:
        # 1. lexically enclosing nested defs
        scope_qual = info.qualname
        while True:
            candidate = f"{scope_qual}.{name}"
            if candidate in self.functions:
                return CallSite(call, targets=(candidate,), attr=name)
            nxt = self.enclosing.get(scope_qual)
            if nxt is None:
                break
            scope_qual = nxt
        # 2. module-level function or class in the same module
        module_candidate = f"{info.module}.{name}"
        if module_candidate in self.functions:
            return CallSite(call, targets=(module_candidate,), attr=name)
        if module_candidate in self.classes:
            return CallSite(
                call, targets=self._constructor_targets(self.classes[module_candidate]),
                attr=name,
            )
        # 3. imported symbol (following package re-exports)
        module = self.modules.get(info.module)
        if module and name in module.imports:
            return self._resolve_dotted(call, module.imports[name], name)
        return CallSite(call, attr=name, external=name if name in _KNOWN_EXTERNAL else None)

    def _resolve_dotted(self, call: ast.Call, dotted: str, attr: str,
                        _depth: int = 0) -> CallSite:
        if _depth > 4:
            return CallSite(call, external=dotted, attr=attr)
        if dotted in self.functions:
            return CallSite(call, targets=(dotted,), attr=attr)
        if dotted in self.classes:
            return CallSite(
                call, targets=self._constructor_targets(self.classes[dotted]), attr=attr
            )
        # package re-export: repro.storage.atomic_write is really
        # repro.storage.atomic.atomic_write (followed via the package
        # __init__'s own import map).
        if "." in dotted:
            mod_part, sym = dotted.rsplit(".", 1)
            module = self.modules.get(mod_part)
            if module and sym in module.imports:
                return self._resolve_dotted(call, module.imports[sym], attr, _depth + 1)
        return CallSite(call, external=dotted, attr=attr)

    def _constructor_targets(self, cls: ClassInfo) -> tuple[str, ...]:
        targets = []
        for name in ("__init__", "__post_init__"):
            qual = cls.methods.get(name)
            if qual:
                targets.append(qual)
        return tuple(targets)

    def _resolve_attr_call(
        self, call: ast.Call, func: ast.Attribute, info: FunctionInfo
    ) -> CallSite:
        attr = func.attr
        recv = func.value
        # self.method() / cls.method(): the enclosing class, then bases.
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
            cls = self._enclosing_class(info)
            target = self._method_on(cls, attr) if cls else None
            if target:
                return CallSite(call, targets=(target,), attr=attr)
        # module attribute: os.fsync, sidecar.load_buffer, np.frombuffer
        if isinstance(recv, ast.Name):
            module = self.modules.get(info.module)
            if module and recv.id in module.imports:
                dotted = f"{module.imports[recv.id]}.{attr}"
                return self._resolve_dotted(call, dotted, attr)
            # ClassName.classmethod(...)
            resolved = self._resolve_class_named(recv.id, info)
            if resolved is not None:
                target = self._method_on(resolved, attr)
                if target:
                    return CallSite(call, targets=(target,), attr=attr)
        # typed receiver
        recv_type = self._infer_type(recv, info)
        if recv_type:
            resolved = self._resolve_class_named(recv_type, info)
            if resolved is not None:
                target = self._method_on(resolved, attr)
                if target:
                    return CallSite(call, targets=(target,), attr=attr)
        # untyped: by-name, only when unambiguous project-wide
        candidates = self.methods_by_name.get(attr, [])
        if len(candidates) == 1 and not attr.startswith("__"):
            return CallSite(call, targets=(candidates[0],), attr=attr)
        return CallSite(call, attr=attr)

    def _enclosing_class(self, info: FunctionInfo) -> ClassInfo | None:
        prefix = info.qualname
        while prefix:
            cls = self.classes.get(prefix.rsplit(".", 1)[0])
            if cls is not None:
                return cls
            nxt = self.enclosing.get(prefix)
            if nxt is None or nxt == prefix:
                break
            prefix = nxt
        return None

    def _method_on(self, cls: ClassInfo, attr: str) -> str | None:
        """Method lookup on a class, then its project bases (by name)."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.methods:
                return current.methods[attr]
            for base in current.base_names:
                for base_cls in self.classes_by_name.get(base, []):
                    queue.append(base_cls)
        return None

    def _resolve_class_named(self, name: str, info: FunctionInfo) -> ClassInfo | None:
        qual = f"{info.module}.{name}"
        if qual in self.classes:
            return self.classes[qual]
        module = self.modules.get(info.module)
        if module and name in module.imports:
            dotted = module.imports[name]
            resolved = self._follow_reexport(dotted)
            if resolved in self.classes:
                return self.classes[resolved]
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _follow_reexport(self, dotted: str, _depth: int = 0) -> str:
        if _depth > 4 or dotted in self.classes or dotted in self.functions:
            return dotted
        if "." in dotted:
            mod_part, sym = dotted.rsplit(".", 1)
            module = self.modules.get(mod_part)
            if module and sym in module.imports:
                return self._follow_reexport(module.imports[sym], _depth + 1)
        return dotted

    # -- light type inference ------------------------------------------

    def _infer_type(self, expr: ast.expr, info: FunctionInfo,
                    _depth: int = 0) -> str | None:
        """Best-effort class *name* of an expression's value."""
        if _depth > 4:
            return None
        if isinstance(expr, ast.Call):
            name = _name_of(expr.func)
            if name and (f"{info.module}.{name}" in self.classes
                         or name in self.classes_by_name):
                resolved = self._resolve_class_named(name, info)
                if resolved is not None:
                    return resolved.name
            # return annotation of a resolvable call
            site = self._resolve_call(expr, info)
            if site and site.targets:
                target = self.functions.get(site.targets[0])
                if target is not None and isinstance(
                    target.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    returns = target.node.returns
                    if returns is not None:
                        inferred = _annotation_class(returns)
                        if inferred and inferred in self.classes_by_name:
                            return inferred
            return None
        if isinstance(expr, ast.IfExp):
            return (self._infer_type(expr.body, info, _depth + 1)
                    or self._infer_type(expr.orelse, info, _depth + 1))
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"):
                cls = self._enclosing_class(info)
                if cls is not None:
                    return cls.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            return self._infer_name_type(expr.id, info, _depth)
        return None

    def _infer_name_type(self, name: str, info: FunctionInfo, _depth: int) -> str | None:
        # Name -> binding-expression lookup is the one back-edge in the
        # inference recursion (a rebinding like ``sock = wrap(sock)``
        # would otherwise loop forever, since resolving the call resets
        # the depth counter); refuse re-entrant lookups of the same
        # name in the same function.
        key = (info.qualname, name)
        if key in self._inferring_names:
            return None
        self._inferring_names.add(key)
        try:
            return self._infer_name_type_inner(name, info, _depth)
        finally:
            self._inferring_names.discard(key)

    def _infer_name_type_inner(self, name: str, info: FunctionInfo,
                               _depth: int) -> str | None:
        # parameter annotation, then local bindings, then enclosing scopes
        current: FunctionInfo | None = info
        while current is not None:
            node = current.node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in [*node.args.args, *node.args.kwonlyargs]:
                    if arg.arg == name and arg.annotation is not None:
                        inferred = _annotation_class(arg.annotation)
                        if inferred:
                            return inferred
                # AnnAssign-typed or constructor-bound locals
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name) \
                            and stmt.target.id == name:
                        inferred = _annotation_class(stmt.annotation)
                        if inferred:
                            return inferred
                bindings = current.ctx.bindings(node).get(name, ())
                for value in bindings:
                    inferred = self._infer_type(value, current, _depth + 1)
                    if inferred:
                        return inferred
            enclosing = self.enclosing.get(current.qualname)
            current = self.functions.get(enclosing) if enclosing else None
        return None

    # -- queries used by the rules -------------------------------------

    def module_global_names(self, module: str) -> set[str]:
        info = self.modules.get(module)
        return set(info.globals) if info else set()

    def function_for_node(self, node: ast.AST) -> FunctionInfo | None:
        return self.functions.get(self._node_owner.get(id(node), ""))


def _walk_own(stmt: ast.AST, owner: ast.AST):
    """Walk a statement without descending into nested function scopes."""
    stack = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_TYPES) and node is not owner:
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _name_of(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_class(node: ast.AST) -> str | None:
    """Class name out of an annotation, stripping Optional/unions/quotes."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_class(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class(node.left)
        if left and left not in ("None", "NoneType"):
            return left
        return _annotation_class(node.right)
    if isinstance(node, ast.Subscript):
        base = _name_of(node.value)
        if base == "Optional":
            return _annotation_class(node.slice)
        return None
    return None


#: Bare names treated as external calls when they resolve nowhere
#: (blocking-primitive hints for subset runs where the callee module is
#: not part of the checked file set).
_KNOWN_EXTERNAL = frozenset({"open", "print", "input"})


def build_graph(files: Iterable[FileContext]) -> CallGraph:
    graph = CallGraph()
    for ctx in files:
        graph.index_file(ctx)
    graph.finish_index()
    graph.resolve()
    return graph
