"""Tree-walking JSONPath evaluator used as the correctness oracle.

Semantics notes (shared with the streaming engines):

- Matches are returned in document order.
- ``[m:n]`` selects indices ``m <= i < n`` with non-negative bounds, as in
  the paper's queries (``cp[1:3]``, ``[$10:21]``); Python-style negative
  indices are intentionally not supported.
- ``..name`` (descendant, our extension) matches attributes called
  ``name`` at any depth below the current value, including inside the
  values of other matches (pre-order).
- Union selectors ``[1,3]`` / ``['a','b']`` (extension) match in
  document order regardless of selector order.
"""

from __future__ import annotations

import json
from typing import Any

from repro.jsonpath.ast import (
    Child,
    Descendant,
    Filter,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    Step,
    WildcardChild,
    WildcardIndex,
)
from repro.jsonpath.parser import parse_path


def _walk(value: Any, steps: tuple[Step, ...], trail: tuple[Any, ...], out: list[tuple[tuple[Any, ...], Any]]) -> None:
    if not steps:
        out.append((trail, value))
        return
    step, rest = steps[0], steps[1:]
    if isinstance(step, Child):
        if isinstance(value, dict) and step.name in value:
            _walk(value[step.name], rest, trail + (step.name,), out)
    elif isinstance(step, WildcardChild):
        if isinstance(value, dict):
            for key, child in value.items():
                _walk(child, rest, trail + (key,), out)
    elif isinstance(step, MultiName):
        if isinstance(value, dict):
            # Document order, not selector order.
            for key, child in value.items():
                if key in step.names:
                    _walk(child, rest, trail + (key,), out)
    elif isinstance(step, Index):
        if isinstance(value, list) and 0 <= step.index < len(value):
            _walk(value[step.index], rest, trail + (step.index,), out)
    elif isinstance(step, Slice):
        if isinstance(value, list):
            stop = len(value) if step.stop is None else min(step.stop, len(value))
            for i in range(min(step.start, len(value)), stop):
                _walk(value[i], rest, trail + (i,), out)
    elif isinstance(step, WildcardIndex):
        if isinstance(value, list):
            for i, child in enumerate(value):
                _walk(child, rest, trail + (i,), out)
    elif isinstance(step, MultiIndex):
        if isinstance(value, list):
            for i in step.indices:
                if 0 <= i < len(value):
                    _walk(value[i], rest, trail + (i,), out)
    elif isinstance(step, Filter):
        if isinstance(value, list):
            for i, child in enumerate(value):
                if step.expr.matches(child):
                    _walk(child, rest, trail + (i,), out)
    elif isinstance(step, Descendant):
        # Pre-order: a key match at this level is reported before matches
        # nested inside that key's value.
        if isinstance(value, dict):
            for key, child in value.items():
                if key == step.name:
                    _walk(child, rest, trail + (key,), out)
                _walk(child, steps, trail + (key,), out)
        elif isinstance(value, list):
            for i, child in enumerate(value):
                _walk(child, steps, trail + (i,), out)
    else:  # pragma: no cover - exhaustive over Step subclasses
        raise TypeError(f"unknown step type {type(step).__name__}")


def evaluate_with_paths(path: Path | str, value: Any) -> list[tuple[tuple[Any, ...], Any]]:
    """Evaluate and return ``(normalized_path, value)`` pairs in document
    order.  The normalized path is a tuple of keys (str) and indices (int).
    """
    if isinstance(path, str):
        path = parse_path(path)
    out: list[tuple[tuple[Any, ...], Any]] = []
    _walk(value, path.steps, (), out)
    return out


def evaluate(path: Path | str, value: Any) -> list[Any]:
    """Evaluate ``path`` against a parsed record; return matched values."""
    return [v for _, v in evaluate_with_paths(path, value)]


def evaluate_bytes(path: Path | str, data: bytes | str) -> list[Any]:
    """Parse JSON text with :func:`json.loads`, then evaluate ``path``."""
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    # repro: ignore[RS010] -- the reference oracle's contract is to parse
    # the whole document; it defines correctness, not performance.
    return evaluate(path, json.loads(data))
