"""Reference (oracle) JSONPath evaluation over fully-parsed records.

This is deliberately the *slow, obviously-correct* implementation: parse
with :func:`json.loads`, then walk the tree.  Every streaming engine in
the package is validated against it.
"""

from repro.reference.evaluator import evaluate, evaluate_bytes, evaluate_with_paths

__all__ = ["evaluate", "evaluate_bytes", "evaluate_with_paths"]
