"""Pison-like baseline: leveled structural index + index-guided querying.

Reproduces Pison's strategy as the paper characterizes it (Section 2,
Figure 3-(b), Table 3): bit-parallel identification of metacharacters,
from which *leveled bitmaps* are built — for every nesting level up to
the query depth, the positions of that level's colons (object attributes)
and commas (array elements).  Query evaluation then jumps between
attribute/element boundaries using the leveled index, never re-parsing
the record — but only after paying the full upfront index construction,
and while holding the whole index in memory (Figures 10, 13, 14).

The index construction mirrors Pison's two phases: the bit-parallel
substrate yields the ordered structural positions (shared with
:mod:`repro.baselines.simdjson_like`); a single linear sweep with a depth
counter then distributes colons and commas into levels.  The sweep is the
part Pison parallelizes speculatively across chunks —
:mod:`repro.parallel.speculation` does exactly that partitioning for the
Figure 10 sixteen-worker bars.
"""

from __future__ import annotations


import numpy as np

from repro.baselines.simdjson_like import structural_positions
from repro.engine.base import EngineBase
from repro.engine.names import decode_name as _decode_name
from repro.bits.classify import WHITESPACE
from repro.engine.output import MatchList
from repro.errors import JsonSyntaxError, UnsupportedQueryError
from repro.jsonpath.ast import (
    Child,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    WildcardChild,
    WildcardIndex,
)
from repro.jsonpath.parser import parse_path

_WS = frozenset(WHITESPACE)
_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COMMA, _COLON, _QUOTE = 0x2C, 0x3A, 0x22


class LeveledIndex:
    """Leveled colon/comma position arrays for one record.

    Level ``l`` holds the metacharacters that separate the members of
    containers nested ``l`` levels below the root (the root container's
    own colons/commas are level 0, as in Figure 3-(b)).
    """

    def __init__(self, data: bytes, max_levels: int, limits=None) -> None:
        self.data = data
        self.max_levels = max_levels
        structs = structural_positions(data)
        colons: list[list[int]] = [[] for _ in range(max_levels)]
        commas: list[list[int]] = [[] for _ in range(max_levels)]
        depth = 0
        max_depth = limits.max_depth if limits is not None else None
        deadline = limits.deadline if limits is not None else None
        seen = 0
        root_span: tuple[int, int] | None = None
        root_start = -1
        byte_vals = np.frombuffer(data, dtype=np.uint8)[structs] if len(structs) else np.empty(0, np.uint8)
        for pos, byte in zip(structs.tolist(), byte_vals.tolist()):
            if deadline is not None:
                seen += 1
                if (seen & 1023) == 0:
                    deadline.check(pos)
            if byte == _LBRACE or byte == _LBRACKET:
                if depth == 0:
                    root_start = pos
                depth += 1
                if max_depth is not None and depth > max_depth:
                    from repro.errors import DepthLimitError

                    raise DepthLimitError(
                        f"pison: nesting depth exceeds max_depth={max_depth}",
                        position=pos,
                        depth=depth,
                    )
            elif byte == _RBRACE or byte == _RBRACKET:
                depth -= 1
                if depth == 0 and root_span is None:
                    root_span = (root_start, pos + 1)
                if depth < 0:
                    raise JsonSyntaxError("unbalanced closing bracket", pos)
            elif byte == _COLON:
                if 0 < depth <= max_levels:
                    colons[depth - 1].append(pos)
            else:  # comma
                if 0 < depth <= max_levels:
                    commas[depth - 1].append(pos)
        if depth != 0:
            raise JsonSyntaxError("record ended with unclosed containers", len(data))
        # ``None`` when the record is a bare primitive (no container, no
        # possible path match).
        self.root_span = root_span
        self.colons = [np.asarray(c, dtype=np.int64) for c in colons]
        self.commas = [np.asarray(c, dtype=np.int64) for c in commas]

    # -- span queries ------------------------------------------------------

    def colons_in(self, level: int, lo: int, hi: int) -> np.ndarray:
        arr = self.colons[level]
        return arr[np.searchsorted(arr, lo) : np.searchsorted(arr, hi)]

    def commas_in(self, level: int, lo: int, hi: int) -> np.ndarray:
        arr = self.commas[level]
        return arr[np.searchsorted(arr, lo) : np.searchsorted(arr, hi)]


class PisonLike(EngineBase):
    """Preprocessing engine over leveled colon/comma bitmaps."""

    def __init__(self, query: str | Path, collect_stats: bool = False, limits=None) -> None:
        from repro.engine.base import ensure_query_supported
        from repro.resilience.guards import effective_limits

        self.path = parse_path(query) if isinstance(query, str) else query
        # The leveled index is built to the query's static depth, so
        # descendant ('..') queries are structurally impossible; filters
        # are simply not implemented.  Both rejections use the uniform
        # UnsupportedQueryError shape shared by all engines.
        ensure_query_supported(self.path, engine="pison", descendant=False, filters=False)
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.limits.check_record_size(len(data))
        index = LeveledIndex(data, max_levels=len(self.path), limits=self.limits)  # upfront build
        matches = MatchList()
        if index.root_span is not None:
            _Evaluator(index, data, matches).eval_steps(index.root_span, 0, self.path.steps)
        return matches




class _Evaluator:
    """Index-guided evaluation: jump colon-to-colon / comma-to-comma."""

    def __init__(self, index: LeveledIndex, data: bytes, matches: MatchList) -> None:
        self.index = index
        self.data = data
        self.matches = matches

    # -- text helpers ------------------------------------------------------

    def _skip_ws(self, pos: int) -> int:
        data = self.data
        n = len(data)
        while pos < n and data[pos] in _WS:
            pos += 1
        return pos

    def _rstrip(self, start: int, end: int) -> int:
        data = self.data
        while end > start and data[end - 1] in _WS:
            end -= 1
        return end

    def _name_before(self, colon: int, lo: int) -> str:
        """Attribute name owning ``colon``: the string just before it.

        Pison recovers field names by scanning back from the colon
        (memrchr); ``bytes.rfind`` is the Python spelling.
        """
        name_end = self._rstrip(lo, colon)
        open_quote = self.data.rfind(_QUOTE, lo, name_end - 1)
        if self.data[name_end - 1] != _QUOTE or open_quote < 0:
            raise JsonSyntaxError("attribute name is not a string", colon)
        return _decode_name(self.data[open_quote + 1 : name_end - 1])

    # -- evaluation ---------------------------------------------------------

    def eval_steps(self, span: tuple[int, int], level: int, steps: tuple) -> None:
        """Evaluate ``steps`` against the single value held in ``span``.

        A span covers exactly one value plus surrounding whitespace; the
        value text is ``data[skip_ws(lo) : rstrip(hi)]``.
        """
        lo, hi = span
        vstart = self._skip_ws(lo)
        vend = self._rstrip(vstart, hi)
        if not steps:
            self.matches.add(self.data, vstart, vend)
            return
        byte = self.data[vstart]
        step, rest = steps[0], steps[1:]
        if isinstance(step, (Child, WildcardChild, MultiName)):
            if byte != _LBRACE:
                return
            self._eval_object(vstart, vend, level, step, rest)
        elif isinstance(step, (Index, Slice, WildcardIndex, MultiIndex)):
            if byte != _LBRACKET:
                return
            self._eval_array(vstart, vend, level, step, rest)
        else:  # pragma: no cover - Descendant rejected in the constructor
            raise UnsupportedQueryError(f"unsupported step {step!r}")

    def _eval_object(self, lo: int, hi: int, level: int, step, rest: tuple) -> None:
        """``lo`` is the ``{``, ``hi`` is one past the matching ``}``."""
        colons = self.index.colons_in(level, lo, hi)
        wildcard = isinstance(step, WildcardChild)
        multi = isinstance(step, MultiName)
        remaining = len(step.names) if multi else 1
        for colon in colons.tolist():
            if not wildcard:
                # The attribute's name starts after the previous
                # attribute's separating comma (or the opening brace).
                prev_commas = self.index.commas_in(level, lo, colon)
                name_lo = int(prev_commas[-1]) + 1 if len(prev_commas) else lo + 1
                name = self._name_before(colon, name_lo)
                if (name not in step.names) if multi else (name != step.name):
                    continue
            next_commas = self.index.commas_in(level, colon, hi)
            value_hi = int(next_commas[0]) if len(next_commas) else hi - 1
            self.eval_steps((colon + 1, value_hi), level + 1, rest)
            if not wildcard:
                remaining -= 1
                if remaining == 0:
                    return  # attribute names are unique

    def _eval_array(self, lo: int, hi: int, level: int, step, rest: tuple) -> None:
        """``lo`` is the ``[``, ``hi`` is one past the matching ``]``."""
        if self._skip_ws(lo + 1) == hi - 1:
            return  # empty array
        commas = self.index.commas_in(level, lo + 1, hi - 1).tolist()
        # Element i occupies [starts[i], ends[i]): between the brackets
        # and the level-l commas.
        starts = [lo + 1, *[c + 1 for c in commas]]
        ends = [*commas, hi - 1]
        n_elements = len(starts)
        if isinstance(step, Index):
            selected: "range | list[int]" = (
                range(step.index, step.index + 1) if step.index < n_elements else range(0)
            )
        elif isinstance(step, Slice):
            stop = n_elements if step.stop is None else min(step.stop, n_elements)
            selected = range(min(step.start, n_elements), stop)
        elif isinstance(step, MultiIndex):
            selected = [i for i in step.indices if i < n_elements]
        else:  # WildcardIndex
            selected = range(n_elements)
        for i in selected:
            self.eval_steps((starts[i], ends[i]), level + 1, rest)
