"""In-memory DOM for the preprocessing-scheme baselines.

RapidJSON-like and simdjson-like both follow the paper's *preprocessing
scheme*: parse the record into an in-memory structure, then traverse it
top-down to evaluate the path query (Figure 3-(a)).  The DOM here is a
compact span-carrying tree:

- object — ``ObjectNode`` with ``members`` = list of ``(name, node)``;
- array — ``ArrayNode`` with ``elements``;
- primitive — ``PrimitiveNode``;

every node records its ``(start, end)`` span in the source so query
results can be emitted as raw-text matches exactly like the streaming
engines (making outputs comparable across methods).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.output import MatchList
from repro.jsonpath.ast import (
    Child,
    Descendant,
    Filter,
    Index,
    MultiIndex,
    MultiName,
    Path,
    Slice,
    Step,
    WildcardChild,
    WildcardIndex,
)


@dataclass(frozen=True)
class Node:
    """Base DOM node: a value spanning ``[start, end)`` of the source."""

    start: int
    end: int


@dataclass(frozen=True)
class ObjectNode(Node):
    members: tuple[tuple[str, "AnyNode"], ...]


@dataclass(frozen=True)
class ArrayNode(Node):
    elements: tuple["AnyNode", ...]


@dataclass(frozen=True)
class PrimitiveNode(Node):
    pass


AnyNode = ObjectNode | ArrayNode | PrimitiveNode


def to_python(node: AnyNode, source: bytes):
    """Materialize a DOM subtree as plain Python objects.

    The spans make this trivially correct: primitives re-parse their own
    slice.  Used by tests to assert the two DOM builders (char-by-char
    and tape-driven) agree with ``json.loads``, and handy when a caller
    wants real objects for a *subtree* without parsing the whole record.
    """
    import json

    if isinstance(node, ObjectNode):
        return {name: to_python(value, source) for name, value in node.members}
    if isinstance(node, ArrayNode):
        return [to_python(value, source) for value in node.elements]
    # repro: ignore[RS010] -- tree-baseline leaf materialization; the DOM
    # baseline exists to measure the cost of exactly this.
    return json.loads(source[node.start : node.end])


def count_nodes(node: AnyNode) -> int:
    """Total node count of a DOM (memory-footprint diagnostics)."""
    if isinstance(node, ObjectNode):
        return 1 + sum(count_nodes(v) for _, v in node.members)
    if isinstance(node, ArrayNode):
        return 1 + sum(count_nodes(v) for v in node.elements)
    return 1


def query_tree(root: AnyNode, path: Path, source: bytes, matches: MatchList) -> None:
    """Top-down traversal evaluating ``path`` over a DOM (Figure 3-(a))."""
    _walk(root, path.steps, source, matches)


def _walk(node: AnyNode, steps: tuple[Step, ...], source: bytes, matches: MatchList) -> None:
    if not steps:
        matches.add(source, node.start, node.end)
        return
    step, rest = steps[0], steps[1:]
    if isinstance(step, Child):
        if isinstance(node, ObjectNode):
            for name, value in node.members:
                if name == step.name:
                    _walk(value, rest, source, matches)
    elif isinstance(step, WildcardChild):
        if isinstance(node, ObjectNode):
            for _, value in node.members:
                _walk(value, rest, source, matches)
    elif isinstance(step, MultiName):
        if isinstance(node, ObjectNode):
            for name, value in node.members:  # document order
                if name in step.names:
                    _walk(value, rest, source, matches)
    elif isinstance(step, Index):
        if isinstance(node, ArrayNode) and 0 <= step.index < len(node.elements):
            _walk(node.elements[step.index], rest, source, matches)
    elif isinstance(step, Slice):
        if isinstance(node, ArrayNode):
            stop = len(node.elements) if step.stop is None else min(step.stop, len(node.elements))
            for i in range(min(step.start, len(node.elements)), stop):
                _walk(node.elements[i], rest, source, matches)
    elif isinstance(step, WildcardIndex):
        if isinstance(node, ArrayNode):
            for value in node.elements:
                _walk(value, rest, source, matches)
    elif isinstance(step, MultiIndex):
        if isinstance(node, ArrayNode):
            for i in step.indices:
                if 0 <= i < len(node.elements):
                    _walk(node.elements[i], rest, source, matches)
    elif isinstance(step, Filter):
        if isinstance(node, ArrayNode):
            for element in node.elements:
                if step.expr.matches(to_python(element, source)):
                    _walk(element, rest, source, matches)
    elif isinstance(step, Descendant):
        if isinstance(node, ObjectNode):
            for name, value in node.members:
                if name == step.name:
                    _walk(value, rest, source, matches)
                _walk(value, steps, source, matches)
        elif isinstance(node, ArrayNode):
            for value in node.elements:
                _walk(value, steps, source, matches)
    else:  # pragma: no cover - exhaustive over Step subclasses
        raise TypeError(f"unknown step type {type(step).__name__}")
