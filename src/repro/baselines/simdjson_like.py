"""simdjson-like baseline: bit-parallel two-stage DOM parse + tree query.

Reproduces simdjson's strategy as characterized by the paper (Table 3):
bitwise/SIMD parallelism is used, but *only* for stage 1 — locating the
structural metacharacters of the whole record up front.  Stage 2 then
walks the structural positions to build the parse tree ("tape"), and the
query finally traverses that tree.  Being a preprocessing method, it pays
the full indexing + tree construction cost before the first match and
retains the index and tree in memory (Figures 10, 13).

The documented single-record size cap (simdjson supports records up to
4 GB — paper Section 5.4) is modelled by ``max_record_bytes``.
"""

from __future__ import annotations


import numpy as np

from repro.engine.base import EngineBase
from repro.engine.names import decode_name as _decode_name
from repro.baselines.tree import AnyNode, ArrayNode, ObjectNode, PrimitiveNode, query_tree
from repro.bits.classify import WHITESPACE, CharClass
from repro.bits.posindex import PositionBufferIndex
from repro.engine.output import MatchList
from repro.errors import JsonSyntaxError, RecordTooLargeError, StreamExhaustedError
from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path

_WS = frozenset(WHITESPACE)
_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COMMA, _COLON, _QUOTE = 0x2C, 0x3A, 0x22

#: simdjson's documented single-record limit (4 GiB).
DEFAULT_MAX_RECORD_BYTES = 1 << 32


def structural_positions(data: bytes, chunk_size: int = 1 << 20) -> np.ndarray:
    """Stage 1: positions of every structural metacharacter, in order.

    Built with the same bit-parallel substrate JSONSki uses, but for the
    *entire* record up front and retained — the defining difference
    between the preprocessing and streaming schemes.
    """
    index = PositionBufferIndex(data, chunk_size=chunk_size, cache_chunks=None)
    parts = [index.get(cid).positions(CharClass.ANY) for cid in range(index.n_chunks)]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


class _TapeBuilder:
    """Stage 2: build the DOM by walking the structural-position tape."""

    def __init__(self, data: bytes, structs: np.ndarray, limits=None) -> None:
        self.data = data
        self.structs = structs
        self.i = 0  # next unconsumed structural position
        self.limits = limits

    # -- helpers -----------------------------------------------------------

    def _skip_ws(self, pos: int) -> int:
        data = self.data
        n = len(data)
        while pos < n and data[pos] in _WS:
            pos += 1
        return pos

    def _rstrip(self, start: int, end: int) -> int:
        data = self.data
        while end > start and data[end - 1] in _WS:
            end -= 1
        return end

    def _next_struct(self) -> int:
        if self.i >= len(self.structs):
            raise StreamExhaustedError("record ended inside a structure", len(self.data))
        return int(self.structs[self.i])

    # -- recursive tape walk -------------------------------------------------

    def parse_value(self, start: int, depth: int = 1) -> AnyNode:
        if start >= len(self.data):
            raise StreamExhaustedError("record ended where a value was expected", start)
        byte = self.data[start]
        if byte == _LBRACE:
            return self.parse_object(start, depth)
        if byte == _LBRACKET:
            return self.parse_array(start, depth)
        # Primitive: extends to the next structural character (strings
        # cannot contain unmasked metacharacters).
        end = int(self.structs[self.i]) if self.i < len(self.structs) else len(self.data)
        return PrimitiveNode(start, self._rstrip(start, end))

    def parse_object(self, lb: int, depth: int = 1) -> ObjectNode:
        if self.limits is not None:
            self.limits.enter(depth, lb)
        self.i += 1  # consume '{'
        nxt = self._next_struct()
        if self.data[nxt] == _RBRACE and self._skip_ws(lb + 1) == nxt:
            self.i += 1
            return ObjectNode(lb, nxt + 1, ())
        members: list[tuple[str, AnyNode]] = []
        prev = lb
        while True:
            colon = self._next_struct()
            if self.data[colon] != _COLON:
                raise JsonSyntaxError("expected ':' between name and value", colon)
            name_start = self._skip_ws(prev + 1)
            name_end = self._rstrip(name_start, colon)
            if name_start >= len(self.data) or name_end <= name_start:
                raise StreamExhaustedError("record ended inside an attribute name", name_start)
            if self.data[name_start] != _QUOTE or self.data[name_end - 1] != _QUOTE:
                raise JsonSyntaxError("attribute name is not a string", name_start)
            name = _decode_name(self.data[name_start + 1 : name_end - 1])
            self.i += 1  # consume ':'
            members.append((name, self.parse_value(self._skip_ws(colon + 1), depth + 1)))
            delim = self._next_struct()
            self.i += 1
            if self.data[delim] == _RBRACE:
                return ObjectNode(lb, delim + 1, tuple(members))
            if self.data[delim] != _COMMA:
                raise JsonSyntaxError("expected ',' or '}' in object", delim)
            prev = delim

    def parse_array(self, lb: int, depth: int = 1) -> ArrayNode:
        if self.limits is not None:
            self.limits.enter(depth, lb)
        self.i += 1  # consume '['
        nxt = self._next_struct()
        # The next structural char being ']' does not imply emptiness: a
        # string element (quotes are not structural) may sit in between.
        if self.data[nxt] == _RBRACKET and self._skip_ws(lb + 1) == nxt:
            self.i += 1
            return ArrayNode(lb, nxt + 1, ())
        elements: list[AnyNode] = []
        prev = lb
        while True:
            elements.append(self.parse_value(self._skip_ws(prev + 1), depth + 1))
            delim = self._next_struct()
            self.i += 1
            if self.data[delim] == _RBRACKET:
                return ArrayNode(lb, delim + 1, tuple(elements))
            if self.data[delim] != _COMMA:
                raise JsonSyntaxError("expected ',' or ']' in array", delim)
            prev = delim


def parse_dom(data: bytes, chunk_size: int = 1 << 20, limits=None) -> AnyNode:
    """Two-stage parse: structural index, then tape-driven DOM build."""
    from repro.resilience.guards import depth_error_from_recursion

    structs = structural_positions(data, chunk_size=chunk_size)
    builder = _TapeBuilder(data, structs, limits=limits)
    start = builder._skip_ws(0)
    if start >= len(data):
        raise JsonSyntaxError("empty input", 0)
    try:
        return builder.parse_value(start)
    except RecursionError as exc:
        raise depth_error_from_recursion(exc, "simdjson") from None


class SimdJsonLike(EngineBase):
    """Preprocessing engine with bit-parallel structural indexing."""

    def __init__(
        self,
        query: str | Path,
        chunk_size: int = 1 << 20,
        max_record_bytes: int = DEFAULT_MAX_RECORD_BYTES,
        collect_stats: bool = False,
        limits=None,
    ) -> None:
        from repro.resilience.guards import effective_limits

        self.path = parse_path(query) if isinstance(query, str) else query
        self.chunk_size = chunk_size
        self.max_record_bytes = max_record_bytes
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, str):
            data = data.encode("utf-8")
        if len(data) > self.max_record_bytes:
            raise RecordTooLargeError(
                f"record of {len(data)} bytes exceeds the "
                f"{self.max_record_bytes}-byte single-record limit"
            )
        self.limits.check_record_size(len(data))
        root = parse_dom(data, chunk_size=self.chunk_size, limits=self.limits)
        matches = MatchList()
        query_tree(root, self.path, data, matches)
        return matches


