"""JPStream-like baseline: character-by-character streaming automaton.

Reproduces the paper's state-of-the-art *streaming* baseline (Section 2,
Figure 4): a pushdown automaton that combines parsing and query
evaluation in one pass, maintaining an explicit **syntax stack** (the
open containers) and **query stack** (the matching state per level) while
consuming the stream token by token — every character examined, no
bit-parallelism, no fast-forwarding (Table 3).

Structurally this is the iterative, dual-stack rendition of the same
query automaton JSONSki embeds in recursive descent; the paper's 13
transition rules collapse onto the [Key]/[Val]/[Ary-S]/[Ary-E]/[Com]
rules of Figure 5 applied in an explicit loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tokenizer import Tokenizer
from repro.engine.base import EngineBase
from repro.engine.names import decode_name as _decode_name
from repro.engine.output import MatchList
from repro.jsonpath.ast import Path
from repro.query.automaton import QueryAutomaton

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COLON = 0x3A


@dataclass
class _Frame:
    """One level of the dual stack: container kind + query state.

    ``state`` is the automaton state *of the container itself*;
    ``counter`` is the array element counter of rule [Com]; ``start`` and
    ``emit`` implement output of container-valued matches.
    """

    is_object: bool
    state: int
    counter: int
    start: int
    #: reserved match slot when the container itself is a match, else -1.
    slot: int


class JPStream(EngineBase):
    """Streaming dual-stack pushdown automaton engine."""

    def __init__(self, query: str | Path, collect_stats: bool = False, limits=None) -> None:
        from repro.engine.base import ensure_query_supported
        from repro.jsonpath.parser import parse_path
        from repro.resilience.guards import effective_limits

        path = parse_path(query) if isinstance(query, str) else query
        ensure_query_supported(path, engine="jpstream", filters=False)
        from repro.engine.prepared import cached_automaton

        self.automaton: QueryAutomaton = cached_automaton(path)
        # Uniform constructor surface: accepted everywhere, a no-op here
        # (this engine never fast-forwards, so ``last_stats`` stays None).
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.limits.check_record_size(len(data))
        return _run(self.automaton, data, self.limits)


def _run(qa: QueryAutomaton, data: bytes, limits=None) -> MatchList:
    tok = Tokenizer(data)
    matches = MatchList()
    stack: list[_Frame] = []  # the syntax stack + query stack, fused
    tok.skip_ws()
    # This engine never recurses (the dual stack is explicit), so the
    # depth guard bounds stack *memory* and the deadline is checked per
    # consumed value — both iterative, neither on a recursion path.
    max_depth = limits.max_depth if limits is not None else None
    deadline = limits.deadline if limits is not None else None
    values = 0

    # ``pending`` is the automaton state assigned to the upcoming value
    # (rule [Key] for attribute values, [Ary-S]/[Com] for elements).
    pending = qa.start_state

    while True:
        # ---- consume one value whose state is ``pending`` -------------
        if deadline is not None:
            values += 1
            if (values & 255) == 0:
                deadline.check(tok.pos)
        kind = tok.value_kind()
        accept = qa.status(pending).is_accept
        start = tok.pos
        closed_value = False
        if kind == "primitive":
            tok.read_primitive()
            if accept:
                matches.add(data, start, tok.pos)
            closed_value = True
        else:
            is_object = kind == "object"
            closer = _RBRACE if is_object else _RBRACKET
            tok.pos += 1
            tok.skip_ws()
            if tok.peek() == closer:  # empty container
                tok.pos += 1
                if accept:
                    matches.add(data, start, tok.pos)
                closed_value = True
            else:
                if max_depth is not None and len(stack) >= max_depth:
                    from repro.errors import DepthLimitError

                    raise DepthLimitError(
                        f"jpstream: nesting depth exceeds max_depth={max_depth}",
                        position=start,
                        depth=len(stack) + 1,
                    )
                slot = matches.reserve() if accept else -1
                stack.append(_Frame(is_object, pending, 0, start, slot))
                if is_object:
                    pending = _read_key(tok, qa, pending)
                else:
                    pending = qa.on_element(pending, 0)  # [Ary-S]
                continue

        # ---- unwind: delimiters and container closings ------------------
        while closed_value and stack:
            frame = stack[-1]
            closer = _RBRACE if frame.is_object else _RBRACKET
            if tok.consume_comma_or(closer):
                if frame.is_object:
                    pending = _read_key(tok, qa, frame.state)  # [Key]
                else:
                    frame.counter += 1  # [Com]
                    pending = qa.on_element(frame.state, frame.counter)
                closed_value = False
            else:
                stack.pop()  # [Val] / [Ary-E]: state restored from stack
                if frame.slot >= 0:
                    matches.fill(frame.slot, data, frame.start, tok.pos)
        if closed_value:
            return matches


def _read_key(tok: Tokenizer, qa: QueryAutomaton, container_state: int) -> int:
    """Consume ``"name" :`` and apply rule [Key]."""
    name = tok.read_string()
    tok.skip_ws()
    tok.expect(_COLON, "':'")
    tok.skip_ws()
    return qa.on_key(container_state, _decode_name(name))
