"""Reference point: CPython's built-in ``json`` + tree walk.

Not a paper baseline — it is the engine a Python user gets for free:
``json.loads`` (a C parser) followed by the oracle tree evaluator.  It
exists to keep the reproduction honest about language-level constants:
the paper compares C++ systems at equal implementation maturity, and
this engine shows where a C-accelerated DOM parse lands among our
pure-Python engines (see ``bench_extension_stdlib.py``).

Because the DOM has no byte spans, matches are re-serialized values
(``Match.text`` is canonical JSON, not an input slice) — ``values()``
is comparable across engines, raw text is not.
"""

from __future__ import annotations

import json

from repro.engine.base import EngineBase
from repro.engine.output import MatchList
from repro.errors import JsonSyntaxError
from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path
from repro.reference.evaluator import evaluate


class StdlibJson(EngineBase):
    """``json.loads`` + tree traversal (the everyday-Python yardstick)."""

    def __init__(self, query: str | Path, collect_stats: bool = False) -> None:
        self.path = parse_path(query) if isinstance(query, str) else query
        self.collect_stats = collect_stats

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, bytes):
            text = data.decode("utf-8", "surrogateescape")
        else:
            text = data
        try:
            value = json.loads(text)
        except ValueError as exc:
            raise JsonSyntaxError(f"stdlib json rejected the record: {exc}", 0) from None
        matches = MatchList()
        for hit in evaluate(self.path, value):
            encoded = json.dumps(hit, ensure_ascii=False).encode("utf-8")
            matches.add(encoded, 0, len(encoded))
        return matches
