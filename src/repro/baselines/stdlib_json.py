"""Reference point: CPython's built-in ``json`` + tree walk.

Not a paper baseline — it is the engine a Python user gets for free:
``json.loads`` (a C parser) followed by the oracle tree evaluator.  It
exists to keep the reproduction honest about language-level constants:
the paper compares C++ systems at equal implementation maturity, and
this engine shows where a C-accelerated DOM parse lands among our
pure-Python engines (see ``bench_extension_stdlib.py``).

Because the DOM has no byte spans, matches are re-serialized values
(``Match.text`` is canonical JSON, not an input slice) — ``values()``
is comparable across engines, raw text is not.
"""

from __future__ import annotations

import json

from repro.engine.base import EngineBase
from repro.engine.output import MatchList
from repro.errors import JsonSyntaxError
from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path
from repro.reference.evaluator import evaluate


def _enforce_depth(value, max_depth: int) -> None:
    """Depth-check a parsed DOM with an explicit stack (no recursion).

    ``json.loads`` is a C parser whose own recursion limit sits far above
    any useful ``max_depth``, so the guard must be applied after the fact
    to keep this engine's limit semantics uniform with the others.
    """
    from repro.errors import DepthLimitError

    stack = [(value, 1)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, dict):
            children = node.values()
        elif isinstance(node, list):
            children = node
        else:
            continue
        if depth > max_depth:
            raise DepthLimitError(
                f"stdlib: nesting depth exceeds max_depth={max_depth}",
                depth=depth,
            )
        for child in children:
            if isinstance(child, (dict, list)):
                stack.append((child, depth + 1))


class StdlibJson(EngineBase):
    """``json.loads`` + tree traversal (the everyday-Python yardstick)."""

    def __init__(self, query: str | Path, collect_stats: bool = False, limits=None) -> None:
        from repro.resilience.guards import effective_limits

        self.path = parse_path(query) if isinstance(query, str) else query
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)

    def run(self, data: bytes | str) -> MatchList:
        from repro.resilience.guards import depth_error_from_recursion

        if isinstance(data, bytes):
            self.limits.check_record_size(len(data))
            text = data.decode("utf-8", "surrogateescape")
        else:
            self.limits.check_record_size(len(data.encode("utf-8", "surrogateescape")))
            text = data
        try:
            # repro: ignore[RS010] -- the parse-everything baseline: its
            # measured contract is exactly the eager decode the engines avoid.
            value = json.loads(text)
        except ValueError as exc:
            raise JsonSyntaxError(f"stdlib json rejected the record: {exc}", 0) from None
        except RecursionError as exc:
            # json.loads recurses per nesting level in its C scanner.
            raise depth_error_from_recursion(exc, "stdlib") from None
        if self.limits.max_depth is not None:
            _enforce_depth(value, self.limits.max_depth)
        matches = MatchList()
        try:
            for hit in evaluate(self.path, value):
                encoded = json.dumps(hit, ensure_ascii=False).encode("utf-8")
                matches.add(encoded, 0, len(encoded))
        except RecursionError as exc:
            raise depth_error_from_recursion(exc, "stdlib") from None
        return matches
