"""Character-by-character JSON tokenizer.

This is the conventional detailed-parsing substrate the paper's baselines
share: every character is visited, every token recognized.  It backs the
RapidJSON-like DOM parser, the JPStream-like streaming automaton, and the
FF-off recursive-descent streamer — deliberately with honest per-character
loops (no vectorized shortcuts), since "character-by-character processing
and the lack of bitwise and SIMD parallelism" is exactly the baseline
behaviour the paper measures against (Section 5.2).
"""

from __future__ import annotations

from repro.errors import JsonSyntaxError, StreamExhaustedError

_WS = frozenset(b" \t\n\r")
_QUOTE, _BACKSLASH = 0x22, 0x5C
_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COMMA, _COLON = 0x2C, 0x3A
#: Bytes that terminate a number/literal token.
_PRIMITIVE_END = frozenset(b" \t\n\r,}]")


class Tokenizer:
    """Sequential token reader over one JSON record."""

    __slots__ = ("data", "pos", "size")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self.size = len(data)

    # -- low level -------------------------------------------------------

    def skip_ws(self) -> None:
        data, pos, size = self.data, self.pos, self.size
        while pos < size and data[pos] in _WS:
            pos += 1
        self.pos = pos

    def peek(self) -> int:
        """Current byte, or -1 at end of input."""
        return self.data[self.pos] if self.pos < self.size else -1

    def expect(self, byte: int, what: str) -> None:
        if self.peek() != byte:
            raise JsonSyntaxError(f"expected {what}", self.pos)
        self.pos += 1

    # -- tokens ------------------------------------------------------------

    def read_string(self) -> bytes:
        """Consume a string token; return its raw inner text (undecoded)."""
        self.expect(_QUOTE, "'\"'")
        data, pos, size = self.data, self.pos, self.size
        start = pos
        while pos < size:
            byte = data[pos]
            if byte == _BACKSLASH:
                pos += 2
                continue
            if byte == _QUOTE:
                self.pos = pos + 1
                return data[start:pos]
            pos += 1
        raise StreamExhaustedError("unterminated string", start)

    def read_primitive(self) -> bytes:
        """Consume a number / true / false / null or string primitive."""
        if self.peek() == _QUOTE:
            start = self.pos
            self.read_string()
            return self.data[start : self.pos]
        data, pos, size = self.data, self.pos, self.size
        start = pos
        while pos < size and data[pos] not in _PRIMITIVE_END:
            pos += 1
        if pos == start:
            raise JsonSyntaxError("expected a value", pos)
        self.pos = pos
        return data[start:pos]

    def value_kind(self) -> str:
        """Classify the value starting at the cursor: 'object' / 'array' /
        'primitive'."""
        byte = self.peek()
        if byte == _LBRACE:
            return "object"
        if byte == _LBRACKET:
            return "array"
        if byte == -1:
            raise StreamExhaustedError("unexpected end of input", self.pos)
        return "primitive"

    # -- structure helpers ---------------------------------------------------

    def at_object_end(self) -> bool:
        return self.peek() == _RBRACE

    def at_array_end(self) -> bool:
        return self.peek() == _RBRACKET

    def consume_comma_or(self, closer: int) -> bool:
        """After a member: consume ',' (return True) or ``closer`` (False)."""
        self.skip_ws()
        byte = self.peek()
        if byte == _COMMA:
            self.pos += 1
            self.skip_ws()
            return True
        if byte == closer:
            self.pos += 1
            return False
        raise JsonSyntaxError(f"expected ',' or {chr(closer)!r}", self.pos)
