"""Baseline JSON processors the paper compares against (Tables 2-3).

Each baseline reproduces the *processing strategy* of its namesake:

- :mod:`repro.baselines.jpstream` — character-by-character streaming with
  a dual-stack pushdown automaton (JPStream).
- :mod:`repro.baselines.rapidjson_like` — character-by-character DOM
  parse, then tree traversal (RapidJSON).
- :mod:`repro.baselines.simdjson_like` — bit-parallel structural indexing
  followed by DOM construction, then tree traversal (simdjson).
- :mod:`repro.baselines.pison_like` — bit-parallel leveled colon/comma
  bitmaps, then index-guided query evaluation (Pison).

All four implement the common :class:`Engine` protocol (``run`` /
``run_records`` returning a :class:`repro.engine.output.MatchList`), so
the benchmark harness treats every method uniformly.
"""

from repro.baselines.jpstream import JPStream
from repro.baselines.pison_like import PisonLike
from repro.baselines.rapidjson_like import RapidJsonLike
from repro.baselines.simdjson_like import SimdJsonLike
from repro.baselines.stdlib_json import StdlibJson

__all__ = ["JPStream", "PisonLike", "RapidJsonLike", "SimdJsonLike", "StdlibJson"]
