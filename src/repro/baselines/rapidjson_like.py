"""RapidJSON-like baseline: conventional DOM parse + tree query.

The paper's representative of the classic preprocessing scheme *without*
any bit-parallelism (Table 3): a character-by-character recursive-descent
parser builds the whole parse tree up front, then the query traverses it.
Both the upfront delay and the tree's memory footprint are properties the
evaluation measures (Figures 10, 13, 14).
"""

from __future__ import annotations


from repro.baselines.tokenizer import Tokenizer
from repro.engine.base import EngineBase
from repro.engine.names import decode_name as _decode_name
from repro.baselines.tree import AnyNode, ArrayNode, ObjectNode, PrimitiveNode, query_tree
from repro.engine.output import MatchList
from repro.jsonpath.ast import Path
from repro.jsonpath.parser import parse_path

_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COLON = 0x3A


def parse_dom(data: bytes, limits=None) -> AnyNode:
    """Parse a record into a span-carrying DOM, character by character."""
    from repro.resilience.guards import depth_error_from_recursion

    tok = Tokenizer(data)
    tok.skip_ws()
    try:
        return _parse_value(tok, limits, 1)
    except RecursionError as exc:
        raise depth_error_from_recursion(exc, "rapidjson") from None


def _parse_value(tok: Tokenizer, limits=None, depth: int = 1) -> AnyNode:
    kind = tok.value_kind()
    if kind == "object":
        return _parse_object(tok, limits, depth)
    if kind == "array":
        return _parse_array(tok, limits, depth)
    start = tok.pos
    tok.read_primitive()
    return PrimitiveNode(start, tok.pos)


def _parse_object(tok: Tokenizer, limits=None, depth: int = 1) -> ObjectNode:
    start = tok.pos
    if limits is not None:
        limits.enter(depth, start)
    tok.expect(_LBRACE, "'{'")
    tok.skip_ws()
    members: list[tuple[str, AnyNode]] = []
    if tok.at_object_end():
        tok.pos += 1
        return ObjectNode(start, tok.pos, ())
    while True:
        name = _decode_name(tok.read_string())
        tok.skip_ws()
        tok.expect(_COLON, "':'")
        tok.skip_ws()
        members.append((name, _parse_value(tok, limits, depth + 1)))
        if not tok.consume_comma_or(_RBRACE):
            return ObjectNode(start, tok.pos, tuple(members))


def _parse_array(tok: Tokenizer, limits=None, depth: int = 1) -> ArrayNode:
    start = tok.pos
    if limits is not None:
        limits.enter(depth, start)
    tok.expect(_LBRACKET, "'['")
    tok.skip_ws()
    elements: list[AnyNode] = []
    if tok.at_array_end():
        tok.pos += 1
        return ArrayNode(start, tok.pos, ())
    while True:
        elements.append(_parse_value(tok, limits, depth + 1))
        if not tok.consume_comma_or(_RBRACKET):
            return ArrayNode(start, tok.pos, tuple(elements))


class RapidJsonLike(EngineBase):
    """Preprocessing-scheme engine: full DOM parse, then tree traversal."""

    def __init__(self, query: str | Path, collect_stats: bool = False, limits=None) -> None:
        from repro.resilience.guards import effective_limits

        self.path = parse_path(query) if isinstance(query, str) else query
        self.collect_stats = collect_stats
        self.limits = effective_limits(limits)

    def run(self, data: bytes | str) -> MatchList:
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.limits.check_record_size(len(data))
        root = parse_dom(data, self.limits)  # upfront parse (the preprocessing delay)
        matches = MatchList()
        query_tree(root, self.path, data, matches)
        return matches
