"""Position-based structural index (the vector-mode fast path).

:class:`repro.bits.index.ChunkIndex` materializes mirrored word bitmaps —
what the paper's word-at-a-time algorithms consume.  The vectorized
scanner, however, only ever needs each class's *sorted positions*, so
this module builds those directly from one classification pass:

1. one table lookup marks every metacharacter, quote and backslash;
2. backslash runs are reduced to (start, end, length) triples, giving
   each quote's escaped/unescaped status (odd-run rule, carried across
   chunks exactly like :func:`repro.bits.words.escaped_positions`);
3. the in-string parity of every structural character is a single
   ``searchsorted`` against the unescaped-quote positions;
4. per-class position lists are then lazy boolean selections.

The result is semantically identical to filtering the word bitmaps (the
property-based tests assert equality against the word path) but costs a
dozen short array operations per chunk — which is what makes the
streaming engine competitive on kilobyte-sized records, where fixed
per-record indexing cost dominates (paper Section 5.2, Figure 11).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

import numpy as np

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.strings import INITIAL_CARRY, StringCarry

_INTERESTING = np.zeros(256, dtype=bool)
for _c in b'{}[]:,"\\':
    _INTERESTING[_c] = True

_QUOTE, _BACKSLASH = 0x22, 0x5C

#: Byte values selected by each character class.
_CLASS_BYTES: dict[CharClass, tuple[int, ...]] = {
    cls: tuple(cls.chars) for cls in CharClass
}


@dataclass
class PositionChunk:
    """Per-chunk sorted positions of every character class.

    ``keep``/``keep_vals`` hold the string-filtered structural positions
    (absolute) and their byte values; ``quotes`` holds the unescaped
    quotes.  Class lists are materialized lazily — a typical query
    touches only a handful of classes.
    """

    start: int
    length: int
    keep: np.ndarray
    keep_vals: np.ndarray
    quotes: np.ndarray
    carry_in: StringCarry
    carry_out: StringCarry
    _lists: dict[CharClass, "array[int]"] = field(default_factory=dict, repr=False)

    @property
    def end(self) -> int:
        return self.start + self.length

    def positions(self, cls: CharClass) -> np.ndarray:
        if cls is CharClass.ANY:
            return self.keep
        if cls is CharClass.QUOTE:
            return self.quotes
        bytes_ = _CLASS_BYTES[cls]
        if len(bytes_) == 1:
            return self.keep[self.keep_vals == bytes_[0]]
        mask = self.keep_vals == bytes_[0]
        for b in bytes_[1:]:
            mask |= self.keep_vals == b
        return self.keep[mask]

    def positions_list(self, cls: CharClass) -> "array[int]":
        """Positions as a compact ``array('q')``.

        ``bisect`` over an ``array`` is within ~15% of a plain list while
        taking 8 bytes per position instead of ~36 (boxed ints), which
        keeps the streaming engines' bounded-memory story honest
        (Figure 13): the per-chunk index is a small multiple of the chunk.
        """
        cached = self._lists.get(cls)
        if cached is None:
            cached = array("q")
            cached.frombytes(np.ascontiguousarray(self.positions(cls)).tobytes())
            self._lists[cls] = cached
        return cached


def build_position_chunk(chunk: bytes, start: int, carry: StringCarry = INITIAL_CARRY) -> PositionChunk:
    """Classify one chunk into string-filtered position arrays."""
    buf = np.frombuffer(chunk, dtype=np.uint8)
    idx = np.flatnonzero(_INTERESTING[buf])
    vals = buf[idx]

    quote_mask = vals == _QUOTE
    q = idx[quote_mask]
    b = idx[vals == _BACKSLASH]
    pending_in = bool(carry.escape)

    # --- backslash runs -> escaped-quote detection --------------------
    if b.size:
        new_run = np.empty(b.size, dtype=bool)
        new_run[0] = True
        np.not_equal(b[1:], b[:-1] + 1, out=new_run[1:])
        run_starts = b[new_run]
        end_mask = np.empty(b.size, dtype=bool)
        end_mask[-1] = True
        end_mask[:-1] = new_run[1:]
        run_ends = b[end_mask]
        run_lens = run_ends - run_starts + 1
    else:
        run_starts = run_ends = run_lens = np.empty(0, dtype=np.int64)

    if q.size:
        ri = np.searchsorted(run_ends, q - 1)
        ri_c = np.minimum(ri, max(len(run_ends) - 1, 0))
        if run_ends.size:
            has_run = run_ends[ri_c] == q - 1
            eff = run_lens[ri_c] - ((run_starts[ri_c] == 0) & pending_in)
            escaped = has_run & (eff % 2 == 1)
        else:
            escaped = np.zeros(q.size, dtype=bool)
        if pending_in:
            escaped |= q == 0  # a carry-escape consumes the first char
        uq = q[~escaped]
    else:
        uq = q

    # --- escape carry out ----------------------------------------------
    n = len(chunk)
    pending_out = False
    if n and run_ends.size and run_ends[-1] == n - 1:
        eff_len = int(run_lens[-1]) - (1 if (run_starts[-1] == 0 and pending_in) else 0)
        pending_out = bool(eff_len % 2 == 1)
    elif n == 0:
        pending_out = pending_in

    # --- in-string filtering of structural characters -------------------
    s_idx = idx[~quote_mask & (vals != _BACKSLASH)]
    s_vals = vals[~quote_mask & (vals != _BACKSLASH)]
    if s_idx.size:
        inside = (np.searchsorted(uq, s_idx) + carry.in_string) % 2 == 1
        keep = s_idx[~inside]
        keep_vals = s_vals[~inside]
    else:
        keep, keep_vals = s_idx, s_vals
    in_string_out = int((len(uq) + carry.in_string) % 2)

    return PositionChunk(
        start=start,
        length=n,
        keep=keep.astype(np.int64) + start,
        keep_vals=keep_vals,
        quotes=uq.astype(np.int64) + start,
        carry_in=carry,
        carry_out=StringCarry(int(pending_out), in_string_out),
    )


class PositionBufferIndex(BufferIndex):
    """Forward-chained chunked index producing :class:`PositionChunk`.

    Shares the chunking, carry-chaining, and LRU machinery of
    :class:`BufferIndex`; only the per-chunk build differs.
    """

    def _build_chunk(self, chunk: bytes, start: int, carry: StringCarry) -> PositionChunk:
        return build_position_chunk(chunk, start, carry)
