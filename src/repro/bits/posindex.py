"""Position-based structural index (the vector-mode fast path).

:class:`repro.bits.index.ChunkIndex` materializes mirrored word bitmaps —
what the paper's word-at-a-time algorithms consume.  The vectorized
scanner, however, only ever needs each class's *sorted positions*, so
this module builds those directly from one classification pass:

1. one table lookup marks every metacharacter, quote and backslash;
2. backslash runs are reduced to (start, end, length) triples, giving
   each quote's escaped/unescaped status (odd-run rule, carried across
   chunks exactly like :func:`repro.bits.words.escaped_positions`);
3. the in-string parity of every structural character is a single
   ``searchsorted`` against the unescaped-quote positions;
4. per-class position lists are then lazy boolean selections.

The result is semantically identical to filtering the word bitmaps (the
property-based tests assert equality against the word path) but costs a
dozen short array operations per chunk — which is what makes the
streaming engine competitive on kilobyte-sized records, where fixed
per-record indexing cost dominates (paper Section 5.2, Figure 11).

Beyond the flat per-class arrays, each chunk can materialize
:class:`DepthTables` — the stage-1 artifacts of the two-stage hot path
(see ``docs/two-stage.md``):

- per pair class (``{}``/``[]``), closer positions grouped by the pair
  depth *after* the closer, which turns the counting-based pairing of
  Algorithm 4 / Theorem 4.3 into two binary searches (the first closer at
  depth ``depth_before(pos) - num_open`` is exactly the closer the
  reference interval walk returns, on any byte stream);
- Pison-style leveled colon/comma position maps keyed by combined
  structural depth, which turn the paper's G5 ``goOverElems(k)`` into a
  single k-th-comma-at-depth lookup.

Depth values are absolute (carried across chunks like the string mask),
so a lookup that misses one chunk continues into the next with the same
target.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.bits.classify import CharClass
from repro.bits.index import DEFAULT_CHUNK_SIZE, BufferIndex
from repro.bits.strings import INITIAL_CARRY, StringCarry

_INTERESTING = np.zeros(256, dtype=bool)
for _c in b'{}[]:,"\\':
    _INTERESTING[_c] = True

_QUOTE, _BACKSLASH = 0x22, 0x5C
_LBRACE, _RBRACE = 0x7B, 0x7D
_LBRACKET, _RBRACKET = 0x5B, 0x5D
_COLON, _COMMA = 0x3A, 0x2C

#: Byte values selected by each character class.
_CLASS_BYTES: dict[CharClass, tuple[int, ...]] = {
    cls: tuple(cls.chars) for cls in CharClass
}

#: ``+1`` for openers, ``-1`` for closers, ``0`` for ``:``/``,``/quotes.
_DELTA = np.zeros(256, dtype=np.int64)
_DELTA[_LBRACE] = _DELTA[_LBRACKET] = 1
_DELTA[_RBRACE] = _DELTA[_RBRACKET] = -1


class DepthCarry(NamedTuple):
    """Structural depth state at a chunk boundary.

    ``depth`` is the combined open-container count (braces + brackets);
    ``brace``/``bracket`` are the per-pair-class counts Algorithm 4's
    counting argument runs on.  Three small ints per chunk, chained
    forward exactly like :class:`~repro.bits.strings.StringCarry` — and
    serialized next to it by checkpoint suspension.
    """

    depth: int = 0
    brace: int = 0
    bracket: int = 0


DEPTH_ZERO = DepthCarry(0, 0, 0)


def _group_by_depth(pos: np.ndarray, depth: np.ndarray) -> dict[int, "array[int]"]:
    """``{depth: sorted positions at that depth}`` from parallel arrays.

    A stable argsort keeps each depth group in ascending position order;
    groups are stored as ``array('q')`` so lookups are plain ``bisect``
    calls (no numpy scalar boxing on the hot path).
    """
    groups: dict[int, "array[int]"] = {}
    if not len(pos):
        return groups
    order = np.argsort(depth, kind="stable")
    sorted_depth = depth[order]
    sorted_pos = pos[order]
    bounds = np.flatnonzero(sorted_depth[1:] != sorted_depth[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(sorted_depth)]))
    for s, e in zip(starts, ends):
        arr: "array[int]" = array("q")
        arr.frombytes(np.ascontiguousarray(sorted_pos[s:e]).tobytes())
        groups[int(sorted_depth[s])] = arr
    return groups


class PairTable:
    """One pair class's (``{}`` or ``[]``) depth view of a chunk.

    ``close_at_depth(d, pos)`` returns the first closer at or after
    ``pos`` whose pair depth *after* processing it equals ``d`` — which,
    because pair depth moves by ±1 per event, is exactly the closer that
    balances ``depth_before(pos) - d`` outstanding opens (Theorem 4.3).
    """

    __slots__ = ("depth_in", "events", "after", "closes_by_depth", "opens", "opens_after")

    def __init__(self, pos: np.ndarray, vals: np.ndarray, open_byte: int, close_byte: int, depth_in: int) -> None:
        mask = (vals == open_byte) | (vals == close_byte)
        events = pos[mask]
        ev_vals = vals[mask]
        is_open = ev_vals == open_byte
        after = depth_in + np.cumsum(np.where(is_open, 1, -1))
        self.depth_in = depth_in
        self.events: "array[int]" = array("q")
        self.events.frombytes(np.ascontiguousarray(events).tobytes())
        self.after: "array[int]" = array("q")
        self.after.frombytes(np.ascontiguousarray(after).tobytes())
        self.closes_by_depth = _group_by_depth(events[~is_open], after[~is_open])
        #: Open positions and their after-depths (consumed by the paired
        #: interval table, :func:`repro.bits.intervals.build_interval_table`).
        self.opens = events[is_open]
        self.opens_after = after[is_open]

    def depth_before(self, pos: int) -> int:
        """Pair depth just before absolute position ``pos``."""
        j = bisect_left(self.events, pos)
        return self.depth_in if j == 0 else self.after[j - 1]

    def close_at_depth(self, depth: int, pos: int) -> int:
        """First closer at or after ``pos`` with after-depth ``depth``
        (``-1`` when this chunk has none)."""
        arr = self.closes_by_depth.get(depth)
        if arr is None:
            return -1
        i = bisect_left(arr, pos)
        return arr[i] if i < len(arr) else -1

    def first_close_at_depth(self, depth: int) -> int:
        """First closer in the chunk with after-depth ``depth`` (or -1)."""
        arr = self.closes_by_depth.get(depth)
        return arr[0] if arr else -1


class DepthTables:
    """Stage-1 depth artifacts of one chunk.

    Combined-depth leveled maps for ``:``/``,`` and the ``{``/``[``
    openers, plus one :class:`PairTable` per brace/bracket pair.  All
    depths are absolute (seeded from the chunk's :class:`DepthCarry`),
    so queries compose across chunk boundaries without rebasing.

    Only the combined event/depth arrays are built up front; each
    component table materializes on first access, so a query that only
    pairs braces never pays for comma maps (and vice versa).
    """

    __slots__ = (
        "depth_in", "events", "after", "_pos", "_vals", "_after_np",
        "_brace", "_bracket", "_commas", "_colons", "_obj_opens", "_ary_opens",
        "_closes",
    )

    def __init__(self, pos: np.ndarray, vals: np.ndarray, depth_in: DepthCarry) -> None:
        after = depth_in.depth + np.cumsum(_DELTA[vals])
        self.depth_in = depth_in
        self.events: "array[int]" = array("q")
        self.events.frombytes(np.ascontiguousarray(pos).tobytes())
        self.after: "array[int]" = array("q")
        self.after.frombytes(np.ascontiguousarray(after).tobytes())
        self._pos = pos
        self._vals = vals
        self._after_np = after
        self._brace: PairTable | None = None
        self._bracket: PairTable | None = None
        self._commas: dict[int, "array[int]"] | None = None
        self._colons: dict[int, "array[int]"] | None = None
        self._obj_opens: dict[int, "array[int]"] | None = None
        self._ary_opens: dict[int, "array[int]"] | None = None
        self._closes: dict[int, "array[int]"] | None = None

    @property
    def brace(self) -> PairTable:
        table = self._brace
        if table is None:
            table = self._brace = PairTable(self._pos, self._vals, _LBRACE, _RBRACE, self.depth_in.brace)
        return table

    @property
    def bracket(self) -> PairTable:
        table = self._bracket
        if table is None:
            table = self._bracket = PairTable(self._pos, self._vals, _LBRACKET, _RBRACKET, self.depth_in.bracket)
        return table

    @property
    def commas_by_depth(self) -> dict[int, "array[int]"]:
        groups = self._commas
        if groups is None:
            mask = self._vals == _COMMA
            groups = self._commas = _group_by_depth(self._pos[mask], self._after_np[mask])
        return groups

    @property
    def colons_by_depth(self) -> dict[int, "array[int]"]:
        groups = self._colons
        if groups is None:
            mask = self._vals == _COLON
            groups = self._colons = _group_by_depth(self._pos[mask], self._after_np[mask])
        return groups

    def opens_by_depth(self, open_byte: int) -> dict[int, "array[int]"]:
        """``{``/``[`` positions grouped by the combined depth *after* the
        opener — i.e. the depth of the container it starts.  A container
        value at interior depth ``d`` opens at group key ``d + 1``, which
        is what makes the G1 sweeps single lookups."""
        if open_byte == _LBRACE:
            groups = self._obj_opens
            if groups is None:
                mask = self._vals == _LBRACE
                groups = self._obj_opens = _group_by_depth(self._pos[mask], self._after_np[mask])
            return groups
        groups = self._ary_opens
        if groups is None:
            mask = self._vals == _LBRACKET
            groups = self._ary_opens = _group_by_depth(self._pos[mask], self._after_np[mask])
        return groups

    @property
    def closes_by_depth(self) -> dict[int, "array[int]"]:
        """``}``/``]`` positions (merged) grouped by the combined depth
        *after* the closer — i.e. the depth outside the container it
        ends.  The end of a container whose interior sits at depth ``d``
        is the first close at group key ``d - 1``, making "skip to the
        enclosing end" a single lookup on well-formed input."""
        groups = self._closes
        if groups is None:
            mask = _DELTA[self._vals] == -1
            groups = self._closes = _group_by_depth(self._pos[mask], self._after_np[mask])
        return groups

    def depth_before(self, pos: int) -> int:
        """Combined structural depth just before absolute position ``pos``."""
        j = bisect_left(self.events, pos)
        return self.depth_in.depth if j == 0 else self.after[j - 1]


@dataclass
class PositionChunk:
    """Per-chunk sorted positions of every character class.

    ``keep``/``keep_vals`` hold the string-filtered structural positions
    (absolute) and their byte values; ``quotes`` holds the unescaped
    quotes.  Class lists are materialized lazily — a typical query
    touches only a handful of classes.
    """

    start: int
    length: int
    keep: np.ndarray
    keep_vals: np.ndarray
    quotes: np.ndarray
    carry_in: StringCarry
    carry_out: StringCarry
    depth_in: DepthCarry = DEPTH_ZERO
    depth_out: DepthCarry = DEPTH_ZERO
    _lists: dict[CharClass, "array[int]"] = field(default_factory=dict, repr=False)
    _arrays: dict[CharClass, np.ndarray] = field(default_factory=dict, repr=False)
    _depth: DepthTables | None = field(default=None, repr=False)

    @property
    def end(self) -> int:
        return self.start + self.length

    def positions(self, cls: CharClass) -> np.ndarray:
        if cls is CharClass.ANY:
            return self.keep
        if cls is CharClass.QUOTE:
            return self.quotes
        cached = self._arrays.get(cls)
        if cached is not None:
            return cached
        bytes_ = _CLASS_BYTES[cls]
        if len(bytes_) == 1:
            selected = self.keep[self.keep_vals == bytes_[0]]
        else:
            mask = self.keep_vals == bytes_[0]
            for b in bytes_[1:]:
                mask |= self.keep_vals == b
            selected = self.keep[mask]
        self._arrays[cls] = selected
        return selected

    def depth_tables(self) -> DepthTables:
        """This chunk's :class:`DepthTables`, built once on first use."""
        tables = self._depth
        if tables is None:
            tables = self._depth = DepthTables(self.keep, self.keep_vals, self.depth_in)
        return tables

    def positions_list(self, cls: CharClass) -> "array[int]":
        """Positions as a compact ``array('q')``.

        ``bisect`` over an ``array`` is within ~15% of a plain list while
        taking 8 bytes per position instead of ~36 (boxed ints), which
        keeps the streaming engines' bounded-memory story honest
        (Figure 13): the per-chunk index is a small multiple of the chunk.
        """
        cached = self._lists.get(cls)
        if cached is None:
            cached = array("q")
            cached.frombytes(np.ascontiguousarray(self.positions(cls)).tobytes())
            self._lists[cls] = cached
        return cached


def build_position_chunk(
    chunk: bytes,
    start: int,
    carry: StringCarry = INITIAL_CARRY,
    depth_in: DepthCarry = DEPTH_ZERO,
) -> PositionChunk:
    """Classify one chunk into string-filtered position arrays."""
    buf = np.frombuffer(chunk, dtype=np.uint8)
    idx = np.flatnonzero(_INTERESTING[buf])
    vals = buf[idx]

    quote_mask = vals == _QUOTE
    q = idx[quote_mask]
    b = idx[vals == _BACKSLASH]
    pending_in = bool(carry.escape)

    # --- backslash runs -> escaped-quote detection --------------------
    if b.size:
        new_run = np.empty(b.size, dtype=bool)
        new_run[0] = True
        np.not_equal(b[1:], b[:-1] + 1, out=new_run[1:])
        run_starts = b[new_run]
        end_mask = np.empty(b.size, dtype=bool)
        end_mask[-1] = True
        end_mask[:-1] = new_run[1:]
        run_ends = b[end_mask]
        run_lens = run_ends - run_starts + 1
    else:
        run_starts = run_ends = run_lens = np.empty(0, dtype=np.int64)

    if q.size:
        ri = np.searchsorted(run_ends, q - 1)
        ri_c = np.minimum(ri, max(len(run_ends) - 1, 0))
        if run_ends.size:
            has_run = run_ends[ri_c] == q - 1
            eff = run_lens[ri_c] - ((run_starts[ri_c] == 0) & pending_in)
            escaped = has_run & (eff % 2 == 1)
        else:
            escaped = np.zeros(q.size, dtype=bool)
        if pending_in:
            escaped |= q == 0  # a carry-escape consumes the first char
        uq = q[~escaped]
    else:
        uq = q

    # --- escape carry out ----------------------------------------------
    n = len(chunk)
    pending_out = False
    if n and run_ends.size and run_ends[-1] == n - 1:
        eff_len = int(run_lens[-1]) - (1 if (run_starts[-1] == 0 and pending_in) else 0)
        pending_out = bool(eff_len % 2 == 1)
    elif n == 0:
        pending_out = pending_in

    # --- in-string filtering of structural characters -------------------
    s_idx = idx[~quote_mask & (vals != _BACKSLASH)]
    s_vals = vals[~quote_mask & (vals != _BACKSLASH)]
    if s_idx.size:
        inside = (np.searchsorted(uq, s_idx) + carry.in_string) % 2 == 1
        keep = s_idx[~inside]
        keep_vals = s_vals[~inside]
    else:
        keep, keep_vals = s_idx, s_vals
    in_string_out = int((len(uq) + carry.in_string) % 2)

    net_brace = int(np.count_nonzero(keep_vals == _LBRACE)) - int(np.count_nonzero(keep_vals == _RBRACE))
    net_bracket = int(np.count_nonzero(keep_vals == _LBRACKET)) - int(np.count_nonzero(keep_vals == _RBRACKET))
    depth_out = DepthCarry(
        depth_in.depth + net_brace + net_bracket,
        depth_in.brace + net_brace,
        depth_in.bracket + net_bracket,
    )

    return PositionChunk(
        start=start,
        length=n,
        keep=keep.astype(np.int64) + start,
        keep_vals=keep_vals,
        quotes=uq.astype(np.int64) + start,
        carry_in=carry,
        carry_out=StringCarry(int(pending_out), in_string_out),
        depth_in=depth_in,
        depth_out=depth_out,
    )


class PositionBufferIndex(BufferIndex):
    """Forward-chained chunked index producing :class:`PositionChunk`.

    Shares the chunking, carry-chaining, and LRU machinery of
    :class:`BufferIndex`; only the per-chunk build differs.  In addition
    to the string-mask carries it chains a :class:`DepthCarry` per chunk,
    so every chunk's :class:`DepthTables` speak absolute depths and any
    evicted chunk can be rebuilt — depth state included — from its own
    bytes.
    """

    def __init__(
        self,
        data: bytes,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int | None = 4,
    ) -> None:
        super().__init__(data, chunk_size=chunk_size, cache_chunks=cache_chunks)
        self._depth_carries: list[DepthCarry] = []

    def _build_chunk(self, chunk: bytes, start: int, carry: StringCarry) -> PositionChunk:
        chunk_id = start // self.chunk_size
        depth_in = DEPTH_ZERO if chunk_id == 0 else self._depth_carries[chunk_id - 1]
        built = build_position_chunk(chunk, start, carry, depth_in=depth_in)
        if chunk_id == len(self._depth_carries):
            self._depth_carries.append(built.depth_out)
        return built

    def carries_snapshot(self) -> list[tuple[int, int, int, int, int]]:
        """Per-chunk carries as ``(escape, in_string, depth, brace,
        bracket)`` 5-tuples — the string carry plus the depth carry the
        vector hot path needs (the "array cursors" of the two-stage
        suspension contract)."""
        return [
            (string.escape, string.in_string, depth.depth, depth.brace, depth.bracket)
            for string, depth in zip(self._carries, self._depth_carries)
        ]

    def seed_carries(self, carries) -> None:
        carries = list(carries)
        if any(len(item) != 5 for item in carries):
            raise ValueError(
                "position-index carries must be (escape, in_string, depth, brace, bracket) 5-tuples"
            )
        super().seed_carries([(escape, in_string) for escape, in_string, _, _, _ in carries])
        self._depth_carries = [
            DepthCarry(int(depth), int(brace), int(bracket))
            for _, _, depth, brace, bracket in carries
        ]
