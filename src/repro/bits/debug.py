"""Human-readable views of the bit-parallel layer (teaching/debugging).

Renders the structures of Figures 7-8 against the raw text: per-class
structural bitmaps, the in-string mask, structural intervals, and
fast-forward traces.  Used by ``examples/fastforward_anatomy.py`` and
handy in a REPL::

    >>> from repro.bits.debug import render_classes
    >>> print(render_classes(b'{"a{": [1]}'))   # doctest: +SKIP
"""

from __future__ import annotations

from repro.bits.classify import STRUCTURAL_CLASSES, CharClass
from repro.bits.index import build_chunk_index
from repro.bits.strings import naive_string_mask


def _printable(data: bytes) -> str:
    return "".join(chr(b) if 32 <= b < 127 else "." for b in data)


def ruler(data: bytes) -> str:
    """A 0-9 repeating position ruler aligned under the text."""
    return "".join(str(i % 10) for i in range(len(data)))


def render_bitmap(data: bytes, positions: list[int], mark: str = "^") -> str:
    """One marker line: ``mark`` under each listed position."""
    line = [" "] * len(data)
    for pos in positions:
        if 0 <= pos < len(data):
            line[pos] = mark
    return "".join(line)


def render_classes(data: bytes, classes: tuple[CharClass, ...] = STRUCTURAL_CLASSES) -> str:
    """Text + ruler + one row per structural class (string-filtered).

    The rendering makes pseudo-metacharacter removal visible: a ``{``
    inside a string gets no marker on the LBRACE row.
    """
    chunk = build_chunk_index(data, 0)
    lines = [_printable(data), ruler(data)]
    for cls in classes:
        positions = list(chunk.positions_list(cls))
        lines.append(render_bitmap(data, positions) + f"   {cls.name}")
    return "\n".join(lines)


def render_string_mask(data: bytes) -> str:
    """Text + the in-string mask (``#`` = inside a string literal)."""
    mask = naive_string_mask(data).in_string
    marks = "".join("#" if mask >> i & 1 else " " for i in range(len(data)))
    return "\n".join([_printable(data), ruler(data), marks + "   in-string"])


def render_interval(data: bytes, start: int, end: int | None, label: str = "interval") -> str:
    """Text + a ``[===)`` span for one structural interval."""
    stop = len(data) if end is None else end
    line = [" "] * len(data)
    for i in range(start, min(stop, len(data))):
        line[i] = "="
    if start < len(data):
        line[start] = "["
    if end is not None and end < len(data):
        line[end] = ")"
    return "\n".join([_printable(data), "".join(line) + f"   {label}"])


def render_trace(data: bytes, events: list[tuple[str, int, int]]) -> str:
    """Text + one row per fast-forward event from ``JsonSki.trace_run``.

    Each row shows the skipped span filled with the group name's digit
    (G2 → ``2``), giving an at-a-glance picture of how much of the
    stream was never examined.
    """
    lines = [_printable(data), ruler(data)]
    for group, start, end in events:
        digit = group[-1]
        line = [" "] * len(data)
        for i in range(start, min(end, len(data))):
            line[i] = digit
        lines.append("".join(line) + f"   {group} [{start}:{end})")
    return "\n".join(lines)


def coverage_summary(data: bytes, events: list[tuple[str, int, int]]) -> str:
    """One line: how much of the input the events fast-forwarded."""
    skipped = sum(end - start for _, start, end in events)
    return f"fast-forwarded {skipped}/{len(data)} bytes ({skipped / max(len(data), 1):.1%})"
