"""String masks: removing pseudo-metacharacters inside JSON strings.

Algorithm 3's ``buildMetacharBitmap`` ANDs every raw metacharacter bitmap
with a *string bitmap* so that, e.g., the ``{`` in ``"a{b"`` is never
mistaken for structure.  The construction (cited by the paper from Mison,
Pison and simdjson) has two bit-parallel stages:

1. **Escaped characters** — characters preceded by an odd-length run of
   backslashes (:func:`repro.bits.words.escaped_positions`).  An escaped
   quote does not open or close a string.
2. **In-string mask** — the prefix XOR of the unescaped-quote bitmap: a
   position is inside a string iff the number of unescaped quotes at or
   before it is odd (:func:`repro.bits.words.prefix_xor`).

Both stages carry state across chunk boundaries (a backslash run or an
open string may straddle chunks), which is what makes the index streamable.

The resulting ``in_string`` mask covers the *opening* quote and the string
body but not the closing quote; since quotes are not structural
metacharacters, filtering with ``~in_string`` removes exactly the
pseudo-metacharacters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.words import escaped_positions, prefix_xor


@dataclass(frozen=True)
class StringCarry:
    """Cross-chunk state of the string-mask computation.

    Attributes
    ----------
    escape:
        1 if the previous chunk ended with an odd-length backslash run
        (its escaping effect spills onto this chunk's first character).
    in_string:
        1 if the previous chunk ended inside a string literal.
    """

    escape: int = 0
    in_string: int = 0


#: State at the very start of a stream: outside any string, nothing escaped.
INITIAL_CARRY = StringCarry(0, 0)


@dataclass(frozen=True)
class StringMaskResult:
    """Chunk-wide string-mask bitmaps, as Python integers (bit 0 = char 0)."""

    in_string: int
    unescaped_quotes: int
    escaped: int
    carry_out: StringCarry


def compute_string_mask(
    quotes: int,
    backslashes: int,
    bits: int,
    carry: StringCarry = INITIAL_CARRY,
    length: int | None = None,
) -> StringMaskResult:
    """Compute the in-string mask for one chunk.

    Parameters
    ----------
    quotes, backslashes:
        Raw bitmaps of ``"`` and ``\\`` characters for the chunk, as
        chunk-wide integers.
    bits:
        Width of the chunk in characters (must be even; in practice a
        multiple of 64).
    carry:
        State left by the previous chunk.
    length:
        Actual character count when the chunk is shorter than ``bits``
        (zero-padded tail).  The escape carry must be read at the true
        chunk end: a backslash run ending at ``length - 1`` escapes the
        *next chunk's* first character, which the padded computation
        records as an escaped bit at position ``length``.
    """
    if length is None:
        length = bits
    if bits == 0:
        return StringMaskResult(0, 0, 0, carry)
    mask = (1 << bits) - 1
    escaped, escape_overflow = escaped_positions(backslashes, carry.escape, bits)
    if length == bits:
        escape_out = escape_overflow
    else:
        escape_out = (escaped >> length) & 1
    unescaped_quotes = quotes & ~escaped & mask
    in_string = prefix_xor(unescaped_quotes, bits)
    if carry.in_string:
        in_string ^= mask
    in_string_out = (in_string >> (bits - 1)) & 1
    return StringMaskResult(
        in_string=in_string,
        unescaped_quotes=unescaped_quotes,
        escaped=escaped,
        carry_out=StringCarry(escape_out, in_string_out),
    )


def naive_string_mask(chunk: bytes, carry: StringCarry = INITIAL_CARRY) -> StringMaskResult:
    """Character-by-character oracle for :func:`compute_string_mask`.

    Used by the test suite to validate the bit-parallel construction on
    arbitrary (including pathological) inputs.  Conventions match the
    bit-parallel path exactly: the opening quote is inside the in-string
    mask and the closing quote is not, and ``escaped`` marks only
    run-terminating characters (a character following an odd-length
    backslash run) — never the backslashes inside a run, which are
    consumed by the run itself.
    """
    in_string = 0
    unescaped = 0
    escaped_bits = 0
    inside = bool(carry.in_string)
    run = 1 if carry.escape else 0
    for i, byte in enumerate(chunk):
        if byte == 0x5C:  # backslash: extend (or start) the run
            run += 1
            if inside:
                in_string |= 1 << i
            continue
        escaped = run % 2 == 1
        run = 0
        if escaped:
            escaped_bits |= 1 << i
            if inside:
                in_string |= 1 << i
            continue
        if byte == 0x22:  # unescaped quote
            unescaped |= 1 << i
            if not inside:
                in_string |= 1 << i  # opening quote is inside the mask
            inside = not inside
            continue
        if inside:
            in_string |= 1 << i
    return StringMaskResult(
        in_string=in_string,
        unescaped_quotes=unescaped,
        escaped=escaped_bits,
        carry_out=StringCarry(run % 2, int(inside)),
    )
