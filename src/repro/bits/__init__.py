"""Bit-parallel substrate (paper Section 4.1, Algorithm 3).

This subpackage provides everything below the fast-forward algorithms:

- :mod:`repro.bits.words` — 64-bit word primitives (the bit tricks of
  Algorithm 3: isolate lowest set bit, clear lowest set bit, interval
  subtraction, popcount, position of the interval end).
- :mod:`repro.bits.classify` — numpy-vectorized character classification of
  a chunk into per-metacharacter word bitmaps (the SIMD substitute).
- :mod:`repro.bits.strings` — the escaped-character and in-string masks
  (simdjson-style odd-backslash-run and prefix-XOR algorithms) used to
  remove pseudo-metacharacters inside strings.
- :mod:`repro.bits.index` — :class:`ChunkIndex` and :class:`BufferIndex`,
  the lazily-built, forward-only streaming index over the input.
- :mod:`repro.bits.intervals` — structural intervals (Definition 4.1) as
  literal word bitmaps, matching Algorithm 3 line by line.
- :mod:`repro.bits.scanner` — the three-primitive scanner interface that
  the fast-forward functions are written against, with a paper-faithful
  word-at-a-time implementation and a vectorized implementation.
"""

from repro.bits.classify import CharClass, classify_chunk
from repro.bits.index import BufferIndex, ChunkIndex
from repro.bits.intervals import IntervalBuilder, StructuralInterval
from repro.bits.posindex import PositionBufferIndex, PositionChunk, build_position_chunk
from repro.bits.scanner import Scanner, VectorScanner, WordScanner
from repro.bits.words import (
    WORD_BITS,
    WORD_MASK,
    clear_lowest_bit,
    interval_between,
    interval_end,
    lowest_bit,
    mask_from,
    mask_up_to,
    popcount,
    select_kth_bit,
)

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "BufferIndex",
    "CharClass",
    "ChunkIndex",
    "IntervalBuilder",
    "PositionBufferIndex",
    "PositionChunk",
    "Scanner",
    "StructuralInterval",
    "VectorScanner",
    "WordScanner",
    "build_position_chunk",
    "classify_chunk",
    "clear_lowest_bit",
    "interval_between",
    "interval_end",
    "lowest_bit",
    "mask_from",
    "mask_up_to",
    "popcount",
    "select_kth_bit",
]
