"""Structural intervals (paper Definition 4.1, Algorithm 3, Figures 7-8).

    Given the current streaming position ``pos`` and a metacharacter of
    interest ``α``, the *structural interval* for ``α`` is the sequence of
    consecutive characters between ``pos`` (inclusive) and the following
    closest ``α`` (exclusive).

This module gives structural intervals a literal, paper-shaped API: an
interval is constructed from its per-word *interval bitmaps* exactly as
Algorithm 3 does (mask bits below the start, isolate the next
metacharacter with ``b & -b``, subtract to fill the span), spilling across
words when the metacharacter lies beyond the current word (Figure 8).

The production engines query interval boundaries through
:class:`repro.bits.scanner.Scanner` (whose ``find_next`` *is* the interval
end); this module exists so the abstraction in the paper is directly
testable and demonstrable, word bitmaps included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.words import (
    WORD_BITS,
    WORD_MASK,
    interval_between,
    lowest_bit,
)


@dataclass(frozen=True)
class StructuralInterval:
    """A structural interval ``[start, end)`` for metacharacter ``cls``.

    ``end`` is the absolute position of the delimiting metacharacter, or
    ``None`` when no further occurrence exists (the interval extends to the
    end of the stream — the paper's open interval case).
    """

    cls: CharClass
    start: int
    end: int | None

    @property
    def is_open(self) -> bool:
        """True when no delimiting metacharacter was found."""
        return self.end is None

    def length_to(self, stream_size: int) -> int:
        """Character count of the interval, closing open intervals at
        ``stream_size``."""
        end = stream_size if self.end is None else self.end
        return max(0, end - self.start)

    def __contains__(self, pos: int) -> bool:
        if pos < self.start:
            return False
        return self.end is None or pos < self.end


class IntervalBuilder:
    """Constructs structural intervals word by word, per Algorithm 3.

    The builder walks the mirrored word bitmaps of a
    :class:`BufferIndex`; each step applies the paper's exact bit
    sequence::

        b_start    = 1 << pos                 # mask start position
        mask_start = b_start ^ (b_start - 1)  # bits up to start
        bitmap    &= ~mask_start              # clear below start
        b_end      = bitmap & -bitmap         # next metacharacter
        interval   = b_end - b_start          # the interval bitmap
    """

    def __init__(self, index: BufferIndex) -> None:
        self.index = index
        self._cursor: dict[CharClass, int] = {}

    def _word(self, cls: CharClass, word_pos: int) -> int:
        """Mirrored bitmap word covering absolute position ``word_pos``."""
        chunk = self.index.get(self.index.chunk_of(word_pos))
        word_id = (word_pos - chunk.start) // WORD_BITS
        return int(chunk.words[cls][word_id])

    def build(self, pos: int, cls: CharClass) -> StructuralInterval:
        """``buildInterval(pos, char)``: interval from ``pos`` (inclusive)
        to the next ``cls`` metacharacter (exclusive)."""
        size = len(self.index)
        if pos >= size:
            return StructuralInterval(cls, pos, None)
        bit = pos % WORD_BITS
        word_base = pos - bit
        # Algorithm 3 lines 4-6: mask the start position and reset the bits
        # below it.  ``pos`` itself stays eligible: a metacharacter at the
        # current position delimits a zero-length interval.
        b_start = 1 << bit
        bitmap = self._word(cls, word_base) & ~(b_start - 1) & WORD_MASK
        while True:
            b_end = lowest_bit(bitmap)
            if b_end:
                end = word_base + (b_end.bit_length() - 1)
                return StructuralInterval(cls, pos, end)
            word_base += WORD_BITS
            if word_base >= size:
                return StructuralInterval(cls, pos, None)
            bitmap = self._word(cls, word_base)

    def next(self, cls: CharClass) -> StructuralInterval:
        """``nextInterval(char)``: the interval between the next two ``cls``
        occurrences after the builder's cursor for that class.

        The first call behaves like ``build(0, cls)``; subsequent calls
        start one past the previous interval's end, so successive calls
        enumerate the metachar-to-metachar intervals of Figure 7.
        """
        start = self._cursor.get(cls, 0)
        interval = self.build(start, cls)
        if interval.end is not None:
            self._cursor[cls] = interval.end + 1
        else:
            self._cursor[cls] = len(self.index)
        return interval

    def reset(self, cls: CharClass | None = None) -> None:
        """Reset ``next`` cursors (all classes, or one)."""
        if cls is None:
            self._cursor.clear()
        else:
            self._cursor.pop(cls, None)

    def word_bitmaps(self, interval: StructuralInterval) -> Iterator[tuple[int, int]]:
        """Yield ``(word_start, interval_bitmap)`` per word the interval
        touches — the multi-word spill of Figure 8.

        Each bitmap has 1s exactly at the interval's positions within that
        word, built with :func:`repro.bits.words.interval_between`.
        """
        size = len(self.index)
        end = size if interval.end is None else interval.end
        if end <= interval.start:
            return
        first_word = interval.start - interval.start % WORD_BITS
        last_word = (end - 1) - (end - 1) % WORD_BITS
        for word_base in range(first_word, last_word + WORD_BITS, WORD_BITS):
            b_start = 1 << (interval.start - word_base) if word_base == first_word else 1
            # In the last word the delimiter sits at ``end`` unless the
            # interval runs through the word boundary (open within word).
            if word_base == last_word and end - word_base < WORD_BITS:
                b_end = 1 << (end - word_base)
            else:
                b_end = 0
            yield word_base, interval_between(b_start, b_end)


# ----------------------------------------------------------------------
# Vectorized sibling: the paired open/close interval table (stage 1)


def _pair_opens(pair_table) -> tuple[np.ndarray, np.ndarray]:
    """Match every open in a :class:`~repro.bits.posindex.PairTable` to
    its closer within the chunk (``-1`` when the closer spills into a
    later chunk).

    At any pair depth ``v``, opens reaching ``v`` and closers leaving
    ``v`` (after-depth ``v-1``) strictly alternate — depth moves by ±1
    per event, so two same-depth opens always bracket a closer and vice
    versa.  Leading closers before the depth's first open belong to opens
    in earlier chunks; after dropping them, pairing is positional.
    """
    opens = pair_table.opens
    closes = np.full(len(opens), -1, dtype=np.int64)
    after = pair_table.opens_after
    for depth in np.unique(after):
        group = np.flatnonzero(after == depth)
        candidates = pair_table.closes_by_depth.get(int(depth) - 1)
        if not candidates:
            continue
        arr = np.frombuffer(candidates, dtype=np.int64)
        lead = int(np.searchsorted(arr, opens[group[0]]))
        n = min(len(group), len(arr) - lead)
        if n > 0:
            closes[group[:n]] = arr[lead : lead + n]
    return opens, closes


@dataclass(frozen=True)
class IntervalTable:
    """Paired open/close positions of one chunk, per pair class.

    The vectorized counterpart of :class:`IntervalBuilder`: where the
    builder materializes one structural interval at a time from word
    bitmaps, this table lays out *every* ``{``→``}`` and ``[``→``]``
    span of a chunk as parallel sorted arrays, built in a handful of
    ``np.flatnonzero``/``searchsorted`` passes over the stage-1 depth
    tables.  A close of ``-1`` marks a spill: the container closes in a
    later chunk (resolve it with ``Scanner.pair_close``).
    """

    start: int
    end: int
    brace_opens: np.ndarray
    brace_closes: np.ndarray
    bracket_opens: np.ndarray
    bracket_closes: np.ndarray

    def close_of(self, open_pos: int) -> int | None:
        """Closer position for the container opening at ``open_pos``.

        ``-1`` means the closer lies beyond this chunk; ``None`` means
        ``open_pos`` is not an opener in this chunk.
        """
        for opens, closes in (
            (self.brace_opens, self.brace_closes),
            (self.bracket_opens, self.bracket_closes),
        ):
            i = int(np.searchsorted(opens, open_pos))
            if i < len(opens) and int(opens[i]) == open_pos:
                return int(closes[i])
        return None

    def spans(self) -> Iterator[tuple[int, int, str]]:
        """All ``(open, close, kind)`` pairs in open-position order
        (spilled closers reported as ``-1``)."""
        merged = sorted(
            [(int(o), int(c), "object") for o, c in zip(self.brace_opens, self.brace_closes)]
            + [(int(o), int(c), "array") for o, c in zip(self.bracket_opens, self.bracket_closes)]
        )
        return iter(merged)


def build_interval_table(chunk) -> IntervalTable:
    """Build the :class:`IntervalTable` of one
    :class:`~repro.bits.posindex.PositionChunk`."""
    tables = chunk.depth_tables()
    brace_opens, brace_closes = _pair_opens(tables.brace)
    bracket_opens, bracket_closes = _pair_opens(tables.bracket)
    return IntervalTable(
        start=chunk.start,
        end=chunk.end,
        brace_opens=brace_opens,
        brace_closes=brace_closes,
        bracket_opens=bracket_opens,
        bracket_closes=bracket_closes,
    )
