"""Structural intervals (paper Definition 4.1, Algorithm 3, Figures 7-8).

    Given the current streaming position ``pos`` and a metacharacter of
    interest ``α``, the *structural interval* for ``α`` is the sequence of
    consecutive characters between ``pos`` (inclusive) and the following
    closest ``α`` (exclusive).

This module gives structural intervals a literal, paper-shaped API: an
interval is constructed from its per-word *interval bitmaps* exactly as
Algorithm 3 does (mask bits below the start, isolate the next
metacharacter with ``b & -b``, subtract to fill the span), spilling across
words when the metacharacter lies beyond the current word (Figure 8).

The production engines query interval boundaries through
:class:`repro.bits.scanner.Scanner` (whose ``find_next`` *is* the interval
end); this module exists so the abstraction in the paper is directly
testable and demonstrable, word bitmaps included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex
from repro.bits.words import (
    WORD_BITS,
    WORD_MASK,
    interval_between,
    lowest_bit,
)


@dataclass(frozen=True)
class StructuralInterval:
    """A structural interval ``[start, end)`` for metacharacter ``cls``.

    ``end`` is the absolute position of the delimiting metacharacter, or
    ``None`` when no further occurrence exists (the interval extends to the
    end of the stream — the paper's open interval case).
    """

    cls: CharClass
    start: int
    end: int | None

    @property
    def is_open(self) -> bool:
        """True when no delimiting metacharacter was found."""
        return self.end is None

    def length_to(self, stream_size: int) -> int:
        """Character count of the interval, closing open intervals at
        ``stream_size``."""
        end = stream_size if self.end is None else self.end
        return max(0, end - self.start)

    def __contains__(self, pos: int) -> bool:
        if pos < self.start:
            return False
        return self.end is None or pos < self.end


class IntervalBuilder:
    """Constructs structural intervals word by word, per Algorithm 3.

    The builder walks the mirrored word bitmaps of a
    :class:`BufferIndex`; each step applies the paper's exact bit
    sequence::

        b_start    = 1 << pos                 # mask start position
        mask_start = b_start ^ (b_start - 1)  # bits up to start
        bitmap    &= ~mask_start              # clear below start
        b_end      = bitmap & -bitmap         # next metacharacter
        interval   = b_end - b_start          # the interval bitmap
    """

    def __init__(self, index: BufferIndex) -> None:
        self.index = index
        self._cursor: dict[CharClass, int] = {}

    def _word(self, cls: CharClass, word_pos: int) -> int:
        """Mirrored bitmap word covering absolute position ``word_pos``."""
        chunk = self.index.get(self.index.chunk_of(word_pos))
        word_id = (word_pos - chunk.start) // WORD_BITS
        return int(chunk.words[cls][word_id])

    def build(self, pos: int, cls: CharClass) -> StructuralInterval:
        """``buildInterval(pos, char)``: interval from ``pos`` (inclusive)
        to the next ``cls`` metacharacter (exclusive)."""
        size = len(self.index)
        if pos >= size:
            return StructuralInterval(cls, pos, None)
        bit = pos % WORD_BITS
        word_base = pos - bit
        # Algorithm 3 lines 4-6: mask the start position and reset the bits
        # below it.  ``pos`` itself stays eligible: a metacharacter at the
        # current position delimits a zero-length interval.
        b_start = 1 << bit
        bitmap = self._word(cls, word_base) & ~(b_start - 1) & WORD_MASK
        while True:
            b_end = lowest_bit(bitmap)
            if b_end:
                end = word_base + (b_end.bit_length() - 1)
                return StructuralInterval(cls, pos, end)
            word_base += WORD_BITS
            if word_base >= size:
                return StructuralInterval(cls, pos, None)
            bitmap = self._word(cls, word_base)

    def next(self, cls: CharClass) -> StructuralInterval:
        """``nextInterval(char)``: the interval between the next two ``cls``
        occurrences after the builder's cursor for that class.

        The first call behaves like ``build(0, cls)``; subsequent calls
        start one past the previous interval's end, so successive calls
        enumerate the metachar-to-metachar intervals of Figure 7.
        """
        start = self._cursor.get(cls, 0)
        interval = self.build(start, cls)
        if interval.end is not None:
            self._cursor[cls] = interval.end + 1
        else:
            self._cursor[cls] = len(self.index)
        return interval

    def reset(self, cls: CharClass | None = None) -> None:
        """Reset ``next`` cursors (all classes, or one)."""
        if cls is None:
            self._cursor.clear()
        else:
            self._cursor.pop(cls, None)

    def word_bitmaps(self, interval: StructuralInterval) -> Iterator[tuple[int, int]]:
        """Yield ``(word_start, interval_bitmap)`` per word the interval
        touches — the multi-word spill of Figure 8.

        Each bitmap has 1s exactly at the interval's positions within that
        word, built with :func:`repro.bits.words.interval_between`.
        """
        size = len(self.index)
        end = size if interval.end is None else interval.end
        if end <= interval.start:
            return
        first_word = interval.start - interval.start % WORD_BITS
        last_word = (end - 1) - (end - 1) % WORD_BITS
        for word_base in range(first_word, last_word + WORD_BITS, WORD_BITS):
            b_start = 1 << (interval.start - word_base) if word_base == first_word else 1
            # In the last word the delimiter sits at ``end`` unless the
            # interval runs through the word boundary (open within word).
            if word_base == last_word and end - word_base < WORD_BITS:
                b_end = 1 << (end - word_base)
            else:
                b_end = 0
            yield word_base, interval_between(b_start, b_end)
