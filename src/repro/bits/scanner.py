"""Scanner primitives over the structural index.

Every fast-forward algorithm in the paper reduces to three queries over
string-filtered metacharacter bitmaps:

- ``find_next(cls, pos)`` — position of the next occurrence of ``cls`` at
  or after ``pos`` (the boundary of a structural interval, Definition 4.1);
- ``count_range(cls, lo, hi)`` — occurrences in ``[lo, hi)`` (the POPCNT of
  Algorithm 4, used by the counting-based pairing of Theorem 4.3);
- ``kth_in_range(cls, lo, k)`` — position of the ``k``-th occurrence at or
  after ``lo`` (Algorithm 4's ``getPosition``, which pins the closing brace
  that ends an object).

Two implementations are provided:

- :class:`WordScanner` walks mirrored 64-bit words one at a time with the
  bit tricks of Algorithm 3 — the paper-faithful mode.
- :class:`VectorScanner` answers from per-chunk sorted position arrays
  with ``numpy.searchsorted`` — the wide-SIMD stand-in.

Both are exact; the property-based test suite asserts they agree
everywhere, and ablation A2 measures the performance gap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from typing import Any

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex, ChunkIndex
from repro.bits.words import WORD_BITS, WORD_MASK, lowest_bit_position, popcount, select_kth_bit

#: Sentinel returned when no further occurrence exists in the stream.
NOT_FOUND = -1


class Scanner(ABC):
    """Positional queries over one :class:`BufferIndex`."""

    def __init__(self, index: BufferIndex) -> None:
        self.index = index
        self._metrics_registry = None

    @property
    def size(self) -> int:
        return len(self.index)

    def attach_metrics(self, registry: Any) -> None:
        """Count scanner primitive calls into ``registry``.

        Wraps the five public query methods with per-op counters
        (``scanner.calls{op=...}``) as *instance* attributes, so the
        metrics-off path — and every consumer that cached a bound method
        before attachment — pays nothing.  Idempotent per registry; a
        second attachment with a different registry rebinds the wrappers.
        Must be called before fast-forwarders bind the methods (the
        engine attaches in ``_buffer()``, ahead of run construction).
        """
        if registry is None or registry is self._metrics_registry:
            return
        self._metrics_registry = registry
        for op in ("find_next", "find_prev", "count_range", "kth_in_range", "pair_close"):
            # Unwrap first so re-attachment wraps the class implementation,
            # not a previous registry's wrapper.
            self.__dict__.pop(op, None)
            inner = getattr(self, op)
            counter = registry.counter("scanner.calls", op=op)

            def wrapper(*args: Any, _inner: Any = inner, _counter: Any = counter) -> Any:
                _counter.value += 1
                return _inner(*args)

            setattr(self, op, wrapper)

    @abstractmethod
    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        """First occurrence of ``cls`` at or after ``pos`` within ``chunk``."""

    @abstractmethod
    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        """Occurrences of ``cls`` in ``[lo, hi)`` within ``chunk``."""

    @abstractmethod
    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        """``(position, 0)`` of the ``k``-th occurrence at or after ``lo`` in
        ``chunk``, or ``(NOT_FOUND, remaining)`` with the count still owed."""

    @abstractmethod
    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        """Last occurrence of ``cls`` at or before ``pos`` within ``chunk``."""

    def find_next(self, cls: CharClass, pos: int) -> int:
        """Absolute position of the next ``cls`` at or after ``pos``.

        Returns :data:`NOT_FOUND` when the stream has no further
        occurrence (an open structural interval extending to the end).
        """
        if pos >= self.size:
            return NOT_FOUND
        for chunk_id in range(self.index.chunk_of(pos), self.index.n_chunks):
            chunk = self.index.get(chunk_id)
            found = self._chunk_find(chunk, cls, max(pos, chunk.start))
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def find_prev(self, cls: CharClass, pos: int) -> int:
        """Absolute position of the last ``cls`` at or before ``pos``.

        Used by G1 fast-forwarding to recover an attribute name *after*
        jumping to its value: the name's closing quote is the nearest
        unescaped quote behind the value start.
        """
        pos = min(pos, self.size - 1)
        if pos < 0:
            return NOT_FOUND
        for chunk_id in range(self.index.chunk_of(pos), -1, -1):
            chunk = self.index.get(chunk_id)
            found = self._chunk_find_prev(chunk, cls, min(pos, chunk.end - 1))
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def count_range(self, cls: CharClass, lo: int, hi: int) -> int:
        """Number of ``cls`` occurrences in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        hi = min(hi, self.size)
        total = 0
        for chunk_id in range(self.index.chunk_of(lo), self.index.chunk_of(max(hi - 1, lo)) + 1):
            chunk = self.index.get(chunk_id)
            total += self._chunk_count(chunk, cls, max(lo, chunk.start), min(hi, chunk.end))
        return total

    def kth_in_range(self, cls: CharClass, lo: int, k: int) -> int:
        """Position of the ``k``-th (1-based) ``cls`` at or after ``lo``."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if lo >= self.size:
            return NOT_FOUND
        remaining = k
        for chunk_id in range(self.index.chunk_of(lo), self.index.n_chunks):
            chunk = self.index.get(chunk_id)
            found, remaining = self._chunk_kth(chunk, cls, max(lo, chunk.start), remaining)
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def pair_close(self, open_cls: CharClass, close_cls: CharClass, pos: int, num_open: int) -> int:
        """Counting-based pairing (Algorithm 4 / Theorem 4.3): position of
        the ``close_cls`` character that balances ``num_open`` outstanding
        ``open_cls`` characters, scanning from ``pos``.

        Walks the structural intervals between successive opens, counting
        closers per interval; returns :data:`NOT_FOUND` if the stream ends
        first.  Subclasses may override with a fused implementation — the
        semantics must match this reference loop exactly.
        """
        cur = pos
        while True:
            next_open = self.find_next(open_cls, cur)
            interval_end = next_open if next_open != NOT_FOUND else self.size
            n_close = self.count_range(close_cls, cur, interval_end)
            if n_close >= num_open:
                return self.kth_in_range(close_cls, cur, num_open)
            if next_open == NOT_FOUND:
                return NOT_FOUND
            num_open += 1 - n_close
            cur = next_open + 1


class WordScanner(Scanner):
    """Word-at-a-time scanner: literal Algorithm 3/4 bit manipulation.

    Each 64-bit word is lifted to a Python int and interrogated with
    ``b & -b`` / popcount / k-th-bit selection — the exact operations the
    paper issues per word, at word (not character) granularity.
    """

    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        words = chunk.words[cls]
        offset = pos - chunk.start
        word_id = offset // WORD_BITS
        if word_id >= len(words):
            return NOT_FOUND
        first = int(words[word_id]) & ~((1 << (offset % WORD_BITS)) - 1)
        if first:
            return chunk.start + word_id * WORD_BITS + lowest_bit_position(first)
        for wid in range(word_id + 1, len(words)):
            word = int(words[wid])
            if word:
                return chunk.start + wid * WORD_BITS + lowest_bit_position(word)
        return NOT_FOUND

    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        if hi <= lo:
            return 0
        words = chunk.words[cls]
        lo_off, hi_off = lo - chunk.start, hi - chunk.start
        lo_word, hi_word = lo_off // WORD_BITS, (hi_off - 1) // WORD_BITS
        total = 0
        for wid in range(lo_word, hi_word + 1):
            word = int(words[wid])
            if wid == lo_word:
                word &= ~((1 << (lo_off % WORD_BITS)) - 1)
            if wid == hi_word and hi_off % WORD_BITS:
                word &= (1 << (hi_off % WORD_BITS)) - 1
            total += popcount(word)
        return total

    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        words = chunk.words[cls]
        offset = lo - chunk.start
        word_id = offset // WORD_BITS
        remaining = k
        for wid in range(word_id, len(words)):
            word = int(words[wid])
            if wid == word_id:
                word &= ~((1 << (offset % WORD_BITS)) - 1)
            count = popcount(word)
            if count >= remaining:
                bit = select_kth_bit(word, remaining)
                return chunk.start + wid * WORD_BITS + bit, 0
            remaining -= count
        return NOT_FOUND, remaining

    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        words = chunk.words[cls]
        offset = pos - chunk.start
        word_id = offset // WORD_BITS
        bit = offset % WORD_BITS
        mask = WORD_MASK if bit == WORD_BITS - 1 else (1 << (bit + 1)) - 1
        first = int(words[word_id]) & mask
        if first:
            return chunk.start + word_id * WORD_BITS + (first.bit_length() - 1)
        for wid in range(word_id - 1, -1, -1):
            word = int(words[wid])
            if word:
                return chunk.start + wid * WORD_BITS + (word.bit_length() - 1)
        return NOT_FOUND


class VectorScanner(Scanner):
    """Vectorized scanner over per-chunk sorted position lists.

    Each class bitmap is decoded once per chunk (``np.unpackbits`` +
    ``np.flatnonzero`` — the batch, SIMD-like step); every query then
    becomes a scalar binary search over the decoded positions.  The
    public methods are overridden with flat ``bisect`` loops because the
    fast-forward algorithms issue these queries millions of times.
    """

    def __init__(self, index: BufferIndex) -> None:
        super().__init__(index)
        self._n_chunks = index.n_chunks
        self._chunk_size = index.chunk_size
        self._size = len(index)
        # Per-class cursor: (chunk_id, positions_list) of the most recently
        # touched chunk.  Streaming access is overwhelmingly chunk-local,
        # so this removes the index/dict hops from the common path while
        # leaving eviction behaviour (bounded memory) to the BufferIndex.
        self._cursor: dict[CharClass, tuple[int, list[int]]] = {}

    def _list(self, cls: CharClass, chunk_id: int) -> list[int]:
        cursor = self._cursor.get(cls)
        if cursor is not None and cursor[0] == chunk_id:
            return cursor[1]
        positions = self.index.get(chunk_id).positions_list(cls)
        self._cursor[cls] = (chunk_id, positions)
        return positions

    def find_next(self, cls: CharClass, pos: int) -> int:
        if pos >= self._size:
            return NOT_FOUND
        for chunk_id in range(pos // self._chunk_size, self._n_chunks):
            positions = self._list(cls, chunk_id)
            idx = bisect_left(positions, pos)
            if idx < len(positions):
                return positions[idx]
        return NOT_FOUND

    def find_prev(self, cls: CharClass, pos: int) -> int:
        pos = min(pos, self._size - 1)
        if pos < 0:
            return NOT_FOUND
        for chunk_id in range(pos // self._chunk_size, -1, -1):
            positions = self._list(cls, chunk_id)
            idx = bisect_right(positions, pos)
            if idx > 0:
                return positions[idx - 1]
        return NOT_FOUND

    def count_range(self, cls: CharClass, lo: int, hi: int) -> int:
        if hi <= lo:
            return 0
        hi = min(hi, self._size)
        first = lo // self._chunk_size
        last = max(hi - 1, lo) // self._chunk_size
        if first == last:
            positions = self._list(cls, first)
            return bisect_left(positions, hi) - bisect_left(positions, lo)
        total = 0
        for chunk_id in range(first, last + 1):
            positions = self._list(cls, chunk_id)
            if chunk_id == first:
                total += len(positions) - bisect_left(positions, lo)
            elif chunk_id == last:
                total += bisect_left(positions, hi)
            else:
                total += len(positions)
        return total

    def kth_in_range(self, cls: CharClass, lo: int, k: int) -> int:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if lo >= self._size:
            return NOT_FOUND
        first = lo // self._chunk_size
        remaining = k
        for chunk_id in range(first, self._n_chunks):
            positions = self._list(cls, chunk_id)
            idx = bisect_left(positions, lo) if chunk_id == first else 0
            available = len(positions) - idx
            if available >= remaining:
                return positions[idx + remaining - 1]
            remaining -= available
        return NOT_FOUND

    def pair_close(self, open_cls: CharClass, close_cls: CharClass, pos: int, num_open: int) -> int:
        """Fused Algorithm 4 loop over the two position lists.

        Identical interval-by-interval semantics to the base class, but
        each step is two bisects and index arithmetic instead of three
        full scanner calls — this sits under every ``goOverObj`` /
        ``goToObjEnd`` and dominates engine time on object-dense data.
        """
        chunk_size = self._chunk_size
        chunk_id = pos // chunk_size
        while chunk_id < self._n_chunks:
            opens = self._list(open_cls, chunk_id)
            closes = self._list(close_cls, chunk_id)
            n_opens, n_closes = len(opens), len(closes)
            io = bisect_left(opens, pos)
            ic = bisect_left(closes, pos)
            while True:
                if io < n_opens:
                    next_open = opens[io]
                else:
                    # No further open in this chunk: the current interval
                    # spills over; consume this chunk's remaining closes.
                    n_close = n_closes - ic
                    if n_close >= num_open:
                        return closes[ic + num_open - 1]
                    num_open -= n_close
                    break
                j = bisect_left(closes, next_open, ic)
                n_close = j - ic
                if n_close >= num_open:
                    return closes[ic + num_open - 1]
                num_open += 1 - n_close
                ic = j
                io += 1
            chunk_id += 1
            pos = chunk_id * chunk_size
        return NOT_FOUND

    # The abstract per-chunk hooks are satisfied for protocol completeness
    # (the overridden public methods above never call them).

    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        positions = chunk.positions_list(cls)
        idx = bisect_left(positions, pos)
        return positions[idx] if idx < len(positions) else NOT_FOUND

    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        positions = chunk.positions_list(cls)
        return bisect_left(positions, hi) - bisect_left(positions, lo)

    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        positions = chunk.positions_list(cls)
        idx = bisect_left(positions, lo)
        available = len(positions) - idx
        if available >= k:
            return positions[idx + k - 1], 0
        return NOT_FOUND, k - available

    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        positions = chunk.positions_list(cls)
        idx = bisect_right(positions, pos)
        return positions[idx - 1] if idx > 0 else NOT_FOUND


#: Registry used by engine constructors (``mode='word'`` / ``mode='vector'``).
SCANNERS: dict[str, type[Scanner]] = {
    "word": WordScanner,
    "vector": VectorScanner,
}


def make_scanner(index: BufferIndex, mode: str = "vector") -> Scanner:
    """Instantiate a scanner by mode name (``'word'`` or ``'vector'``)."""
    try:
        factory = SCANNERS[mode]
    except KeyError:
        raise ValueError(f"unknown scanner mode {mode!r}; expected one of {sorted(SCANNERS)}") from None
    return factory(index)
