"""Scanner primitives over the structural index.

Every fast-forward algorithm in the paper reduces to three queries over
string-filtered metacharacter bitmaps:

- ``find_next(cls, pos)`` — position of the next occurrence of ``cls`` at
  or after ``pos`` (the boundary of a structural interval, Definition 4.1);
- ``count_range(cls, lo, hi)`` — occurrences in ``[lo, hi)`` (the POPCNT of
  Algorithm 4, used by the counting-based pairing of Theorem 4.3);
- ``kth_in_range(cls, lo, k)`` — position of the ``k``-th occurrence at or
  after ``lo`` (Algorithm 4's ``getPosition``, which pins the closing brace
  that ends an object).

Two implementations are provided:

- :class:`WordScanner` walks mirrored 64-bit words one at a time with the
  bit tricks of Algorithm 3 — the paper-faithful mode.
- :class:`VectorScanner` answers from per-chunk sorted position arrays
  with ``numpy.searchsorted`` — the wide-SIMD stand-in.

Both are exact; the property-based test suite asserts they agree
everywhere, and ablation A2 measures the performance gap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from typing import Any

from repro.bits.classify import CharClass
from repro.bits.index import BufferIndex, ChunkIndex
from repro.bits.posindex import PositionBufferIndex
from repro.bits.words import WORD_BITS, WORD_MASK, lowest_bit_position, popcount, select_kth_bit

#: Sentinel returned when no further occurrence exists in the stream.
NOT_FOUND = -1


class Scanner(ABC):
    """Positional queries over one :class:`BufferIndex`."""

    def __init__(self, index: BufferIndex) -> None:
        self.index = index
        self._metrics_registry = None
        #: True when the index carries depth state (a
        #: :class:`~repro.bits.posindex.PositionBufferIndex`), enabling the
        #: depth-table queries; consumed by
        #: :func:`repro.engine.fastforward.make_fastforwarder`.
        self.leveled = False

    @property
    def size(self) -> int:
        return len(self.index)

    def attach_metrics(self, registry: Any) -> None:
        """Count scanner primitive calls into ``registry``.

        Wraps the five public query methods with per-op counters
        (``scanner.calls{op=...}``) as *instance* attributes, so the
        metrics-off path — and every consumer that cached a bound method
        before attachment — pays nothing.  Idempotent per registry; a
        second attachment with a different registry rebinds the wrappers.
        Must be called before fast-forwarders bind the methods (the
        engine attaches in ``_buffer()``, ahead of run construction).
        """
        if registry is None or registry is self._metrics_registry:
            return
        self._metrics_registry = registry
        for op in ("find_next", "find_prev", "count_range", "kth_in_range", "pair_close"):
            # Unwrap first so re-attachment wraps the class implementation,
            # not a previous registry's wrapper.
            self.__dict__.pop(op, None)
            inner = getattr(self, op)
            counter = registry.counter("scanner.calls", op=op)

            def wrapper(*args: Any, _inner: Any = inner, _counter: Any = counter) -> Any:
                _counter.value += 1
                return _inner(*args)

            setattr(self, op, wrapper)

    @abstractmethod
    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        """First occurrence of ``cls`` at or after ``pos`` within ``chunk``."""

    @abstractmethod
    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        """Occurrences of ``cls`` in ``[lo, hi)`` within ``chunk``."""

    @abstractmethod
    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        """``(position, 0)`` of the ``k``-th occurrence at or after ``lo`` in
        ``chunk``, or ``(NOT_FOUND, remaining)`` with the count still owed."""

    @abstractmethod
    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        """Last occurrence of ``cls`` at or before ``pos`` within ``chunk``."""

    def find_next(self, cls: CharClass, pos: int) -> int:
        """Absolute position of the next ``cls`` at or after ``pos``.

        Returns :data:`NOT_FOUND` when the stream has no further
        occurrence (an open structural interval extending to the end).
        """
        if pos >= self.size:
            return NOT_FOUND
        for chunk_id in range(self.index.chunk_of(pos), self.index.n_chunks):
            chunk = self.index.get(chunk_id)
            found = self._chunk_find(chunk, cls, max(pos, chunk.start))
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def find_prev(self, cls: CharClass, pos: int) -> int:
        """Absolute position of the last ``cls`` at or before ``pos``.

        Used by G1 fast-forwarding to recover an attribute name *after*
        jumping to its value: the name's closing quote is the nearest
        unescaped quote behind the value start.
        """
        pos = min(pos, self.size - 1)
        if pos < 0:
            return NOT_FOUND
        for chunk_id in range(self.index.chunk_of(pos), -1, -1):
            chunk = self.index.get(chunk_id)
            found = self._chunk_find_prev(chunk, cls, min(pos, chunk.end - 1))
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def count_range(self, cls: CharClass, lo: int, hi: int) -> int:
        """Number of ``cls`` occurrences in ``[lo, hi)``."""
        if hi <= lo:
            return 0
        hi = min(hi, self.size)
        total = 0
        for chunk_id in range(self.index.chunk_of(lo), self.index.chunk_of(max(hi - 1, lo)) + 1):
            chunk = self.index.get(chunk_id)
            total += self._chunk_count(chunk, cls, max(lo, chunk.start), min(hi, chunk.end))
        return total

    def kth_in_range(self, cls: CharClass, lo: int, k: int) -> int:
        """Position of the ``k``-th (1-based) ``cls`` at or after ``lo``."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if lo >= self.size:
            return NOT_FOUND
        remaining = k
        for chunk_id in range(self.index.chunk_of(lo), self.index.n_chunks):
            chunk = self.index.get(chunk_id)
            found, remaining = self._chunk_kth(chunk, cls, max(lo, chunk.start), remaining)
            if found != NOT_FOUND:
                return found
        return NOT_FOUND

    def pair_close(self, open_cls: CharClass, close_cls: CharClass, pos: int, num_open: int) -> int:
        """Counting-based pairing (Algorithm 4 / Theorem 4.3): position of
        the ``close_cls`` character that balances ``num_open`` outstanding
        ``open_cls`` characters, scanning from ``pos``.

        Walks the structural intervals between successive opens, counting
        closers per interval; returns :data:`NOT_FOUND` if the stream ends
        first.  Subclasses may override with a fused implementation — the
        semantics must match this reference loop exactly.
        """
        cur = pos
        while True:
            next_open = self.find_next(open_cls, cur)
            interval_end = next_open if next_open != NOT_FOUND else self.size
            n_close = self.count_range(close_cls, cur, interval_end)
            if n_close >= num_open:
                return self.kth_in_range(close_cls, cur, num_open)
            if next_open == NOT_FOUND:
                return NOT_FOUND
            num_open += 1 - n_close
            cur = next_open + 1


class WordScanner(Scanner):
    """Word-at-a-time scanner: literal Algorithm 3/4 bit manipulation.

    Each 64-bit word is lifted to a Python int and interrogated with
    ``b & -b`` / popcount / k-th-bit selection — the exact operations the
    paper issues per word, at word (not character) granularity.
    """

    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        words = chunk.words[cls]
        offset = pos - chunk.start
        word_id = offset // WORD_BITS
        if word_id >= len(words):
            return NOT_FOUND
        first = int(words[word_id]) & ~((1 << (offset % WORD_BITS)) - 1)
        if first:
            return chunk.start + word_id * WORD_BITS + lowest_bit_position(first)
        for wid in range(word_id + 1, len(words)):
            word = int(words[wid])  # repro: ignore[RS008] -- paper-faithful word path (Algorithm 3)
            if word:
                return chunk.start + wid * WORD_BITS + lowest_bit_position(word)
        return NOT_FOUND

    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        if hi <= lo:
            return 0
        words = chunk.words[cls]
        lo_off, hi_off = lo - chunk.start, hi - chunk.start
        lo_word, hi_word = lo_off // WORD_BITS, (hi_off - 1) // WORD_BITS
        total = 0
        for wid in range(lo_word, hi_word + 1):
            word = int(words[wid])  # repro: ignore[RS008] -- paper-faithful word path (Algorithm 3)
            if wid == lo_word:
                word &= ~((1 << (lo_off % WORD_BITS)) - 1)
            if wid == hi_word and hi_off % WORD_BITS:
                word &= (1 << (hi_off % WORD_BITS)) - 1
            total += popcount(word)
        return total

    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        words = chunk.words[cls]
        offset = lo - chunk.start
        word_id = offset // WORD_BITS
        remaining = k
        for wid in range(word_id, len(words)):
            word = int(words[wid])  # repro: ignore[RS008] -- paper-faithful word path (Algorithm 3)
            if wid == word_id:
                word &= ~((1 << (offset % WORD_BITS)) - 1)
            count = popcount(word)
            if count >= remaining:
                bit = select_kth_bit(word, remaining)
                return chunk.start + wid * WORD_BITS + bit, 0
            remaining -= count
        return NOT_FOUND, remaining

    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        words = chunk.words[cls]
        offset = pos - chunk.start
        word_id = offset // WORD_BITS
        bit = offset % WORD_BITS
        mask = WORD_MASK if bit == WORD_BITS - 1 else (1 << (bit + 1)) - 1
        first = int(words[word_id]) & mask
        if first:
            return chunk.start + word_id * WORD_BITS + (first.bit_length() - 1)
        for wid in range(word_id - 1, -1, -1):
            word = int(words[wid])  # repro: ignore[RS008] -- paper-faithful word path (Algorithm 3)
            if word:
                return chunk.start + wid * WORD_BITS + (word.bit_length() - 1)
        return NOT_FOUND


class VectorScanner(Scanner):
    """Vectorized scanner over per-chunk sorted position lists.

    Each class bitmap is decoded once per chunk (``np.unpackbits`` +
    ``np.flatnonzero`` — the batch, SIMD-like step); every query then
    becomes a scalar binary search over the decoded positions.  The
    public methods are overridden with flat ``bisect`` loops because the
    fast-forward algorithms issue these queries millions of times.
    """

    def __init__(self, index: BufferIndex) -> None:
        super().__init__(index)
        self._n_chunks = index.n_chunks
        self._chunk_size = index.chunk_size
        self._size = len(index)
        # Per-class cursor: (chunk_id, positions_list) of the most recently
        # touched chunk.  Streaming access is overwhelmingly chunk-local,
        # so this removes the index/dict hops from the common path while
        # leaving eviction behaviour (bounded memory) to the BufferIndex.
        self._cursor: dict[CharClass, tuple[int, list[int]]] = {}
        # Depth-table queries (O(log) pair_close, leveled comma maps) need
        # the depth carries only PositionBufferIndex chains; over a plain
        # word-bitmap index the scanner falls back to the interval walk.
        self.leveled = isinstance(index, PositionBufferIndex)
        self._dt_cursor: tuple[int, Any] | None = None

    def _tables(self, chunk_id: int) -> Any:
        cursor = self._dt_cursor
        if cursor is not None and cursor[0] == chunk_id:
            return cursor[1]
        tables = self.index.get(chunk_id).depth_tables()
        self._dt_cursor = (chunk_id, tables)
        return tables

    def _list(self, cls: CharClass, chunk_id: int) -> list[int]:
        cursor = self._cursor.get(cls)
        if cursor is not None and cursor[0] == chunk_id:
            return cursor[1]
        positions = self.index.get(chunk_id).positions_list(cls)
        self._cursor[cls] = (chunk_id, positions)
        return positions

    def find_next(self, cls: CharClass, pos: int) -> int:
        if pos >= self._size:
            return NOT_FOUND
        for chunk_id in range(pos // self._chunk_size, self._n_chunks):
            positions = self._list(cls, chunk_id)
            idx = bisect_left(positions, pos)
            if idx < len(positions):
                return positions[idx]
        return NOT_FOUND

    def find_prev(self, cls: CharClass, pos: int) -> int:
        pos = min(pos, self._size - 1)
        if pos < 0:
            return NOT_FOUND
        for chunk_id in range(pos // self._chunk_size, -1, -1):
            positions = self._list(cls, chunk_id)
            idx = bisect_right(positions, pos)
            if idx > 0:
                return positions[idx - 1]
        return NOT_FOUND

    def count_range(self, cls: CharClass, lo: int, hi: int) -> int:
        if hi <= lo:
            return 0
        hi = min(hi, self._size)
        first = lo // self._chunk_size
        last = max(hi - 1, lo) // self._chunk_size
        if first == last:
            positions = self._list(cls, first)
            return bisect_left(positions, hi) - bisect_left(positions, lo)
        total = 0
        for chunk_id in range(first, last + 1):
            positions = self._list(cls, chunk_id)
            if chunk_id == first:
                total += len(positions) - bisect_left(positions, lo)
            elif chunk_id == last:
                total += bisect_left(positions, hi)
            else:
                total += len(positions)
        return total

    def kth_in_range(self, cls: CharClass, lo: int, k: int) -> int:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if lo >= self._size:
            return NOT_FOUND
        first = lo // self._chunk_size
        remaining = k
        for chunk_id in range(first, self._n_chunks):
            positions = self._list(cls, chunk_id)
            idx = bisect_left(positions, lo) if chunk_id == first else 0
            available = len(positions) - idx
            if available >= remaining:
                return positions[idx + remaining - 1]
            remaining -= available
        return NOT_FOUND

    def pair_close(self, open_cls: CharClass, close_cls: CharClass, pos: int, num_open: int) -> int:
        """Counting-based pairing as two binary searches (stage 2).

        Over a :class:`~repro.bits.posindex.PositionBufferIndex` the
        chunk's :class:`~repro.bits.posindex.DepthTables` answer directly:
        the closer ending ``num_open`` outstanding opens is the first
        closer at or after ``pos`` whose pair depth *after* processing it
        equals ``depth_before(pos) - num_open``.  Pair depth moves by ±1
        per event, so that closer is exactly where the reference interval
        walk's outstanding count first reaches zero — on well-formed and
        malformed byte streams alike.  Depths are absolute, so a miss
        continues into later chunks with the same target.
        """
        if self.leveled and (
            (open_cls is CharClass.LBRACE and close_cls is CharClass.RBRACE)
            or (open_cls is CharClass.LBRACKET and close_cls is CharClass.RBRACKET)
        ):
            if pos >= self._size:
                return NOT_FOUND
            brace = open_cls is CharClass.LBRACE
            chunk_id = pos // self._chunk_size
            tables = self._tables(chunk_id)
            pair = tables.brace if brace else tables.bracket
            target = pair.depth_before(pos) - num_open
            found = pair.close_at_depth(target, pos)
            if found >= 0:
                return found
            for cid in range(chunk_id + 1, self._n_chunks):
                tables = self._tables(cid)
                pair = tables.brace if brace else tables.bracket
                found = pair.first_close_at_depth(target)
                if found >= 0:
                    return found
            return NOT_FOUND
        return self._pair_close_walk(open_cls, close_cls, pos, num_open)

    # -- leveled (depth-keyed) queries ----------------------------------

    def structural_depth_before(self, pos: int) -> int:
        """Combined structural depth just before absolute ``pos``
        (requires a position index; see :attr:`leveled`)."""
        return self._tables(pos // self._chunk_size).depth_before(pos)

    def commas_at_depth(self, depth: int, lo: int, hi: int, k: int) -> tuple[int, int]:
        """Commas whose combined structural depth is ``depth`` in
        ``[lo, hi)``: ``(position of the k-th, k)`` when at least ``k``
        exist, else ``(NOT_FOUND, total count)``.

        This is the Pison-style leveled comma map promoted into the main
        engine: element separators of a container at depth ``d`` are
        precisely the commas at depth ``d``, so G5's ``goOverElems(k)``
        becomes this single lookup.
        """
        if hi <= lo:
            return NOT_FOUND, 0
        hi = min(hi, self._size)
        first = lo // self._chunk_size
        last = max(hi - 1, lo) // self._chunk_size
        remaining = k
        seen = 0
        for chunk_id in range(first, last + 1):
            arr = self._tables(chunk_id).commas_by_depth.get(depth)
            if not arr:
                continue
            i = bisect_left(arr, lo) if chunk_id == first else 0
            j = bisect_left(arr, hi) if chunk_id == last else len(arr)
            if j - i >= remaining:
                return arr[i + remaining - 1], k
            seen += j - i
            remaining -= j - i
        return NOT_FOUND, seen

    def open_at_depth(self, open_byte: int, depth: int, lo: int, hi: int) -> int:
        """First ``{`` (``open_byte=0x7B``) or ``[`` (``0x5B``) in
        ``[lo, hi)`` opening a container at combined depth ``depth``.

        This is the leveled G1 sweep: the structured values of a container
        whose interior sits at depth ``d`` are exactly the opens at depth
        ``d + 1``, so "next attribute/element of the wanted type" is one
        binary search — nested opens inside wrong-type siblings are at
        deeper levels and never surface.
        """
        if hi <= lo:
            return NOT_FOUND
        hi = min(hi, self._size)
        first = lo // self._chunk_size
        last = max(hi - 1, lo) // self._chunk_size
        for chunk_id in range(first, last + 1):
            arr = self._tables(chunk_id).opens_by_depth(open_byte).get(depth)
            if not arr:
                continue
            i = bisect_left(arr, lo) if chunk_id == first else 0
            if i < len(arr):
                found = arr[i]
                # Positions only grow from here on; past ``hi`` means done.
                return found if found < hi else NOT_FOUND
        return NOT_FOUND

    def close_at_combined_depth(self, depth: int, pos: int) -> int:
        """First ``}``/``]`` at or after ``pos`` whose combined depth
        after processing it equals ``depth``.

        On well-formed input this is the end of the enclosing container
        when called with ``depth_before(pos) - 1`` — the fused bound the
        leveled G1 sweeps use instead of a full ``pair_close``.
        """
        if pos >= self._size:
            return NOT_FOUND
        first = pos // self._chunk_size
        for chunk_id in range(first, self._n_chunks):
            arr = self._tables(chunk_id).closes_by_depth.get(depth)
            if not arr:
                continue
            i = bisect_left(arr, pos) if chunk_id == first else 0
            if i < len(arr):
                return arr[i]
        return NOT_FOUND

    def count_commas_at_depth(self, depth: int, lo: int, hi: int) -> int:
        """Number of commas at combined depth ``depth`` in ``[lo, hi)`` —
        the element separators crossed by a leveled G1 array sweep."""
        if hi <= lo:
            return 0
        hi = min(hi, self._size)
        first = lo // self._chunk_size
        last = max(hi - 1, lo) // self._chunk_size
        total = 0
        for chunk_id in range(first, last + 1):
            arr = self._tables(chunk_id).commas_by_depth.get(depth)
            if not arr:
                continue
            i = bisect_left(arr, lo) if chunk_id == first else 0
            j = bisect_left(arr, hi) if chunk_id == last else len(arr)
            total += j - i
        return total

    # -- fused G1 seeks (one tables fetch, in-chunk fast path) ----------

    def leveled_obj_attr(self, pos: int, want_byte: int) -> tuple[int, int]:
        """Fused object G1 sweep: ``(container_end, wanted_open)``.

        ``container_end`` is the enclosing container's closer
        (:data:`NOT_FOUND` if the stream ends first, in which case the
        second element is meaningless); ``wanted_open`` is the first
        ``want_byte`` open at value depth before that end, or
        :data:`NOT_FOUND`.  The in-chunk case — overwhelmingly common
        with megabyte chunks — resolves with one tables fetch and three
        binary searches; chunk-spill falls back to the decomposed
        cross-chunk queries.
        """
        chunk_id = pos // self._chunk_size
        tables = self._tables(chunk_id)
        depth = tables.depth_before(pos)
        end = NOT_FOUND
        arr = tables.closes_by_depth.get(depth - 1)
        if arr:
            i = bisect_left(arr, pos)
            if i < len(arr):
                end = arr[i]
        if end == NOT_FOUND:
            end = self.close_at_combined_depth(depth - 1, (chunk_id + 1) * self._chunk_size)
            if end == NOT_FOUND:
                return NOT_FOUND, NOT_FOUND
        opens = tables.opens_by_depth(want_byte).get(depth + 1)
        if opens:
            j = bisect_left(opens, pos)
            if j < len(opens):
                found = opens[j]
                # Positions only grow: past ``end`` here means past it
                # in every later chunk too.
                return end, (found if found < end else NOT_FOUND)
        if end < (chunk_id + 1) * self._chunk_size:
            return end, NOT_FOUND
        return end, self.open_at_depth(want_byte, depth + 1, (chunk_id + 1) * self._chunk_size, end)

    def leveled_ary_elem(self, pos: int, want_byte: int) -> tuple[int, int, int]:
        """Fused array G1 sweep: ``(array_end, wanted_open, commas)``.

        Same contract as :meth:`leveled_obj_attr` plus the count of
        element-level commas crossed up to the wanted open (or up to the
        array end when there is none) — Algorithm 5's counter as one
        range count on the leveled comma map.
        """
        chunk_id = pos // self._chunk_size
        chunk_end = (chunk_id + 1) * self._chunk_size
        tables = self._tables(chunk_id)
        depth = tables.depth_before(pos)
        end = NOT_FOUND
        arr = tables.closes_by_depth.get(depth - 1)
        if arr:
            i = bisect_left(arr, pos)
            if i < len(arr):
                end = arr[i]
        if end == NOT_FOUND:
            end = self.close_at_combined_depth(depth - 1, chunk_end)
            if end == NOT_FOUND:
                return NOT_FOUND, NOT_FOUND, 0
        found = NOT_FOUND
        spill = True
        opens = tables.opens_by_depth(want_byte).get(depth + 1)
        if opens:
            j = bisect_left(opens, pos)
            if j < len(opens):
                spill = False
                f = opens[j]
                if f < end:
                    found = f
        if spill and end >= chunk_end:
            found = self.open_at_depth(want_byte, depth + 1, chunk_end, end)
        bound = end if found == NOT_FOUND else found
        if bound <= chunk_end:
            commas = tables.commas_by_depth.get(depth)
            n = (bisect_left(commas, bound) - bisect_left(commas, pos)) if commas else 0
            return end, found, n
        return end, found, self.count_commas_at_depth(depth, pos, bound)

    def prev_quote_pair(self, pos: int) -> tuple[int, int]:
        """The two nearest unescaped quotes at or before ``pos`` as
        ``(opening, closing)`` — the G1 name-recovery lookup, fused into
        one binary search when both quotes sit in ``pos``'s chunk."""
        chunk_id = pos // self._chunk_size
        quotes = self._list(CharClass.QUOTE, chunk_id)
        i = bisect_right(quotes, pos)
        if i >= 2:
            return quotes[i - 2], quotes[i - 1]
        close = self.find_prev(CharClass.QUOTE, pos)
        if close == NOT_FOUND:
            return NOT_FOUND, NOT_FOUND
        return self.find_prev(CharClass.QUOTE, close - 1), close

    def _pair_close_walk(self, open_cls: CharClass, close_cls: CharClass, pos: int, num_open: int) -> int:
        """Fused Algorithm 4 loop over the two position lists.

        Identical interval-by-interval semantics to the base class, but
        each step is two bisects and index arithmetic instead of three
        full scanner calls.  Kept as the fallback for word-bitmap indexes
        and non-brace/bracket class pairs.
        """
        chunk_size = self._chunk_size
        chunk_id = pos // chunk_size
        while chunk_id < self._n_chunks:
            opens = self._list(open_cls, chunk_id)
            closes = self._list(close_cls, chunk_id)
            n_opens, n_closes = len(opens), len(closes)
            io = bisect_left(opens, pos)
            ic = bisect_left(closes, pos)
            while True:
                if io < n_opens:
                    next_open = opens[io]
                else:
                    # No further open in this chunk: the current interval
                    # spills over; consume this chunk's remaining closes.
                    n_close = n_closes - ic
                    if n_close >= num_open:
                        return closes[ic + num_open - 1]
                    num_open -= n_close
                    break
                j = bisect_left(closes, next_open, ic)
                n_close = j - ic
                if n_close >= num_open:
                    return closes[ic + num_open - 1]
                num_open += 1 - n_close
                ic = j
                io += 1
            chunk_id += 1
            pos = chunk_id * chunk_size
        return NOT_FOUND

    # The abstract per-chunk hooks are satisfied for protocol completeness
    # (the overridden public methods above never call them).

    def _chunk_find(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        positions = chunk.positions_list(cls)
        idx = bisect_left(positions, pos)
        return positions[idx] if idx < len(positions) else NOT_FOUND

    def _chunk_count(self, chunk: ChunkIndex, cls: CharClass, lo: int, hi: int) -> int:
        positions = chunk.positions_list(cls)
        return bisect_left(positions, hi) - bisect_left(positions, lo)

    def _chunk_kth(self, chunk: ChunkIndex, cls: CharClass, lo: int, k: int) -> tuple[int, int]:
        positions = chunk.positions_list(cls)
        idx = bisect_left(positions, lo)
        available = len(positions) - idx
        if available >= k:
            return positions[idx + k - 1], 0
        return NOT_FOUND, k - available

    def _chunk_find_prev(self, chunk: ChunkIndex, cls: CharClass, pos: int) -> int:
        positions = chunk.positions_list(cls)
        idx = bisect_right(positions, pos)
        return positions[idx - 1] if idx > 0 else NOT_FOUND


#: Registry used by engine constructors (``mode='word'`` / ``mode='vector'``).
SCANNERS: dict[str, type[Scanner]] = {
    "word": WordScanner,
    "vector": VectorScanner,
}


def make_scanner(index: BufferIndex, mode: str = "vector") -> Scanner:
    """Instantiate a scanner by mode name (``'word'`` or ``'vector'``)."""
    try:
        factory = SCANNERS[mode]
    except KeyError:
        raise ValueError(f"unknown scanner mode {mode!r}; expected one of {sorted(SCANNERS)}") from None
    return factory(index)
