"""Vectorized character classification (the SIMD substitute).

The paper classifies 256-bit blocks of input with SIMD compare
instructions to build one bitmap per metacharacter (``buildRawCharBitmap``
in Algorithm 3).  Here a whole chunk is classified at once with numpy:
``buf == ord(c)`` produces a boolean vector, ``np.packbits(...,
bitorder='little')`` packs it into the mirrored bit order the paper uses
(first character in the least-significant bit), and the packed bytes are
viewed both as ``uint64`` words and as one arbitrary-precision Python
integer for chunk-wide carry algorithms.
"""

from __future__ import annotations

import enum

import numpy as np

_WORD_BYTES = 8


class CharClass(enum.Enum):
    """Metacharacter classes tracked by the structural index.

    The first six are JSON's structural metacharacters; ``QUOTE`` and
    ``BACKSLASH`` are inputs to the string mask; the remaining entries are
    unions used by specific fast-forward functions (e.g. ``OPEN`` by
    ``goOverPriAttrs``, which advances to the next ``{`` or ``[``).
    """

    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    COMMA = ","
    QUOTE = '"'
    BACKSLASH = "\\"
    #: ``{`` or ``[`` — start of any non-primitive value.
    OPEN = "{["
    #: ``}`` or ``]`` — end of any non-primitive value.
    CLOSE = "}]"
    #: ``,`` or ``}`` — ends a primitive attribute value.
    COMMA_OR_RBRACE = ",}"
    #: ``,`` or ``]`` — ends a primitive array element.
    COMMA_OR_RBRACKET = ",]"
    #: All six structural metacharacters (simdjson/Pison stage-1 output).
    ANY = "{}[]:,"

    @property
    def chars(self) -> bytes:
        """The member characters of this class, as bytes."""
        return self.value.encode("ascii")


#: Classes whose bitmaps are filtered of pseudo-metacharacters inside
#: strings and exposed by :class:`repro.bits.index.ChunkIndex`.
STRUCTURAL_CLASSES = (
    CharClass.LBRACE,
    CharClass.RBRACE,
    CharClass.LBRACKET,
    CharClass.RBRACKET,
    CharClass.COLON,
    CharClass.COMMA,
)

#: Union classes derived by OR-ing structural bitmaps.
DERIVED_CLASSES = {
    CharClass.OPEN: (CharClass.LBRACE, CharClass.LBRACKET),
    CharClass.CLOSE: (CharClass.RBRACE, CharClass.RBRACKET),
    CharClass.COMMA_OR_RBRACE: (CharClass.COMMA, CharClass.RBRACE),
    CharClass.COMMA_OR_RBRACKET: (CharClass.COMMA, CharClass.RBRACKET),
    CharClass.ANY: STRUCTURAL_CLASSES,
}

#: JSON insignificant whitespace (RFC 8259).
WHITESPACE = b" \t\n\r"


def pack_bool_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean per-character vector into word-aligned bytes.

    The result length is padded to a multiple of 8 bytes so it can be
    viewed as ``uint64`` words; pad bits are zero, which is safe for every
    consumer (a zero bit means "not a member of the class").
    """
    packed = np.packbits(mask, bitorder="little")
    remainder = packed.size % _WORD_BYTES
    if remainder:
        packed = np.pad(packed, (0, _WORD_BYTES - remainder))
    return packed


def packed_to_words(packed: np.ndarray) -> np.ndarray:
    """View packed little-endian bytes as mirrored ``uint64`` words."""
    return packed.view(np.dtype("<u8"))


def packed_to_int(packed: np.ndarray) -> int:
    """View packed bytes as one chunk-wide Python integer (bit 0 = char 0)."""
    return int.from_bytes(packed.tobytes(), "little")


def int_to_words(value: int, n_words: int) -> np.ndarray:
    """Convert a chunk-wide integer back to mirrored ``uint64`` words."""
    raw = value.to_bytes(n_words * _WORD_BYTES, "little")
    return np.frombuffer(raw, dtype=np.dtype("<u8")).copy()


def classify_chunk(chunk: bytes | np.ndarray) -> dict[CharClass, np.ndarray]:
    """Build the raw (unfiltered) bitmap for every base character class.

    Parameters
    ----------
    chunk:
        The input characters, as bytes or a ``uint8`` array.

    Returns
    -------
    dict mapping each base :class:`CharClass` (the six structural
    metacharacters plus ``QUOTE`` and ``BACKSLASH``) to its packed byte
    bitmap (see :func:`pack_bool_mask`).  Derived union classes are *not*
    materialized here; :class:`repro.bits.index.ChunkIndex` ORs them after
    string filtering.
    """
    buf = np.frombuffer(chunk, dtype=np.uint8) if isinstance(chunk, (bytes, bytearray, memoryview)) else chunk
    bitmaps: dict[CharClass, np.ndarray] = {}
    for cls in (*STRUCTURAL_CLASSES, CharClass.QUOTE, CharClass.BACKSLASH):
        code = cls.chars[0]
        bitmaps[cls] = pack_bool_mask(buf == code)
    return bitmaps
